//! Lock ranks for the NATIX lock hierarchy.
//!
//! Every long-lived lock in the engine is constructed with
//! [`crate::Mutex::with_rank`] / [`crate::RwLock::with_rank`] naming one of
//! the constants below. Levels grow from *outermost* (acquired first) to
//! *innermost* (acquired last): under lockdep a thread may only acquire a
//! lock whose level is `>=` the level of the most recent lock it already
//! holds, and may never acquire the same class twice. Classes that share a
//! level are ordered by the cross-thread lock-order graph instead (cycle
//! detection); all production ranks below have distinct levels, so the
//! graph only arbitrates ranks minted by tests.
//!
//! This table is the single source of truth for the hierarchy documented
//! in `crates/core/src/repository.rs`. It reflects the order the code
//! actually nests locks today — note in particular that the allocator is
//! *outside* the buffer pool and the WAL (the storage manager pins pages
//! and appends log records while holding its state lock), not innermost.
//!
//! `io_tolerant` marks the storage band: locks that exist to serialise
//! device I/O and are therefore exempt from the held-across-I/O detector.
//! Everything above the storage band must be released before any page
//! read, write-back, or log sync.

/// A lock class in the global hierarchy. Construct these as `static`s so
/// identity (address) distinguishes classes that happen to share a name.
#[derive(Debug)]
pub struct Rank {
    /// Human-readable class name, used in lockdep panic messages.
    pub name: &'static str,
    /// Position in the hierarchy; higher = more deeply nested.
    pub level: u16,
    /// May be held across device I/O (page reads/writes, log syncs).
    pub io_tolerant: bool,
}

impl Rank {
    /// A rank that must not be held across device I/O.
    pub const fn new(name: &'static str, level: u16) -> Rank {
        Rank {
            name,
            level,
            io_tolerant: false,
        }
    }

    /// A rank in the storage band: may be held across device I/O.
    pub const fn new_io_tolerant(name: &'static str, level: u16) -> Rank {
        Rank {
            name,
            level,
            io_tolerant: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Repository band — outermost, serialise whole-repository operations.
// ---------------------------------------------------------------------------

/// `Repository::checkpoint` serialisation. Outermost lock in the system;
/// held across the catalog rewrite and snapshot flush, hence io-tolerant.
pub static CHECKPOINT: Rank = Rank::new_io_tolerant("repository.checkpoint", 100);

/// Per-document edit latch (`DocState::edit_latch`): writers of one
/// document serialise. Held across the whole structural edit, including
/// any page I/O the edit triggers.
pub static DOC_EDIT_LATCH: Rank = Rank::new_io_tolerant("document.edit-latch", 200);

/// `Repository::attached_index` slot (the `Option<Arc<Mutex<LabelIndex>>>`
/// holder, not the index itself — `LabelIndex` locks are caller-owned and
/// unranked).
pub static INDEX_ATTACH: Rank = Rank::new("repository.attached-index", 300);

/// Ingestion segment pool (`Repository::ingest_segs`). Creating a segment
/// under this lock allocates and formats pages, hence io-tolerant.
pub static INGEST_POOL: Rank = Rank::new_io_tolerant("repository.ingest-pool", 350);

// ---------------------------------------------------------------------------
// Catalog band — symbol table, directory, schema.
// ---------------------------------------------------------------------------

/// Logged-symbol watermark (`Repository::logged_symbols`): how much of the
/// symbol table the WAL already knows about.
pub static SYMBOL_MARK: Rank = Rank::new("repository.logged-symbols", 400);

/// Shared symbol table (`Repository::symbols`).
pub static SYMBOLS: Rank = Rank::new("repository.symbols", 500);

/// Split-matrix rules (`TreeStore`'s `SplitMatrix` RwLock). Bulkloads
/// hold the read guard across version-store entry, so this sits *below*
/// the version store; directory writers therefore take it before the
/// registry.
pub static SPLIT_MATRIX: Rank = Rank::new("tree.split-matrix", 550);

/// Version-store state (`VersionStore::state`): epochs, pre-images,
/// publish hooks. Publish hooks run under this lock and may take the
/// registry and document locks below it.
pub static VERSION_STORE: Rank = Rank::new("version-store.state", 600);

/// Document registry / directory (`Repository::registry`).
pub static REGISTRY: Rank = Rank::new("repository.registry", 700);

/// Schema manager (`Repository::schema`).
pub static SCHEMA: Rank = Rank::new("repository.schema", 800);

// ---------------------------------------------------------------------------
// Document band — per-document mutable state.
// ---------------------------------------------------------------------------

/// Per-document root slot (`DocState::root`): epoch-versioned root RID.
pub static DOC_ROOT: Rank = Rank::new("document.root-slot", 900);

/// Per-document path-summary slots (`SummaryStore::slots`): epoch-versioned
/// label-path statistics. Publish hooks apply summary deltas under the
/// version-store lock, so this sits below it; the planner reads it after
/// the document band's root slot.
pub static PATH_SUMMARY: Rank = Rank::new("document.path-summary", 920);

/// Per-document logical-id map (`DocState::ids`).
pub static DOC_IDS: Rank = Rank::new("document.id-map", 950);

/// Parallel-query record work queue (`ScanQueue::state`).
pub static SCAN_QUEUE: Rank = Rank::new("query.scan-queue", 960);

/// Per-worker result slots in parallel ingest/query (leaf locks: the
/// result value is computed before the slot is locked).
pub static RESULT_SLOT: Rank = Rank::new("query.result-slot", 970);

// ---------------------------------------------------------------------------
// Storage band — innermost; these serialise I/O and are io-tolerant.
// ---------------------------------------------------------------------------

/// Storage-manager allocator state (`SmState`): free lists, FSIs, segment
/// directory. Pins pages and appends WAL records while held.
pub static ALLOCATOR: Rank = Rank::new_io_tolerant("storage.allocator", 1000);

/// Buffer-pool state (`BufferManager::state`): frame table, clock hand,
/// in-flight I/O tracking. (Per-frame content `RwLock`s are deliberately
/// unranked — see `crates/storage/src/buffer.rs`.)
pub static BUFFER_POOL: Rank = Rank::new_io_tolerant("buffer.pool", 1100);

/// WAL core (`Wal::core`): append buffer and sync batching.
pub static WAL: Rank = Rank::new_io_tolerant("wal.core", 1200);

/// Simulated-disk head position (`ThrottledDisk`); wraps the raw device
/// locks below.
pub static DISK_SIM: Rank = Rank::new_io_tolerant("disk.sim-head", 1290);

/// Raw page/log device state (`MemStorage`, `FileStorage`, log devices).
/// Innermost lock in the system.
pub static DEVICE: Rank = Rank::new_io_tolerant("disk.device", 1300);

/// All production ranks, outermost first. Used by docs and self-tests.
pub static ALL: &[&Rank] = &[
    &CHECKPOINT,
    &DOC_EDIT_LATCH,
    &INDEX_ATTACH,
    &INGEST_POOL,
    &SYMBOL_MARK,
    &SYMBOLS,
    &SPLIT_MATRIX,
    &VERSION_STORE,
    &REGISTRY,
    &SCHEMA,
    &DOC_ROOT,
    &PATH_SUMMARY,
    &DOC_IDS,
    &SCAN_QUEUE,
    &RESULT_SLOT,
    &ALLOCATOR,
    &BUFFER_POOL,
    &WAL,
    &DISK_SIM,
    &DEVICE,
];
