//! API-compatible stand-in for the `parking_lot` crate, built on
//! `std::sync`. The build environment of this repository has no network
//! access, so the real crate cannot be fetched; the subset used by the
//! workspace (`Mutex`, `RwLock` and their guards, all non-poisoning) is
//! provided here with identical signatures. Poisoned locks are recovered
//! transparently — `parking_lot` has no poisoning, and neither do we.
//!
//! On top of the plain shim this crate carries two NATIX checkers:
//!
//! - the **lock-hierarchy checker** ([`lockdep`]): locks built with
//!   [`Mutex::with_rank`] / [`RwLock::with_rank`] name a class from
//!   [`rank`], and under `cfg(any(test, feature = "lockdep"))` every
//!   acquisition is validated against a per-thread acquisition stack
//!   (rank monotonicity, recursion) and a global lock-order graph
//!   (cycle detection across threads), with declared I/O regions
//!   rejecting held non-I/O-tolerant locks;
//! - the **deterministic model checker** ([`model`]): under
//!   `cfg(any(test, feature = "model"))`, threads registered with a
//!   running [`model::explore`] have every lock/condvar/tracked-atomic
//!   operation turned into a cooperative scheduling decision, enabling
//!   bounded-exhaustive and seeded-random interleaving exploration with
//!   replayable failure seeds.
//!
//! Without either feature, `with_rank` discards the rank and the shim
//! compiles down to bare `std::sync` wrappers (the lock's data lives in
//! an `UnsafeCell` beside a `std::sync` lock of `()`, which costs
//! nothing extra and lets the model checker bypass the real lock).

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

pub mod rank;

#[cfg(any(test, feature = "lockdep"))]
pub mod lockdep;

#[cfg(any(test, feature = "model"))]
pub mod model;

mod tracked;
pub use tracked::{TrackedAtomicBool, TrackedAtomicU32, TrackedAtomicU64, TrackedAtomicUsize};

use rank::Rank;

#[cfg(any(test, feature = "lockdep"))]
use lockdep::GuardKind;

/// Query a named model-checker mutation (fail point). Production guards
/// call this to let model tests revert them: `true` only while a
/// [`model::explore`] run with that mutation is driving the calling
/// thread. Compiles to a constant `false` outside model builds.
#[cfg(any(test, feature = "model"))]
#[inline]
pub fn fail_point(name: &str) -> bool {
    model::mutation(name)
}

/// Outside model builds every fail point is inactive.
#[cfg(not(any(test, feature = "model")))]
#[inline(always)]
pub fn fail_point(_name: &str) -> bool {
    false
}

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
///
/// The protected value lives in an `UnsafeCell` beside a raw
/// `std::sync::Mutex<()>`; guards hold the raw guard (or, under the
/// model checker, a model-level ownership record instead).
pub struct Mutex<T: ?Sized> {
    #[cfg(any(test, feature = "lockdep", feature = "model"))]
    rank: Option<&'static Rank>,
    raw: std::sync::Mutex<()>,
    data: UnsafeCell<T>,
}

// SAFETY: a Mutex hands out exclusive access to `T` one thread at a
// time (via the raw std lock, or the model scheduler's ownership map),
// so sharing the Mutex across threads only requires `T: Send` — the
// same bounds as `std::sync::Mutex<T>`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    #[cfg(any(test, feature = "lockdep", feature = "model"))]
    const fn build(rank: Option<&'static Rank>, value: T) -> Mutex<T> {
        Mutex {
            rank,
            raw: std::sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    #[cfg(not(any(test, feature = "lockdep", feature = "model")))]
    const fn build(_rank: Option<&'static Rank>, value: T) -> Mutex<T> {
        Mutex {
            raw: std::sync::Mutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    pub const fn new(value: T) -> Mutex<T> {
        Self::build(None, value)
    }

    /// A mutex registered under `rank` in the global lock hierarchy.
    /// Identical to [`Mutex::new`] unless lockdep is compiled in.
    pub const fn with_rank(rank: &'static Rank, value: T) -> Mutex<T> {
        Self::build(Some(rank), value)
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(any(test, feature = "model"))]
    fn addr(&self) -> usize {
        &self.raw as *const std::sync::Mutex<()> as usize
    }

    #[cfg(any(test, feature = "model"))]
    fn rank_name(&self) -> Option<&'static str> {
        self.rank.map(|r| r.name)
    }

    fn guard<'a>(&'a self, raw: Option<std::sync::MutexGuard<'a, ()>>) -> MutexGuard<'a, T> {
        MutexGuard {
            lock: self,
            raw,
            _marker: PhantomData,
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        #[cfg(any(test, feature = "model"))]
        if model::active_on_this_thread() {
            model::rt::mutex_lock(self.addr(), self.rank_name());
            return self.guard(None);
        }
        self.guard(Some(self.raw.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        #[cfg(any(test, feature = "model"))]
        if model::active_on_this_thread() {
            if model::rt::mutex_try_lock(self.addr(), self.rank_name()) {
                return Some(self.guard(None));
            }
            #[cfg(any(test, feature = "lockdep"))]
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
            return None;
        }
        let got = match self.raw.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(any(test, feature = "lockdep"))]
        if got.is_none() {
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
        }
        got.map(|g| self.guard(Some(g)))
    }

    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` guarantees no guard is outstanding.
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]. `raw` is `None` only while the
/// model scheduler owns the acquisition on the shim's behalf.
#[must_use = "dropping a MutexGuard immediately releases the lock"]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    // Held for its Drop (releases the raw lock); never read directly.
    #[allow(dead_code)]
    raw: Option<std::sync::MutexGuard<'a, ()>>,
    /// Ties `Send`/`Sync` of the guard to `&mut T` like std's guard.
    _marker: PhantomData<&'a mut T>,
}

#[cfg(any(test, feature = "lockdep", feature = "model"))]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(test, feature = "model"))]
        if self.raw.is_none() {
            model::rt::mutex_unlock(self.lock.addr());
        }
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.lock.rank {
            lockdep::release(r);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock
        // (raw std guard, or model-scheduler ownership when raw is
        // None), so dereferencing the cell is race-free.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

/// A condition variable paired with [`Mutex`]. Unlike `parking_lot`'s
/// (which takes `&mut MutexGuard`), `wait` here consumes and returns the
/// guard — the std-style signature the underlying primitive provides.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    #[cfg(any(test, feature = "model"))]
    fn addr(&self) -> usize {
        &self.0 as *const std::sync::Condvar as usize
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(any(test, feature = "lockdep"))]
        let rank = guard.lock.rank;
        // The mutex is released for the duration of the wait: pop it from
        // the lockdep stack and re-validate the acquisition on wake-up.
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = rank {
            lockdep::release(r);
        }
        #[cfg(any(test, feature = "model"))]
        if guard.raw.is_none() {
            model::rt::condvar_wait(self.addr(), guard.lock.addr(), false);
            #[cfg(any(test, feature = "lockdep"))]
            if let Some(r) = rank {
                lockdep::acquire(r, GuardKind::Exclusive);
            }
            return guard;
        }
        if let Some(raw) = guard.raw.take() {
            let raw = self.0.wait(raw).unwrap_or_else(|e| e.into_inner());
            guard.raw = Some(raw);
        }
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        guard
    }

    /// Waits with an upper bound; returns the reacquired guard and whether
    /// the wait timed out (same consume-and-return style as [`wait`]).
    ///
    /// Under the model scheduler the timeout duration is ignored: a
    /// timed wait is simply a waiter the scheduler may wake *without* a
    /// notification, reporting `timed_out = true`.
    ///
    /// [`wait`]: Condvar::wait
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        #[cfg(any(test, feature = "lockdep"))]
        let rank = guard.lock.rank;
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = rank {
            lockdep::release(r);
        }
        #[cfg(any(test, feature = "model"))]
        if guard.raw.is_none() {
            let timed_out = model::rt::condvar_wait(self.addr(), guard.lock.addr(), true);
            #[cfg(any(test, feature = "lockdep"))]
            if let Some(r) = rank {
                lockdep::acquire(r, GuardKind::Exclusive);
            }
            return (guard, timed_out);
        }
        let mut timed_out = false;
        if let Some(raw) = guard.raw.take() {
            let (raw, res) = self
                .0
                .wait_timeout(raw, timeout)
                .unwrap_or_else(|e| e.into_inner());
            guard.raw = Some(raw);
            timed_out = res.timed_out();
        }
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        (guard, timed_out)
    }

    pub fn notify_one(&self) {
        #[cfg(any(test, feature = "model"))]
        if model::active_on_this_thread() {
            model::rt::condvar_notify(self.addr(), false);
            return;
        }
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        #[cfg(any(test, feature = "model"))]
        if model::active_on_this_thread() {
            model::rt::condvar_notify(self.addr(), true);
            return;
        }
        self.0.notify_all();
    }
}

/// A reader-writer lock whose `read`/`write` never return a `Result`.
pub struct RwLock<T: ?Sized> {
    #[cfg(any(test, feature = "lockdep", feature = "model"))]
    rank: Option<&'static Rank>,
    raw: std::sync::RwLock<()>,
    data: UnsafeCell<T>,
}

// SAFETY: as for `Mutex`, plus shared read guards hand out `&T` from
// multiple threads simultaneously, which additionally requires
// `T: Sync` — the same bounds as `std::sync::RwLock<T>`.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    #[cfg(any(test, feature = "lockdep", feature = "model"))]
    const fn build(rank: Option<&'static Rank>, value: T) -> RwLock<T> {
        RwLock {
            rank,
            raw: std::sync::RwLock::new(()),
            data: UnsafeCell::new(value),
        }
    }

    #[cfg(not(any(test, feature = "lockdep", feature = "model")))]
    const fn build(_rank: Option<&'static Rank>, value: T) -> RwLock<T> {
        RwLock {
            raw: std::sync::RwLock::new(()),
            data: UnsafeCell::new(value),
        }
    }

    pub const fn new(value: T) -> RwLock<T> {
        Self::build(None, value)
    }

    /// An rwlock registered under `rank` in the global lock hierarchy.
    /// Identical to [`RwLock::new`] unless lockdep is compiled in.
    pub const fn with_rank(rank: &'static Rank, value: T) -> RwLock<T> {
        Self::build(Some(rank), value)
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(any(test, feature = "model"))]
    fn addr(&self) -> usize {
        &self.raw as *const std::sync::RwLock<()> as usize
    }

    #[cfg(any(test, feature = "model"))]
    fn rank_name(&self) -> Option<&'static str> {
        self.rank.map(|r| r.name)
    }

    fn read_guard<'a>(
        &'a self,
        raw: Option<std::sync::RwLockReadGuard<'a, ()>>,
    ) -> RwLockReadGuard<'a, T> {
        RwLockReadGuard {
            lock: self,
            raw,
            _marker: PhantomData,
        }
    }

    fn write_guard<'a>(
        &'a self,
        raw: Option<std::sync::RwLockWriteGuard<'a, ()>>,
    ) -> RwLockWriteGuard<'a, T> {
        RwLockWriteGuard {
            lock: self,
            raw,
            _marker: PhantomData,
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Shared);
        }
        #[cfg(any(test, feature = "model"))]
        if model::active_on_this_thread() {
            model::rt::rw_lock(self.addr(), self.rank_name(), false);
            return self.read_guard(None);
        }
        self.read_guard(Some(self.raw.read().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        #[cfg(any(test, feature = "model"))]
        if model::active_on_this_thread() {
            model::rt::rw_lock(self.addr(), self.rank_name(), true);
            return self.write_guard(None);
        }
        self.write_guard(Some(self.raw.write().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Shared);
        }
        #[cfg(any(test, feature = "model"))]
        if model::active_on_this_thread() {
            if model::rt::rw_try_lock(self.addr(), self.rank_name(), false) {
                return Some(self.read_guard(None));
            }
            #[cfg(any(test, feature = "lockdep"))]
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
            return None;
        }
        let got = match self.raw.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(any(test, feature = "lockdep"))]
        if got.is_none() {
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
        }
        got.map(|g| self.read_guard(Some(g)))
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        #[cfg(any(test, feature = "model"))]
        if model::active_on_this_thread() {
            if model::rt::rw_try_lock(self.addr(), self.rank_name(), true) {
                return Some(self.write_guard(None));
            }
            #[cfg(any(test, feature = "lockdep"))]
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
            return None;
        }
        let got = match self.raw.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(any(test, feature = "lockdep"))]
        if got.is_none() {
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
        }
        got.map(|g| self.write_guard(Some(g)))
    }

    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` guarantees no guard is outstanding.
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Guard returned by [`RwLock::read`].
#[must_use = "dropping an RwLockReadGuard immediately releases the lock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    // Held for its Drop (releases the raw lock); never read directly.
    #[allow(dead_code)]
    raw: Option<std::sync::RwLockReadGuard<'a, ()>>,
    _marker: PhantomData<&'a T>,
}

#[cfg(any(test, feature = "lockdep", feature = "model"))]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(test, feature = "model"))]
        if self.raw.is_none() {
            model::rt::rw_unlock(self.lock.addr(), false);
        }
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.lock.rank {
            lockdep::release(r);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves a live shared acquisition; writers
        // are excluded for its lifetime.
        unsafe { &*self.lock.data.get() }
    }
}

/// Guard returned by [`RwLock::write`].
#[must_use = "dropping an RwLockWriteGuard immediately releases the lock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    // Held for its Drop (releases the raw lock); never read directly.
    #[allow(dead_code)]
    raw: Option<std::sync::RwLockWriteGuard<'a, ()>>,
    _marker: PhantomData<&'a mut T>,
}

#[cfg(any(test, feature = "lockdep", feature = "model"))]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(test, feature = "model"))]
        if self.raw.is_none() {
            model::rt::rw_unlock(self.lock.addr(), true);
        }
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.lock.rank {
            lockdep::release(r);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves a live exclusive acquisition.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = err.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else {
            String::from("<non-string panic>")
        }
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(&*r1, &*r2);
    }

    #[test]
    fn ranked_ordering_is_tracked() {
        static OUTER: Rank = Rank::new("test.tracked-outer", 10);
        static INNER: Rank = Rank::new("test.tracked-inner", 20);
        let a = Mutex::with_rank(&OUTER, 1);
        let b = RwLock::with_rank(&INNER, 2);
        let ga = a.lock();
        let gb = b.read();
        assert_eq!(
            lockdep::held_rank_names(),
            vec!["test.tracked-outer", "test.tracked-inner"]
        );
        // Out-of-LIFO-order release must not corrupt the stack.
        drop(ga);
        assert_eq!(lockdep::held_rank_names(), vec!["test.tracked-inner"]);
        drop(gb);
        assert!(lockdep::held_rank_names().is_empty());
    }

    #[test]
    fn inversion_panics_with_both_rank_names() {
        static LOW: Rank = Rank::new("test.inversion-low", 10);
        static HIGH: Rank = Rank::new("test.inversion-high", 20);
        let low = Mutex::with_rank(&LOW, ());
        let high = Mutex::with_rank(&HIGH, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _h = high.lock();
            let _l = low.lock(); // inversion: level 10 after level 20
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("test.inversion-low"), "{msg}");
        assert!(msg.contains("test.inversion-high"), "{msg}");
        assert!(lockdep::held_rank_names().is_empty());
    }

    #[test]
    fn two_thread_opposite_order_cycle_is_detected() {
        // Equal-level classes pass the monotonicity check, so opposite
        // acquisition orders across threads are exactly what the global
        // order graph must catch.
        static EQ_A: Rank = Rank::new("test.cycle-a", 50);
        static EQ_B: Rank = Rank::new("test.cycle-b", 50);
        let a = std::sync::Arc::new(Mutex::with_rank(&EQ_A, ()));
        let b = std::sync::Arc::new(Mutex::with_rank(&EQ_B, ()));

        // Thread 1 establishes the order a -> b.
        {
            let (a, b) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .unwrap();
        }

        // Thread 2 attempts b -> a; lockdep must refuse before deadlock.
        let err = std::thread::spawn(move || {
            catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            }))
            .unwrap_err()
        })
        .join()
        .unwrap();
        let msg = panic_message(err);
        assert!(msg.contains("lock-order cycle"), "{msg}");
        assert!(msg.contains("test.cycle-a"), "{msg}");
        assert!(msg.contains("test.cycle-b"), "{msg}");
        assert!(msg.contains("this acquisition at"), "{msg}");
        assert!(msg.contains("first established at"), "{msg}");
    }

    #[test]
    fn recursive_acquisition_panics() {
        static REC: Rank = Rank::new("test.recursive", 30);
        let l = RwLock::with_rank(&REC, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _r1 = l.read();
            let _r2 = l.read(); // same class twice: deadlocks with a queued writer
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("recursive acquisition"), "{msg}");
        assert!(msg.contains("test.recursive"), "{msg}");
    }

    #[test]
    fn io_region_rejects_held_exclusive_lock() {
        static NO_IO: Rank = Rank::new("test.no-io", 40);
        let l = Mutex::with_rank(&NO_IO, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _g = l.lock();
            let _io = lockdep::io_region("test.write-page");
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("I/O region 'test.write-page'"), "{msg}");
        assert!(msg.contains("test.no-io"), "{msg}");
    }

    #[test]
    fn io_region_allows_tolerant_and_shared_holders() {
        static TOLERANT: Rank = Rank::new_io_tolerant("test.io-tolerant", 41);
        static SHARED: Rank = Rank::new("test.io-shared", 42);
        let m = Mutex::with_rank(&TOLERANT, ());
        let rw = RwLock::with_rank(&SHARED, ());
        let _g = m.lock();
        let _r = rw.read();
        let _io = lockdep::io_region("test.read-page");
        // Acquiring a non-tolerant exclusive lock *inside* the region is
        // still a violation.
        static NO_IO2: Rank = Rank::new("test.no-io-inside", 43);
        let bad = Mutex::with_rank(&NO_IO2, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _b = bad.lock();
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("inside a declared I/O region"), "{msg}");
        assert!(msg.contains("test.no-io-inside"), "{msg}");
    }

    #[test]
    fn condvar_wait_releases_and_reacquires_rank() {
        static CV: Rank = Rank::new("test.condvar", 60);
        let m = Mutex::with_rank(&CV, false);
        let cv = Condvar::new();
        let g = m.lock();
        assert_eq!(lockdep::held_rank_names(), vec!["test.condvar"]);
        let (g, timed_out) = cv.wait_timeout(g, std::time::Duration::from_millis(10));
        assert!(timed_out);
        // The rank is held again after the wait returns...
        assert_eq!(lockdep::held_rank_names(), vec!["test.condvar"]);
        drop(g);
        // ...and fully released afterwards.
        assert!(lockdep::held_rank_names().is_empty());
    }

    #[test]
    fn failed_try_lock_leaves_stack_clean() {
        static TRY: Rank = Rank::new("test.try-lock", 70);
        let m = std::sync::Arc::new(Mutex::with_rank(&TRY, ()));
        let g = m.lock();
        let m2 = std::sync::Arc::clone(&m);
        std::thread::spawn(move || {
            assert!(m2.try_lock().is_none());
            assert!(lockdep::held_rank_names().is_empty());
        })
        .join()
        .unwrap();
        drop(g);
    }

    #[test]
    fn production_rank_table_is_strictly_ordered() {
        let levels: Vec<u16> = rank::ALL.iter().map(|r| r.level).collect();
        for pair in levels.windows(2) {
            assert!(pair[0] < pair[1], "rank table must be strictly increasing");
        }
        let mut names: Vec<&str> = rank::ALL.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rank::ALL.len(), "rank names must be unique");
    }
}

#[cfg(test)]
mod model_tests {
    //! Self-tests for the deterministic model checker. These run as part
    //! of the tier-1 suite (the shim's own `cargo test`); the protocol
    //! scenarios against the real engine live in `crates/core/tests`.
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn exhaustive_explores_both_orders_of_two_tasks() {
        // Two tasks append to a shared log; DFS must produce schedules
        // in which each order occurs, and more than one schedule total.
        let report = model::explore(&model::Config::exhaustive(), || {
            let log = Arc::new(Mutex::new(Vec::new()));
            let l1 = Arc::clone(&log);
            let l2 = Arc::clone(&log);
            let t1 = model::spawn(move || l1.lock().push(1));
            let t2 = model::spawn(move || l2.lock().push(2));
            t1.join();
            t2.join();
            let v = log.lock().clone();
            assert!(v == vec![1, 2] || v == vec![2, 1], "{v:?}");
        });
        assert!(report.schedules > 1, "expected >1 schedule, got {report:?}");
    }

    #[test]
    fn model_deadlock_is_detected_and_replayable() {
        // Classic AB-BA deadlock with *unranked* locks (invisible to
        // lockdep): the model scheduler must find it, and the reported
        // token must reproduce it deterministically.
        let run = |cfg: &model::Config| {
            model::explore_result(cfg, || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t1 = model::spawn(move || {
                    let _ga = a1.lock();
                    let _gb = b1.lock();
                });
                let t2 = model::spawn(move || {
                    let _gb = b2.lock();
                    let _ga = a2.lock();
                });
                t1.join();
                t2.join();
            })
        };
        let failure = run(&model::Config::exhaustive()).unwrap_err();
        assert!(failure.message.contains("deadlock"), "{failure}");
        let replay = run(&model::Config::replay(&failure.token)).unwrap_err();
        assert!(replay.message.contains("deadlock"), "{replay}");
        assert_eq!(replay.schedules, 1, "replay must fail on its only schedule");
    }

    #[test]
    fn random_mode_finds_deadlock_and_seed_replays_it() {
        let body = || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = model::spawn(move || {
                let _ga = a1.lock();
                let _gb = b1.lock();
            });
            let t2 = model::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            t1.join();
            t2.join();
        };
        let failure = model::explore_result(&model::Config::random(0xA11CE, 300), body)
            .expect_err("random exploration should find the AB-BA deadlock");
        assert!(failure.token.starts_with("seed:"), "{}", failure.token);
        let replay = model::explore_result(&model::Config::replay(&failure.token), body)
            .expect_err("seed replay must reproduce the deadlock");
        assert_eq!(replay.message, failure.message);
    }

    #[test]
    fn race_detector_flags_relaxed_and_passes_release_acquire() {
        // Relaxed publication: flag + data written non-atomically
        // under no ordering — the detector must flag it.
        let relaxed = model::explore_result(&model::Config::exhaustive().with_races(), || {
            let flag = Arc::new(TrackedAtomicU64::new(0));
            let (f1, f2) = (Arc::clone(&flag), Arc::clone(&flag));
            let t1 = model::spawn(move || f1.store(1, Ordering::Relaxed));
            let t2 = model::spawn(move || f2.load(Ordering::Relaxed));
            t1.join();
            t2.join();
        });
        let failure = relaxed.expect_err("relaxed concurrent accesses must be flagged");
        assert!(failure.message.contains("data race"), "{failure}");

        // The same shape with Release/Acquire ordering is clean.
        let ordered = model::explore_result(&model::Config::exhaustive().with_races(), || {
            let flag = Arc::new(TrackedAtomicU64::new(0));
            let (f1, f2) = (Arc::clone(&flag), Arc::clone(&flag));
            let t1 = model::spawn(move || f1.store(1, Ordering::Release));
            let t2 = model::spawn(move || f2.load(Ordering::Acquire));
            t1.join();
            t2.join();
        });
        assert!(ordered.is_ok(), "{ordered:?}");
    }

    #[test]
    fn condvar_predicate_recheck_survives_spurious_wakeups() {
        // A correct condvar loop (while !ready { wait }) must be clean
        // even though the scheduler injects spurious wake-ups.
        let report = model::explore(&model::Config::exhaustive(), || {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s1 = Arc::clone(&state);
            let waiter = model::spawn(move || {
                let (m, cv) = &*s1;
                let mut g = m.lock();
                while !*g {
                    g = cv.wait(g);
                }
            });
            let s2 = Arc::clone(&state);
            let setter = model::spawn(move || {
                let (m, cv) = &*s2;
                *m.lock() = true;
                cv.notify_one();
            });
            waiter.join();
            setter.join();
        });
        assert!(report.schedules > 1, "{report:?}");
    }

    #[test]
    fn condvar_missing_recheck_is_caught_with_replayable_token() {
        // The same scenario with the re-check loop degraded to a single
        // `if` (the classic lost-wakeup/spurious bug, here driven by a
        // named mutation): a spurious wake-up slips past the predicate
        // and the post-wait assertion fires.
        let body = || {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s1 = Arc::clone(&state);
            let waiter = model::spawn(move || {
                let (m, cv) = &*s1;
                let mut g = m.lock();
                if fail_point("shim-test.drop-recheck") {
                    if !*g {
                        g = cv.wait(g);
                    }
                } else {
                    while !*g {
                        g = cv.wait(g);
                    }
                }
                assert!(*g, "woke with predicate false: re-check loop missing");
            });
            let s2 = Arc::clone(&state);
            let setter = model::spawn(move || {
                let (m, cv) = &*s2;
                *m.lock() = true;
                cv.notify_one();
            });
            waiter.join();
            setter.join();
        };
        let cfg = model::Config::exhaustive().with_mutation("shim-test.drop-recheck");
        let failure = model::explore_result(&cfg, body).expect_err("mutation must be caught");
        assert!(
            failure.message.contains("re-check loop missing"),
            "{failure}"
        );
        let replay_cfg =
            model::Config::replay(&failure.token).with_mutation("shim-test.drop-recheck");
        let replay = model::explore_result(&replay_cfg, body).unwrap_err();
        assert!(replay.message.contains("re-check loop missing"), "{replay}");
    }

    #[test]
    fn fail_point_is_inactive_without_a_mutation_and_outside_explore() {
        assert!(!fail_point("shim-test.never-registered"));
        model::explore(&model::Config::exhaustive(), || {
            assert!(!fail_point("shim-test.not-configured"));
        });
    }

    #[test]
    fn rwlock_readers_share_and_writers_exclude_under_model() {
        let report = model::explore(
            &model::Config::exhaustive().with_max_schedules(2_000),
            || {
                let l = Arc::new(RwLock::new(0u32));
                let (l1, l2, l3) = (Arc::clone(&l), Arc::clone(&l), Arc::clone(&l));
                let w = model::spawn(move || *l1.write() += 1);
                let r1 = model::spawn(move || *l2.read());
                let r2 = model::spawn(move || *l3.read());
                w.join();
                let (a, b) = (r1.join(), r2.join());
                assert!(a <= 1 && b <= 1);
                assert_eq!(*l.read(), 1);
            },
        );
        assert!(report.schedules > 1, "{report:?}");
    }

    #[test]
    fn tracked_atomics_pass_through_on_unregistered_threads() {
        let a = TrackedAtomicUsize::new(7);
        assert_eq!(a.load(Ordering::SeqCst), 7);
        a.store(9, Ordering::SeqCst);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 9);
        assert_eq!(a.load(Ordering::SeqCst), 10);
        let b = TrackedAtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));
    }
}
