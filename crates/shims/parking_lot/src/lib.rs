//! API-compatible stand-in for the `parking_lot` crate, built on
//! `std::sync`. The build environment of this repository has no network
//! access, so the real crate cannot be fetched; the subset used by the
//! workspace (`Mutex`, `RwLock` and their guards, all non-poisoning) is
//! provided here with identical signatures. Poisoned locks are recovered
//! transparently — `parking_lot` has no poisoning, and neither do we.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable paired with [`Mutex`]. Unlike `parking_lot`'s
/// (which takes `&mut MutexGuard`), `wait` here consumes and returns the
/// guard — the std-style signature the underlying primitive provides.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard(self.0.wait(guard.0).unwrap_or_else(|e| e.into_inner()))
    }

    /// Waits with an upper bound; returns the reacquired guard and whether
    /// the wait timed out (same consume-and-return style as [`wait`]).
    ///
    /// [`wait`]: Condvar::wait
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (g, res) = self
            .0
            .wait_timeout(guard.0, timeout)
            .unwrap_or_else(|e| e.into_inner());
        (MutexGuard(g), res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose `read`/`write` never return a `Result`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(&*r1, &*r2);
    }
}
