//! API-compatible stand-in for the `parking_lot` crate, built on
//! `std::sync`. The build environment of this repository has no network
//! access, so the real crate cannot be fetched; the subset used by the
//! workspace (`Mutex`, `RwLock` and their guards, all non-poisoning) is
//! provided here with identical signatures. Poisoned locks are recovered
//! transparently — `parking_lot` has no poisoning, and neither do we.
//!
//! On top of the plain shim this crate carries the NATIX
//! **lock-hierarchy checker**: locks built with [`Mutex::with_rank`] /
//! [`RwLock::with_rank`] name a class from [`rank`], and under
//! `cfg(any(test, feature = "lockdep"))` every acquisition is validated
//! against a per-thread acquisition stack (rank monotonicity, recursion)
//! and a global lock-order graph (cycle detection across threads), with
//! declared I/O regions rejecting held non-I/O-tolerant locks — see
//! [`lockdep`]. Without the feature, `with_rank` discards the rank and
//! the shim compiles down to bare `std::sync` wrappers.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub mod rank;

#[cfg(any(test, feature = "lockdep"))]
pub mod lockdep;

use rank::Rank;

#[cfg(any(test, feature = "lockdep"))]
use lockdep::GuardKind;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
pub struct Mutex<T: ?Sized> {
    #[cfg(any(test, feature = "lockdep"))]
    rank: Option<&'static Rank>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    #[cfg(any(test, feature = "lockdep"))]
    const fn build(rank: Option<&'static Rank>, value: T) -> Mutex<T> {
        Mutex {
            rank,
            inner: std::sync::Mutex::new(value),
        }
    }

    #[cfg(not(any(test, feature = "lockdep")))]
    const fn build(_rank: Option<&'static Rank>, value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub const fn new(value: T) -> Mutex<T> {
        Self::build(None, value)
    }

    /// A mutex registered under `rank` in the global lock hierarchy.
    /// Identical to [`Mutex::new`] unless lockdep is compiled in.
    pub const fn with_rank(rank: &'static Rank, value: T) -> Mutex<T> {
        Self::build(Some(rank), value)
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg(any(test, feature = "lockdep"))]
    fn guard<'a>(&self, inner: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            rank: self.rank,
            inner,
        }
    }

    #[cfg(not(any(test, feature = "lockdep")))]
    fn guard<'a>(&self, inner: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard { inner }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        self.guard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        let got = match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(any(test, feature = "lockdep"))]
        if got.is_none() {
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
        }
        got.map(|g| self.guard(g))
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
#[must_use = "dropping a MutexGuard immediately releases the lock"]
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(any(test, feature = "lockdep"))]
    rank: Option<&'static Rank>,
    inner: std::sync::MutexGuard<'a, T>,
}

#[cfg(any(test, feature = "lockdep"))]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(r) = self.rank {
            lockdep::release(r);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable paired with [`Mutex`]. Unlike `parking_lot`'s
/// (which takes `&mut MutexGuard`), `wait` here consumes and returns the
/// guard — the std-style signature the underlying primitive provides.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

/// Take the inner std guard out of a shim guard without running the shim
/// guard's `Drop` (which would pop the lockdep stack a second time).
fn dissolve<'a, T: ?Sized>(guard: MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    let g = std::mem::ManuallyDrop::new(guard);
    // SAFETY: `g` is never dropped, and `inner` is read exactly once; the
    // only other field (the cfg-gated rank) is `Copy`.
    unsafe { std::ptr::read(&g.inner) }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(any(test, feature = "lockdep"))]
        let rank = guard.rank;
        // The mutex is released for the duration of the wait: pop it from
        // the lockdep stack and re-validate the acquisition on wake-up.
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = rank {
            lockdep::release(r);
        }
        let inner = self
            .0
            .wait(dissolve(guard))
            .unwrap_or_else(|e| e.into_inner());
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        MutexGuard {
            #[cfg(any(test, feature = "lockdep"))]
            rank,
            inner,
        }
    }

    /// Waits with an upper bound; returns the reacquired guard and whether
    /// the wait timed out (same consume-and-return style as [`wait`]).
    ///
    /// [`wait`]: Condvar::wait
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        #[cfg(any(test, feature = "lockdep"))]
        let rank = guard.rank;
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = rank {
            lockdep::release(r);
        }
        let (inner, res) = self
            .0
            .wait_timeout(dissolve(guard), timeout)
            .unwrap_or_else(|e| e.into_inner());
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        (
            MutexGuard {
                #[cfg(any(test, feature = "lockdep"))]
                rank,
                inner,
            },
            res.timed_out(),
        )
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose `read`/`write` never return a `Result`.
pub struct RwLock<T: ?Sized> {
    #[cfg(any(test, feature = "lockdep"))]
    rank: Option<&'static Rank>,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    #[cfg(any(test, feature = "lockdep"))]
    const fn build(rank: Option<&'static Rank>, value: T) -> RwLock<T> {
        RwLock {
            rank,
            inner: std::sync::RwLock::new(value),
        }
    }

    #[cfg(not(any(test, feature = "lockdep")))]
    const fn build(_rank: Option<&'static Rank>, value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub const fn new(value: T) -> RwLock<T> {
        Self::build(None, value)
    }

    /// An rwlock registered under `rank` in the global lock hierarchy.
    /// Identical to [`RwLock::new`] unless lockdep is compiled in.
    pub const fn with_rank(rank: &'static Rank, value: T) -> RwLock<T> {
        Self::build(Some(rank), value)
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg(any(test, feature = "lockdep"))]
    fn read_guard<'a>(&self, inner: std::sync::RwLockReadGuard<'a, T>) -> RwLockReadGuard<'a, T> {
        RwLockReadGuard {
            rank: self.rank,
            inner,
        }
    }

    #[cfg(not(any(test, feature = "lockdep")))]
    fn read_guard<'a>(&self, inner: std::sync::RwLockReadGuard<'a, T>) -> RwLockReadGuard<'a, T> {
        RwLockReadGuard { inner }
    }

    #[cfg(any(test, feature = "lockdep"))]
    fn write_guard<'a>(
        &self,
        inner: std::sync::RwLockWriteGuard<'a, T>,
    ) -> RwLockWriteGuard<'a, T> {
        RwLockWriteGuard {
            rank: self.rank,
            inner,
        }
    }

    #[cfg(not(any(test, feature = "lockdep")))]
    fn write_guard<'a>(
        &self,
        inner: std::sync::RwLockWriteGuard<'a, T>,
    ) -> RwLockWriteGuard<'a, T> {
        RwLockWriteGuard { inner }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Shared);
        }
        self.read_guard(self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        self.write_guard(self.inner.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Shared);
        }
        let got = match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(any(test, feature = "lockdep"))]
        if got.is_none() {
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
        }
        got.map(|g| self.read_guard(g))
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        #[cfg(any(test, feature = "lockdep"))]
        if let Some(r) = self.rank {
            lockdep::acquire(r, GuardKind::Exclusive);
        }
        let got = match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        #[cfg(any(test, feature = "lockdep"))]
        if got.is_none() {
            if let Some(r) = self.rank {
                lockdep::release(r);
            }
        }
        got.map(|g| self.write_guard(g))
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Guard returned by [`RwLock::read`].
#[must_use = "dropping an RwLockReadGuard immediately releases the lock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(any(test, feature = "lockdep"))]
    rank: Option<&'static Rank>,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

#[cfg(any(test, feature = "lockdep"))]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(r) = self.rank {
            lockdep::release(r);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Guard returned by [`RwLock::write`].
#[must_use = "dropping an RwLockWriteGuard immediately releases the lock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(any(test, feature = "lockdep"))]
    rank: Option<&'static Rank>,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

#[cfg(any(test, feature = "lockdep"))]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(r) = self.rank {
            lockdep::release(r);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = err.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else {
            String::from("<non-string panic>")
        }
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(&*r1, &*r2);
    }

    #[test]
    fn ranked_ordering_is_tracked() {
        static OUTER: Rank = Rank::new("test.tracked-outer", 10);
        static INNER: Rank = Rank::new("test.tracked-inner", 20);
        let a = Mutex::with_rank(&OUTER, 1);
        let b = RwLock::with_rank(&INNER, 2);
        let ga = a.lock();
        let gb = b.read();
        assert_eq!(
            lockdep::held_rank_names(),
            vec!["test.tracked-outer", "test.tracked-inner"]
        );
        // Out-of-LIFO-order release must not corrupt the stack.
        drop(ga);
        assert_eq!(lockdep::held_rank_names(), vec!["test.tracked-inner"]);
        drop(gb);
        assert!(lockdep::held_rank_names().is_empty());
    }

    #[test]
    fn inversion_panics_with_both_rank_names() {
        static LOW: Rank = Rank::new("test.inversion-low", 10);
        static HIGH: Rank = Rank::new("test.inversion-high", 20);
        let low = Mutex::with_rank(&LOW, ());
        let high = Mutex::with_rank(&HIGH, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _h = high.lock();
            let _l = low.lock(); // inversion: level 10 after level 20
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("test.inversion-low"), "{msg}");
        assert!(msg.contains("test.inversion-high"), "{msg}");
        assert!(lockdep::held_rank_names().is_empty());
    }

    #[test]
    fn two_thread_opposite_order_cycle_is_detected() {
        // Equal-level classes pass the monotonicity check, so opposite
        // acquisition orders across threads are exactly what the global
        // order graph must catch.
        static EQ_A: Rank = Rank::new("test.cycle-a", 50);
        static EQ_B: Rank = Rank::new("test.cycle-b", 50);
        let a = std::sync::Arc::new(Mutex::with_rank(&EQ_A, ()));
        let b = std::sync::Arc::new(Mutex::with_rank(&EQ_B, ()));

        // Thread 1 establishes the order a -> b.
        {
            let (a, b) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = a.lock();
                let _gb = b.lock();
            })
            .join()
            .unwrap();
        }

        // Thread 2 attempts b -> a; lockdep must refuse before deadlock.
        let err = std::thread::spawn(move || {
            catch_unwind(AssertUnwindSafe(|| {
                let _gb = b.lock();
                let _ga = a.lock();
            }))
            .unwrap_err()
        })
        .join()
        .unwrap();
        let msg = panic_message(err);
        assert!(msg.contains("lock-order cycle"), "{msg}");
        assert!(msg.contains("test.cycle-a"), "{msg}");
        assert!(msg.contains("test.cycle-b"), "{msg}");
        assert!(msg.contains("this acquisition at"), "{msg}");
        assert!(msg.contains("first established at"), "{msg}");
    }

    #[test]
    fn recursive_acquisition_panics() {
        static REC: Rank = Rank::new("test.recursive", 30);
        let l = RwLock::with_rank(&REC, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _r1 = l.read();
            let _r2 = l.read(); // same class twice: deadlocks with a queued writer
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("recursive acquisition"), "{msg}");
        assert!(msg.contains("test.recursive"), "{msg}");
    }

    #[test]
    fn io_region_rejects_held_exclusive_lock() {
        static NO_IO: Rank = Rank::new("test.no-io", 40);
        let l = Mutex::with_rank(&NO_IO, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _g = l.lock();
            let _io = lockdep::io_region("test.write-page");
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("I/O region 'test.write-page'"), "{msg}");
        assert!(msg.contains("test.no-io"), "{msg}");
    }

    #[test]
    fn io_region_allows_tolerant_and_shared_holders() {
        static TOLERANT: Rank = Rank::new_io_tolerant("test.io-tolerant", 41);
        static SHARED: Rank = Rank::new("test.io-shared", 42);
        let m = Mutex::with_rank(&TOLERANT, ());
        let rw = RwLock::with_rank(&SHARED, ());
        let _g = m.lock();
        let _r = rw.read();
        let _io = lockdep::io_region("test.read-page");
        // Acquiring a non-tolerant exclusive lock *inside* the region is
        // still a violation.
        static NO_IO2: Rank = Rank::new("test.no-io-inside", 43);
        let bad = Mutex::with_rank(&NO_IO2, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _b = bad.lock();
        }))
        .unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("inside a declared I/O region"), "{msg}");
        assert!(msg.contains("test.no-io-inside"), "{msg}");
    }

    #[test]
    fn condvar_wait_releases_and_reacquires_rank() {
        static CV: Rank = Rank::new("test.condvar", 60);
        let m = Mutex::with_rank(&CV, false);
        let cv = Condvar::new();
        let g = m.lock();
        assert_eq!(lockdep::held_rank_names(), vec!["test.condvar"]);
        let (g, timed_out) = cv.wait_timeout(g, std::time::Duration::from_millis(10));
        assert!(timed_out);
        // The rank is held again after the wait returns...
        assert_eq!(lockdep::held_rank_names(), vec!["test.condvar"]);
        drop(g);
        // ...and fully released afterwards.
        assert!(lockdep::held_rank_names().is_empty());
    }

    #[test]
    fn failed_try_lock_leaves_stack_clean() {
        static TRY: Rank = Rank::new("test.try-lock", 70);
        let m = std::sync::Arc::new(Mutex::with_rank(&TRY, ()));
        let g = m.lock();
        let m2 = std::sync::Arc::clone(&m);
        std::thread::spawn(move || {
            assert!(m2.try_lock().is_none());
            assert!(lockdep::held_rank_names().is_empty());
        })
        .join()
        .unwrap();
        drop(g);
    }

    #[test]
    fn production_rank_table_is_strictly_ordered() {
        let levels: Vec<u16> = rank::ALL.iter().map(|r| r.level).collect();
        for pair in levels.windows(2) {
            assert!(pair[0] < pair[1], "rank table must be strictly increasing");
        }
        let mut names: Vec<&str> = rank::ALL.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rank::ALL.len(), "rank names must be unique");
    }
}
