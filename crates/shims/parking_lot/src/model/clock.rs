//! Vector clocks for the happens-before layer of `natix-model`.
//!
//! Every model task carries a clock; locks, condvars and tracked atomics
//! carry "release" clocks that synchronising operations join into the
//! acquiring task. Two events are *concurrent* when neither clock is
//! component-wise `<=` the other — the race detector flags concurrent
//! conflicting accesses to a tracked atomic when at least one side used
//! `Ordering::Relaxed` (properly release/acquire-ordered protocols are
//! never flagged).

/// A grow-on-demand vector clock indexed by model task id.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    /// Advance this clock's own component: a new local event.
    pub(crate) fn tick(&mut self, id: usize) {
        if self.0.len() <= id {
            self.0.resize(id + 1, 0);
        }
        self.0[id] += 1;
    }

    /// Component-wise maximum: `self` learns everything `other` knows.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// `true` iff every event in `self` is already known to `other`
    /// (i.e. `self` happens-before-or-equals `other`).
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_ordering() {
        let mut a = VClock::default();
        let mut b = VClock::default();
        a.tick(0);
        b.tick(1);
        // Independent ticks are concurrent: neither <= the other.
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        b.join(&a);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        let empty = VClock::default();
        assert!(empty.le(&a));
    }
}
