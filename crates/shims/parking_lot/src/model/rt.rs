//! The deterministic scheduler runtime behind [`crate::model`].
//!
//! One schedule = one run of the user's scenario body with every
//! synchronisation operation (shim lock acquire/release, condvar
//! wait/notify, tracked-atomic access, spawn/join) turned into a
//! *decision point*: the runtime picks which registered task runs next
//! and blocks everyone else on a baton (a std condvar over the global
//! runtime state). Real OS threads back the tasks, but exactly one is
//! ever runnable, so a schedule's outcome is a pure function of the
//! choice sequence — which is what makes failures replayable.
//!
//! The scheduling policy lives in [`Sched`]: bounded-exhaustive DFS over
//! a replayed choice stack, or seeded (PCT-flavoured, preemption-biased)
//! random. Both only branch when more than one task is eligible.
//!
//! The runtime also carries the vector-clock state for the
//! happens-before race detector (see [`super::clock`]) and the named
//! mutation set for the fail-point harness.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

use super::clock::VClock;

/// Absolute per-schedule decision cap: a backstop against livelock in
/// the modelled code itself. Branching decisions are bounded separately
/// (and much lower) by `State::max_branches`.
const ABS_MAX_STEPS: usize = 2_000_000;

/// Panic payload used to unwind tasks when a schedule aborts (a failure
/// was recorded elsewhere, or the branch budget pruned this schedule).
/// Swallowed by the per-task `catch_unwind`; never user-visible.
pub(crate) struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Running,
    Runnable,
    Blocked,
    Done,
}

enum Wait {
    None,
    Mutex(usize),
    RwShared(usize),
    RwExclusive(usize),
    Condvar {
        cv: usize,
        mutex: usize,
        can_time_out: bool,
        notified: bool,
    },
    Join(usize),
}

struct Task {
    status: Status,
    wait: Wait,
    clock: VClock,
    /// Spurious condvar wake-ups granted to this task this schedule.
    spurious: usize,
    /// Set by `grant` when a `wait_timeout` waiter is woken without a
    /// pending notification; read back by `condvar_wait`.
    woke_by_timeout: bool,
}

impl Task {
    fn fresh(clock: VClock) -> Task {
        Task {
            status: Status::Runnable,
            wait: Wait::None,
            clock,
            spurious: 0,
            woke_by_timeout: false,
        }
    }
}

#[derive(Default)]
struct LockState {
    exclusive: Option<usize>,
    shared: Vec<usize>,
    /// Joined from each releasing task; joined into each acquiring task.
    clock: VClock,
    /// Rank name when the lock is ranked — deadlock diagnostics only.
    rank: Option<&'static str>,
    /// Per-schedule creation ordinal: a deterministic name for
    /// diagnostics (raw addresses vary between runs and would make
    /// replayed failure messages differ from the original).
    ord: usize,
}

impl LockState {
    fn free_for_exclusive(&self) -> bool {
        self.exclusive.is_none() && self.shared.is_empty()
    }
}

#[derive(Default)]
struct CvState {
    /// Waiting task ids in registration order (notify_one wakes the
    /// oldest un-notified waiter, like a fair queue).
    waiters: Vec<usize>,
    /// Joined from each notifier; joined into each *notified* waiter.
    clock: VClock,
    /// Per-schedule creation ordinal (see `LockState::ord`).
    ord: usize,
}

#[derive(Clone)]
struct Access {
    task: usize,
    clock: VClock,
    relaxed: bool,
}

#[derive(Default)]
struct AtomicState {
    /// Release clock: joined by release-ordered writes, joined into
    /// acquire-ordered loads/RMWs.
    clock: VClock,
    last_write: Option<Access>,
    /// Last read per task (bounded by task count).
    reads: Vec<Access>,
    /// Per-schedule creation ordinal (see `LockState::ord`).
    ord: usize,
}

/// What kind of tracked-atomic operation occurred (for HB + race rules).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum AtomOp {
    Load,
    Store,
    Rmw,
}

/// Scheduling policy state for one schedule.
pub(crate) enum Sched {
    /// Bounded-exhaustive DFS. `stack` holds `(chosen, options)` per
    /// branching decision; the prefix below `stack.len()` replays, the
    /// first fresh decision pushes `(0, n)`. The driver backtracks by
    /// advancing the deepest frame with alternatives left.
    Dfs {
        stack: Vec<(usize, usize)>,
        depth: usize,
    },
    /// Seeded random, biased toward *not* preempting the running task
    /// (1-in-4 preemption chance), which concentrates schedules on the
    /// small preemption counts where real races live (PCT-style).
    Rand { state: u64, seed: u64 },
}

struct State {
    tasks: Vec<Task>,
    current: usize,
    locks: HashMap<usize, LockState>,
    cvs: HashMap<usize, CvState>,
    atomics: HashMap<usize, AtomicState>,
    sched: Sched,
    /// Branching decisions (options > 1) this schedule.
    branches: usize,
    /// All decisions this schedule (livelock backstop).
    steps: usize,
    max_branches: usize,
    max_spurious: usize,
    check_races: bool,
    mutations: HashSet<String>,
    failure: Option<String>,
    pruned: bool,
    aborting: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// Next creation ordinal for locks/condvars/atomics (diagnostics).
    next_ord: usize,
}

/// Look up or create the lock record for `addr`, stamping a creation
/// ordinal on first sight so diagnostics are replay-stable.
fn lock_mut(state: &mut State, addr: usize) -> &mut LockState {
    if !state.locks.contains_key(&addr) {
        let ord = state.next_ord;
        state.next_ord += 1;
        state.locks.insert(
            addr,
            LockState {
                ord,
                ..LockState::default()
            },
        );
    }
    state.locks.get_mut(&addr).expect("just inserted")
}

/// As [`lock_mut`], for condvars.
fn cv_mut(state: &mut State, addr: usize) -> &mut CvState {
    if !state.cvs.contains_key(&addr) {
        let ord = state.next_ord;
        state.next_ord += 1;
        state.cvs.insert(
            addr,
            CvState {
                ord,
                ..CvState::default()
            },
        );
    }
    state.cvs.get_mut(&addr).expect("just inserted")
}

/// As [`lock_mut`], for tracked atomics.
fn atomic_mut(state: &mut State, addr: usize) -> &mut AtomicState {
    if !state.atomics.contains_key(&addr) {
        let ord = state.next_ord;
        state.next_ord += 1;
        state.atomics.insert(
            addr,
            AtomicState {
                ord,
                ..AtomicState::default()
            },
        );
    }
    state.atomics.get_mut(&addr).expect("just inserted")
}

impl State {
    fn idle() -> State {
        State {
            tasks: Vec::new(),
            current: 0,
            locks: HashMap::new(),
            cvs: HashMap::new(),
            atomics: HashMap::new(),
            sched: Sched::Dfs {
                stack: Vec::new(),
                depth: 0,
            },
            branches: 0,
            steps: 0,
            max_branches: 0,
            max_spurious: 0,
            check_races: false,
            mutations: HashSet::new(),
            failure: None,
            pruned: false,
            aborting: false,
            os_handles: Vec::new(),
            next_ord: 0,
        }
    }
}

struct Rt {
    mx: StdMutex<State>,
    cv: StdCondvar,
}

fn rt() -> &'static Rt {
    static R: OnceLock<Rt> = OnceLock::new();
    R.get_or_init(|| Rt {
        mx: StdMutex::new(State::idle()),
        cv: StdCondvar::new(),
    })
}

fn st() -> StdMutexGuard<'static, State> {
    rt().mx.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// The model task id this OS thread is registered as, if any.
    /// Unregistered threads pass straight through to the real shim.
    static CURRENT: Cell<Option<usize>> = const { Cell::new(None) };
}

pub(crate) fn current_task() -> Option<usize> {
    CURRENT.with(Cell::get)
}

/// Is this thread a registered model task of a running exploration?
pub(crate) fn active_on_this_thread() -> bool {
    current_task().is_some()
}

fn must_current() -> usize {
    match current_task() {
        Some(id) => id,
        None => unreachable!("model runtime entered from an unregistered thread"),
    }
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the per-schedule seed for schedule `index` of a random run.
pub(crate) fn derive_seed(base: u64, index: usize) -> u64 {
    let mut x = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1);
    splitmix64(&mut x)
}

fn fail(state: &mut State, message: String) {
    if state.failure.is_none() {
        state.failure = Some(message);
    }
    state.aborting = true;
}

fn abort_now() -> ! {
    rt().cv.notify_all();
    std::panic::panic_any(Abort)
}

fn check(r: Result<(), Abort>) {
    if r.is_err() {
        std::panic::panic_any(Abort);
    }
}

// ---------------------------------------------------------------------------
// Eligibility, granting, and the central scheduling decision
// ---------------------------------------------------------------------------

fn eligible(state: &State, t: usize) -> bool {
    match state.tasks[t].status {
        Status::Running | Status::Runnable => true,
        Status::Done => false,
        Status::Blocked => match state.tasks[t].wait {
            Wait::None => false,
            Wait::Mutex(a) | Wait::RwExclusive(a) => state
                .locks
                .get(&a)
                .is_none_or(LockState::free_for_exclusive),
            Wait::RwShared(a) => state.locks.get(&a).is_none_or(|l| l.exclusive.is_none()),
            Wait::Condvar {
                mutex,
                can_time_out,
                notified,
                ..
            } => {
                // Waking a waiter reacquires its mutex in the same step,
                // so the mutex must be free; an un-notified waiter can
                // still wake by timeout or by a (budgeted) spurious wake.
                state
                    .locks
                    .get(&mutex)
                    .is_none_or(LockState::free_for_exclusive)
                    && (notified || can_time_out || state.tasks[t].spurious < state.max_spurious)
            }
            Wait::Join(j) => state.tasks[j].status == Status::Done,
        },
    }
}

/// Make `t` the running task, performing whatever its wake-up implies
/// (lock acquisition, condvar dequeue + mutex reacquire, join edge).
fn grant(state: &mut State, t: usize) {
    if state.tasks[t].status != Status::Blocked {
        state.tasks[t].status = Status::Running;
        return;
    }
    let wait = std::mem::replace(&mut state.tasks[t].wait, Wait::None);
    match wait {
        Wait::None => {}
        Wait::Mutex(a) | Wait::RwExclusive(a) => {
            let lock = lock_mut(state, a);
            lock.exclusive = Some(t);
            let lc = lock.clock.clone();
            state.tasks[t].clock.join(&lc);
        }
        Wait::RwShared(a) => {
            let lock = lock_mut(state, a);
            lock.shared.push(t);
            let lc = lock.clock.clone();
            state.tasks[t].clock.join(&lc);
        }
        Wait::Condvar {
            cv,
            mutex,
            can_time_out,
            notified,
        } => {
            if let Some(c) = state.cvs.get_mut(&cv) {
                c.waiters.retain(|&w| w != t);
            }
            state.tasks[t].woke_by_timeout = can_time_out && !notified;
            if !notified && !can_time_out {
                state.tasks[t].spurious += 1;
            }
            if notified {
                if let Some(cc) = state.cvs.get(&cv).map(|c| c.clock.clone()) {
                    state.tasks[t].clock.join(&cc);
                }
            }
            let lock = lock_mut(state, mutex);
            lock.exclusive = Some(t);
            let lc = lock.clock.clone();
            state.tasks[t].clock.join(&lc);
        }
        Wait::Join(j) => {
            let jc = state.tasks[j].clock.clone();
            state.tasks[t].clock.join(&jc);
        }
    }
    state.tasks[t].status = Status::Running;
}

/// Pick an index into `options` according to the schedule policy.
/// Only calls with `options.len() > 1` consume policy state.
fn choose(state: &mut State, options: &[usize]) -> usize {
    if options.len() == 1 {
        return options[0];
    }
    state.branches += 1;
    if state.branches > state.max_branches {
        state.pruned = true;
        state.aborting = true;
        return options[0];
    }
    let cur = state.current;
    let idx = match &mut state.sched {
        Sched::Dfs { stack, depth } => {
            let d = *depth;
            *depth += 1;
            if d < stack.len() {
                stack[d].0.min(options.len() - 1)
            } else {
                stack.push((0, options.len()));
                0
            }
        }
        Sched::Rand { state: rng, .. } => {
            let r = splitmix64(rng);
            match options.iter().position(|&t| t == cur) {
                // Preempt the running task only 1 time in 4.
                Some(p) if r & 3 != 0 => p,
                Some(p) => {
                    let k = ((r >> 2) as usize) % (options.len() - 1);
                    if k < p {
                        k
                    } else {
                        k + 1
                    }
                }
                None => (r as usize) % options.len(),
            }
        }
    };
    options[idx]
}

fn describe_blocked(state: &State) -> String {
    let mut parts = Vec::new();
    for (i, t) in state.tasks.iter().enumerate() {
        if t.status != Status::Blocked {
            continue;
        }
        let what = match t.wait {
            Wait::None => "nothing".to_string(),
            Wait::Mutex(a) | Wait::RwExclusive(a) | Wait::RwShared(a) => {
                let (rank, ord) = state
                    .locks
                    .get(&a)
                    .map(|l| (l.rank.unwrap_or("<unranked>"), l.ord))
                    .unwrap_or(("<unranked>", usize::MAX));
                format!("lock {rank} #{ord}")
            }
            Wait::Condvar { cv, .. } => {
                let ord = state.cvs.get(&cv).map(|c| c.ord).unwrap_or(usize::MAX);
                format!("condvar #{ord}")
            }
            Wait::Join(j) => format!("join of task {j}"),
        };
        parts.push(format!("task {i} blocked on {what}"));
    }
    parts.join("; ")
}

/// The single scheduling decision. The caller must already have set its
/// own status (Runnable to cede, Blocked to wait). Hands the baton to
/// the chosen task and, if that is not `me`, parks until it comes back.
fn decide_and_wait(mut state: StdMutexGuard<'static, State>, me: usize) -> Result<(), Abort> {
    state.steps += 1;
    if state.steps > ABS_MAX_STEPS {
        fail(
            &mut state,
            "model: schedule exceeded the absolute step limit (livelock in the modelled code?)"
                .to_string(),
        );
    }
    if state.aborting {
        drop(state);
        rt().cv.notify_all();
        return Err(Abort);
    }
    let options: Vec<usize> = (0..state.tasks.len())
        .filter(|&t| eligible(&state, t))
        .collect();
    if options.is_empty() {
        let msg = format!(
            "model: deadlock — no task can run ({})",
            describe_blocked(&state)
        );
        fail(&mut state, msg);
        drop(state);
        rt().cv.notify_all();
        return Err(Abort);
    }
    let chosen = choose(&mut state, &options);
    if state.aborting {
        drop(state);
        rt().cv.notify_all();
        return Err(Abort);
    }
    grant(&mut state, chosen);
    state.current = chosen;
    if chosen == me {
        return Ok(());
    }
    rt().cv.notify_all();
    loop {
        state = rt().cv.wait(state).unwrap_or_else(|e| e.into_inner());
        if state.aborting {
            drop(state);
            rt().cv.notify_all();
            return Err(Abort);
        }
        if state.current == me && state.tasks[me].status == Status::Running {
            return Ok(());
        }
    }
}

/// A decision point at which the caller stays eligible.
fn yield_decision(me: usize) -> Result<(), Abort> {
    let mut state = st();
    if state.tasks[me].status == Status::Running {
        state.tasks[me].status = Status::Runnable;
    }
    decide_and_wait(state, me)
}

/// A decision point at which the caller blocks on `wait`; returns once
/// the scheduler has granted the wake-up (see [`grant`]).
fn block_decision(
    mut state: StdMutexGuard<'static, State>,
    me: usize,
    wait: Wait,
) -> Result<(), Abort> {
    state.tasks[me].status = Status::Blocked;
    state.tasks[me].wait = wait;
    decide_and_wait(state, me)
}

// ---------------------------------------------------------------------------
// Entry points called from the shim primitives
// ---------------------------------------------------------------------------

pub(crate) fn yield_now() {
    let me = must_current();
    if std::thread::panicking() {
        return;
    }
    check(yield_decision(me));
}

pub(crate) fn mutex_lock(addr: usize, rank: Option<&'static str>) {
    let me = must_current();
    if std::thread::panicking() {
        // Unwinding code paths must make progress without scheduling.
        let mut state = st();
        let lock = lock_mut(&mut state, addr);
        lock.exclusive = Some(me);
        return;
    }
    check(yield_decision(me));
    let mut state = st();
    let lock = lock_mut(&mut state, addr);
    lock.rank = lock.rank.or(rank);
    if lock.free_for_exclusive() {
        lock.exclusive = Some(me);
        let lc = lock.clock.clone();
        state.tasks[me].clock.join(&lc);
        return;
    }
    check(block_decision(state, me, Wait::Mutex(addr)));
}

pub(crate) fn mutex_try_lock(addr: usize, rank: Option<&'static str>) -> bool {
    let me = must_current();
    if std::thread::panicking() {
        let mut state = st();
        let lock = lock_mut(&mut state, addr);
        if lock.free_for_exclusive() {
            lock.exclusive = Some(me);
            return true;
        }
        return false;
    }
    check(yield_decision(me));
    let mut state = st();
    let lock = lock_mut(&mut state, addr);
    lock.rank = lock.rank.or(rank);
    if lock.free_for_exclusive() {
        lock.exclusive = Some(me);
        let lc = lock.clock.clone();
        state.tasks[me].clock.join(&lc);
        true
    } else {
        false
    }
}

pub(crate) fn mutex_unlock(addr: usize) {
    let Some(me) = current_task() else { return };
    let mut state = st();
    let my_clock = state.tasks[me].clock.clone();
    if let Some(lock) = state.locks.get_mut(&addr) {
        lock.clock.join(&my_clock);
        if lock.exclusive == Some(me) {
            lock.exclusive = None;
        }
    }
    state.tasks[me].clock.tick(me);
    if state.aborting || std::thread::panicking() {
        drop(state);
        rt().cv.notify_all();
        return;
    }
    // Post-release decision point: a waiter may claim the lock before
    // the releasing task continues.
    state.tasks[me].status = Status::Runnable;
    check(decide_and_wait(state, me));
}

pub(crate) fn rw_lock(addr: usize, rank: Option<&'static str>, exclusive: bool) {
    let me = must_current();
    if std::thread::panicking() {
        let mut state = st();
        let lock = lock_mut(&mut state, addr);
        if exclusive {
            lock.exclusive = Some(me);
        } else {
            lock.shared.push(me);
        }
        return;
    }
    check(yield_decision(me));
    let mut state = st();
    let lock = lock_mut(&mut state, addr);
    lock.rank = lock.rank.or(rank);
    let can = if exclusive {
        lock.free_for_exclusive()
    } else {
        lock.exclusive.is_none()
    };
    if can {
        if exclusive {
            lock.exclusive = Some(me);
        } else {
            lock.shared.push(me);
        }
        let lc = lock.clock.clone();
        state.tasks[me].clock.join(&lc);
        return;
    }
    let wait = if exclusive {
        Wait::RwExclusive(addr)
    } else {
        Wait::RwShared(addr)
    };
    check(block_decision(state, me, wait));
}

pub(crate) fn rw_try_lock(addr: usize, rank: Option<&'static str>, exclusive: bool) -> bool {
    let me = must_current();
    if !std::thread::panicking() {
        check(yield_decision(me));
    }
    let mut state = st();
    let lock = lock_mut(&mut state, addr);
    lock.rank = lock.rank.or(rank);
    let can = if exclusive {
        lock.free_for_exclusive()
    } else {
        lock.exclusive.is_none()
    };
    if can {
        if exclusive {
            lock.exclusive = Some(me);
        } else {
            lock.shared.push(me);
        }
        let lc = lock.clock.clone();
        state.tasks[me].clock.join(&lc);
    }
    can
}

pub(crate) fn rw_unlock(addr: usize, exclusive: bool) {
    let Some(me) = current_task() else { return };
    let mut state = st();
    let my_clock = state.tasks[me].clock.clone();
    if let Some(lock) = state.locks.get_mut(&addr) {
        lock.clock.join(&my_clock);
        if exclusive {
            if lock.exclusive == Some(me) {
                lock.exclusive = None;
            }
        } else if let Some(pos) = lock.shared.iter().position(|&s| s == me) {
            lock.shared.swap_remove(pos);
        }
    }
    state.tasks[me].clock.tick(me);
    if state.aborting || std::thread::panicking() {
        drop(state);
        rt().cv.notify_all();
        return;
    }
    state.tasks[me].status = Status::Runnable;
    check(decide_and_wait(state, me));
}

/// Cooperative condvar wait: releases `mutex`, parks on `cv`, and
/// returns with the mutex reacquired. Returns whether the wake-up was a
/// timeout (only possible when `can_time_out`).
pub(crate) fn condvar_wait(cv_addr: usize, mutex: usize, can_time_out: bool) -> bool {
    let me = must_current();
    if std::thread::panicking() {
        return true;
    }
    let mut state = st();
    // Release the mutex (the wait's contract) with release semantics.
    let my_clock = state.tasks[me].clock.clone();
    if let Some(lock) = state.locks.get_mut(&mutex) {
        lock.clock.join(&my_clock);
        if lock.exclusive == Some(me) {
            lock.exclusive = None;
        }
    }
    state.tasks[me].clock.tick(me);
    cv_mut(&mut state, cv_addr).waiters.push(me);
    check(block_decision(
        state,
        me,
        Wait::Condvar {
            cv: cv_addr,
            mutex,
            can_time_out,
            notified: false,
        },
    ));
    let mut state = st();
    let timed_out = state.tasks[me].woke_by_timeout;
    state.tasks[me].woke_by_timeout = false;
    timed_out
}

pub(crate) fn condvar_notify(cv_addr: usize, all: bool) {
    let me = must_current();
    let mut state = st();
    let my_clock = state.tasks[me].clock.clone();
    let waiters = {
        let c = cv_mut(&mut state, cv_addr);
        c.clock.join(&my_clock);
        c.waiters.clone()
    };
    for w in waiters {
        if let Wait::Condvar {
            ref mut notified, ..
        } = state.tasks[w].wait
        {
            if !*notified {
                *notified = true;
                if !all {
                    break;
                }
            }
        }
    }
    state.tasks[me].clock.tick(me);
    if state.aborting || std::thread::panicking() {
        drop(state);
        rt().cv.notify_all();
        return;
    }
    state.tasks[me].status = Status::Runnable;
    check(decide_and_wait(state, me));
}

// ---------------------------------------------------------------------------
// Tracked atomics
// ---------------------------------------------------------------------------

pub(crate) fn atomic_event(addr: usize, op: AtomOp, order: Ordering) {
    let Some(me) = current_task() else { return };
    if std::thread::panicking() {
        return;
    }
    check(yield_decision(me));
    let mut state = st();
    let relaxed = matches!(order, Ordering::Relaxed);
    let is_load_acq = matches!(op, AtomOp::Load | AtomOp::Rmw)
        && matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        );
    let is_store_rel = matches!(op, AtomOp::Store | AtomOp::Rmw)
        && matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        );
    let is_write = !matches!(op, AtomOp::Load);

    // Race check against the pre-join clock: two conflicting accesses
    // that are concurrent under happens-before are flagged when at
    // least one of them is Relaxed. (All-ordered pairs synchronise
    // through the atomic itself; relaxed pairs do not.)
    if state.check_races {
        let my_clock = state.tasks[me].clock.clone();
        let mut race: Option<String> = None;
        if let Some(a) = state.atomics.get(&addr) {
            let ord = a.ord;
            if let Some(w) = &a.last_write {
                if w.task != me && !w.clock.le(&my_clock) && (w.relaxed || relaxed) {
                    race = Some(format!(
                        "model: data race on tracked atomic #{ord}: {} by task {me} \
                         ({order:?}) is concurrent with a write by task {} ({}), and at \
                         least one side is Relaxed",
                        if is_write { "write" } else { "read" },
                        w.task,
                        if w.relaxed { "Relaxed" } else { "ordered" },
                    ));
                }
            }
            if is_write && race.is_none() {
                for r in &a.reads {
                    if r.task != me && !r.clock.le(&my_clock) && (r.relaxed || relaxed) {
                        race = Some(format!(
                            "model: data race on tracked atomic #{ord}: write by task \
                             {me} ({order:?}) is concurrent with a read by task {} ({}), \
                             and at least one side is Relaxed",
                            r.task,
                            if r.relaxed { "Relaxed" } else { "ordered" },
                        ));
                        break;
                    }
                }
            }
        }
        if let Some(msg) = race {
            fail(&mut state, msg);
            drop(state);
            abort_now();
        }
    }

    if is_load_acq {
        if let Some(ac) = state.atomics.get(&addr).map(|a| a.clock.clone()) {
            state.tasks[me].clock.join(&ac);
        }
    }
    state.tasks[me].clock.tick(me);
    let my_clock = state.tasks[me].clock.clone();
    let a = atomic_mut(&mut state, addr);
    if is_store_rel {
        a.clock.join(&my_clock);
    }
    if is_write {
        a.last_write = Some(Access {
            task: me,
            clock: my_clock,
            relaxed,
        });
    } else {
        let access = Access {
            task: me,
            clock: my_clock,
            relaxed,
        };
        if let Some(r) = a.reads.iter_mut().find(|r| r.task == me) {
            *r = access;
        } else {
            a.reads.push(access);
        }
    }
}

// ---------------------------------------------------------------------------
// Spawn / join / task lifecycle
// ---------------------------------------------------------------------------

/// Allocate a task id for a child of the calling task (happens-before
/// edge from parent to child).
pub(crate) fn spawn_register() -> usize {
    let me = must_current();
    let mut state = st();
    let id = state.tasks.len();
    let mut clock = state.tasks[me].clock.clone();
    clock.tick(id);
    state.tasks.push(Task::fresh(clock));
    state.tasks[me].clock.tick(me);
    id
}

/// Record the OS handle backing a task so `end_schedule` can join it
/// even if the scenario dropped its model `JoinHandle`.
pub(crate) fn os_handle_register(h: std::thread::JoinHandle<()>) {
    st().os_handles.push(h);
}

/// Register the calling OS thread as model task `id`.
pub(crate) fn register_thread(id: usize) {
    CURRENT.with(|c| c.set(Some(id)));
}

/// Park a freshly spawned task until the scheduler first picks it.
pub(crate) fn first_wait(id: usize) {
    let mut state = st();
    loop {
        if state.aborting {
            drop(state);
            abort_now();
        }
        if state.current == id && state.tasks[id].status == Status::Running {
            return;
        }
        state = rt().cv.wait(state).unwrap_or_else(|e| e.into_inner());
    }
}

/// The decision point right after `spawn` returns in the parent.
pub(crate) fn after_spawn_yield() {
    let me = must_current();
    check(yield_decision(me));
}

/// Block until task `target` is done (adds the join happens-before edge).
pub(crate) fn join_block(target: usize) {
    let me = must_current();
    if std::thread::panicking() {
        return;
    }
    let mut state = st();
    if state.tasks[target].status == Status::Done {
        let jc = state.tasks[target].clock.clone();
        state.tasks[me].clock.join(&jc);
        return;
    }
    check(block_decision(state, me, Wait::Join(target)));
}

fn panic_message(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Mark task `id` done (optionally with the panic payload that ended
/// it) and pass the baton on. Called by the task's own OS thread.
pub(crate) fn task_done(id: usize, payload: Option<Box<dyn std::any::Any + Send>>) {
    let mut state = st();
    if let Some(p) = payload {
        if !p.is::<Abort>() {
            let msg = format!("model: task {id} panicked: {}", panic_message(&p));
            fail(&mut state, msg);
        }
    }
    state.tasks[id].status = Status::Done;
    state.tasks[id].clock.tick(id);
    CURRENT.with(|c| c.set(None));
    if !state.aborting {
        let options: Vec<usize> = (0..state.tasks.len())
            .filter(|&t| eligible(&state, t))
            .collect();
        if options.is_empty() {
            if state.tasks.iter().any(|t| t.status != Status::Done) {
                let msg = format!(
                    "model: deadlock — no task can run ({})",
                    describe_blocked(&state)
                );
                fail(&mut state, msg);
            }
        } else {
            let chosen = choose(&mut state, &options);
            if !state.aborting {
                grant(&mut state, chosen);
                state.current = chosen;
            }
        }
    }
    drop(state);
    rt().cv.notify_all();
}

// ---------------------------------------------------------------------------
// Mutations (fail points)
// ---------------------------------------------------------------------------

pub(crate) fn mutation_active(name: &str) -> bool {
    if current_task().is_none() {
        return false;
    }
    st().mutations.contains(name)
}

// ---------------------------------------------------------------------------
// Schedule lifecycle (driven by `model::explore`)
// ---------------------------------------------------------------------------

pub(crate) struct Outcome {
    pub failure: Option<String>,
    pub pruned: bool,
    pub token: String,
    /// For DFS: the choice stack truncated to the decisions actually
    /// consumed, ready for backtracking.
    pub dfs_stack: Option<Vec<(usize, usize)>>,
}

/// Reset the runtime for one schedule and register the calling thread
/// as task 0 (the scenario body).
pub(crate) fn begin_schedule(
    sched: Sched,
    max_branches: usize,
    max_spurious: usize,
    check_races: bool,
    mutations: &[String],
) {
    let mut state = st();
    let mut fresh = State::idle();
    fresh.sched = sched;
    fresh.max_branches = max_branches;
    fresh.max_spurious = max_spurious;
    fresh.check_races = check_races;
    fresh.mutations = mutations.iter().cloned().collect();
    let mut main = Task::fresh(VClock::default());
    main.status = Status::Running;
    fresh.tasks.push(main);
    fresh.current = 0;
    *state = fresh;
    drop(state);
    register_thread(0);
}

/// Wait for every task to finish, join the backing OS threads, and
/// extract the schedule's outcome. Clears the thread registration.
pub(crate) fn end_schedule() -> Outcome {
    let mut state = st();
    while state.tasks.iter().any(|t| t.status != Status::Done) {
        state = rt().cv.wait(state).unwrap_or_else(|e| e.into_inner());
    }
    let handles = std::mem::take(&mut state.os_handles);
    drop(state);
    for h in handles {
        let _ = h.join();
    }
    let mut state = st();
    let failure = state.failure.take();
    let pruned = state.pruned;
    let (token, dfs_stack) = match &state.sched {
        Sched::Dfs { stack, depth } => {
            let consumed: Vec<(usize, usize)> = stack[..(*depth).min(stack.len())].to_vec();
            let token = format!(
                "dfs:{}",
                consumed
                    .iter()
                    .map(|(c, _)| c.to_string())
                    .collect::<Vec<_>>()
                    .join(".")
            );
            (token, Some(consumed))
        }
        Sched::Rand { seed, .. } => (format!("seed:{seed}"), None),
    };
    *state = State::idle();
    drop(state);
    CURRENT.with(|c| c.set(None));
    Outcome {
        failure,
        pruned,
        token,
        dfs_stack,
    }
}
