//! `natix-model` — a loom/shuttle-style deterministic concurrency model
//! checker baked into the parking_lot shim (hand-rolled: this repository
//! builds offline). Compiled only under `cfg(any(test, feature =
//! "model"))`; release builds keep the zero-cost shim.
//!
//! # How it works
//!
//! [`explore`] runs a scenario body repeatedly, once per *schedule*.
//! Inside a schedule, every shim synchronisation operation — `Mutex` /
//! `RwLock` acquire and release, `Condvar` wait/notify, tracked-atomic
//! access ([`crate::TrackedAtomicU64`] and friends), [`spawn`] / join —
//! becomes a cooperative decision point: a single scheduler picks which
//! task runs next and parks everyone else, so exactly one OS thread is
//! ever runnable and the schedule's outcome is a pure function of the
//! choice sequence.
//!
//! Two exploration modes:
//! - **bounded-exhaustive DFS** ([`Mode::Exhaustive`]) enumerates every
//!   interleaving of a small model, bounded by a branch budget and a
//!   schedule cap;
//! - **seeded random** ([`Mode::Random`]), PCT-flavoured (biased toward
//!   few preemptions), samples large models; each schedule derives its
//!   own seed from the base seed, and a failure prints that seed.
//!
//! Every failure carries a replay **token** (`seed:N` or `dfs:0.1.2`);
//! [`Config::replay`] re-runs exactly that interleaving.
//!
//! A vector-clock happens-before race detector (enable with
//! [`Config::with_races`]) is layered over tracked atomics: concurrent
//! conflicting accesses where at least one side is `Ordering::Relaxed`
//! are reported as races — correctly release/acquire-ordered protocols
//! are never flagged.
//!
//! Named **mutations** ([`Config::with_mutation`]) drive the fail-point
//! harness: production guards query [`crate::fail_point`] (a const
//! `false` outside model builds) so model tests can revert a specific
//! guard and assert the checker catches the resulting race.

pub(crate) mod clock;
pub(crate) mod rt;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

/// Is the calling OS thread a registered task of a running exploration?
/// When `false`, shim primitives behave exactly as without the model.
pub fn active_on_this_thread() -> bool {
    rt::active_on_this_thread()
}

/// Is the named mutation active in the current exploration? `false` on
/// unregistered threads. Production code should prefer
/// [`crate::fail_point`], which also compiles (to `false`) in release
/// builds.
pub fn mutation(name: &str) -> bool {
    rt::mutation_active(name)
}

/// Exploration policy.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Bounded-exhaustive DFS over all interleavings, stopping after
    /// `max_schedules` schedules if the space is larger.
    Exhaustive { max_schedules: usize },
    /// `schedules` seeded random schedules; schedule `i` runs under a
    /// seed derived from `seed` and `i`, printed on failure.
    Random { seed: u64, schedules: usize },
    /// Replay a single schedule from a failure token
    /// (`seed:N` or `dfs:0.1.2`).
    Replay { token: String },
}

/// Configuration for one [`explore`] call.
#[derive(Clone, Debug)]
pub struct Config {
    pub mode: Mode,
    /// Branching-decision budget per schedule; exceeding it silently
    /// prunes the schedule (counted in [`Report::pruned`]).
    pub max_branches: usize,
    /// Spurious condvar wake-ups the scheduler may inject per task per
    /// schedule. 1 is enough to catch missing re-check loops.
    pub max_spurious: usize,
    /// Enable the vector-clock happens-before race detector over
    /// tracked atomics.
    pub check_races: bool,
    /// Active mutation (fail-point) names; see [`crate::fail_point`].
    pub mutations: Vec<String>,
}

impl Config {
    pub fn exhaustive() -> Config {
        Config {
            mode: Mode::Exhaustive {
                max_schedules: 20_000,
            },
            max_branches: 4_000,
            max_spurious: 1,
            check_races: false,
            mutations: Vec::new(),
        }
    }

    pub fn random(seed: u64, schedules: usize) -> Config {
        Config {
            mode: Mode::Random { seed, schedules },
            ..Config::exhaustive()
        }
    }

    /// Build a replay config from a failure token (`seed:N` / `dfs:...`).
    pub fn replay(token: &str) -> Config {
        Config {
            mode: Mode::Replay {
                token: token.to_string(),
            },
            ..Config::exhaustive()
        }
    }

    pub fn with_max_schedules(mut self, n: usize) -> Config {
        if let Mode::Exhaustive { max_schedules } = &mut self.mode {
            *max_schedules = n;
        }
        self
    }

    pub fn with_max_branches(mut self, n: usize) -> Config {
        self.max_branches = n;
        self
    }

    pub fn with_max_spurious(mut self, n: usize) -> Config {
        self.max_spurious = n;
        self
    }

    pub fn with_races(mut self) -> Config {
        self.check_races = true;
        self
    }

    pub fn with_mutation(mut self, name: &str) -> Config {
        self.mutations.push(name.to_string());
        self
    }
}

/// Summary of a clean exploration.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules fully executed.
    pub schedules: usize,
    /// Schedules cut short by the branch budget.
    pub pruned: usize,
}

/// A failing schedule: the failure message plus the token that replays
/// the exact interleaving via [`Config::replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    pub message: String,
    pub token: String,
    /// Schedules executed up to and including the failing one.
    pub schedules: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [schedule {} — replay with token '{}']",
            self.message, self.schedules, self.token
        )
    }
}

fn run_gate() -> &'static StdMutex<()> {
    static G: OnceLock<StdMutex<()>> = OnceLock::new();
    G.get_or_init(|| StdMutex::new(()))
}

fn parse_token(token: &str) -> Result<rt::Sched, String> {
    if let Some(seed) = token.strip_prefix("seed:") {
        let seed: u64 = seed
            .parse()
            .map_err(|e| format!("model: bad seed token '{token}': {e}"))?;
        return Ok(rt::Sched::Rand { state: seed, seed });
    }
    if let Some(trace) = token.strip_prefix("dfs:") {
        let mut stack = Vec::new();
        if !trace.is_empty() {
            for part in trace.split('.') {
                let c: usize = part
                    .parse()
                    .map_err(|e| format!("model: bad dfs token '{token}': {e}"))?;
                stack.push((c, usize::MAX));
            }
        }
        return Ok(rt::Sched::Dfs { stack, depth: 0 });
    }
    Err(format!("model: unrecognised replay token '{token}'"))
}

/// Explore the scenario under `config`, returning either a clean
/// [`Report`] or the first [`Failure`] (with its replay token).
///
/// The body runs once per schedule on the calling thread (task 0) and
/// may [`spawn`] further tasks; it must construct any shared state
/// fresh inside the closure so schedules are independent. Explorations
/// are serialised process-wide.
pub fn explore_result<F: Fn()>(config: &Config, body: F) -> Result<Report, Failure> {
    let _gate = run_gate().lock().unwrap_or_else(|e| e.into_inner());
    let mut schedules = 0usize;
    let mut pruned_total = 0usize;
    let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
    let mut index = 0usize;
    loop {
        let sched = match &config.mode {
            Mode::Exhaustive { .. } => rt::Sched::Dfs {
                stack: dfs_stack.clone(),
                depth: 0,
            },
            Mode::Random { seed, .. } => {
                let s = rt::derive_seed(*seed, index);
                rt::Sched::Rand { state: s, seed: s }
            }
            Mode::Replay { token } => match parse_token(token) {
                Ok(s) => s,
                Err(msg) => {
                    return Err(Failure {
                        message: msg,
                        token: token.clone(),
                        schedules: 0,
                    })
                }
            },
        };
        rt::begin_schedule(
            sched,
            config.max_branches,
            config.max_spurious,
            config.check_races,
            &config.mutations,
        );
        let payload = catch_unwind(AssertUnwindSafe(&body)).err();
        rt::task_done(0, payload);
        let out = rt::end_schedule();
        schedules += 1;
        if out.pruned {
            pruned_total += 1;
        }
        if let Some(message) = out.failure {
            return Err(Failure {
                message,
                token: out.token,
                schedules,
            });
        }
        match &config.mode {
            Mode::Exhaustive { max_schedules } => {
                if schedules >= *max_schedules {
                    break;
                }
                let mut stack = out.dfs_stack.unwrap_or_default();
                // Backtrack: advance the deepest decision with an
                // untried alternative; exploration is complete when
                // none remains.
                loop {
                    match stack.last_mut() {
                        None => {
                            return Ok(Report {
                                schedules,
                                pruned: pruned_total,
                            })
                        }
                        Some(last) => {
                            if last.0 + 1 < last.1 {
                                last.0 += 1;
                                break;
                            }
                            stack.pop();
                        }
                    }
                }
                dfs_stack = stack;
            }
            Mode::Random { schedules: n, .. } => {
                index += 1;
                if index >= *n {
                    break;
                }
            }
            Mode::Replay { .. } => break,
        }
    }
    Ok(Report {
        schedules,
        pruned: pruned_total,
    })
}

/// Like [`explore_result`] but panics on failure with a message that
/// includes the replay token.
pub fn explore<F: Fn()>(config: &Config, body: F) -> Report {
    match explore_result(config, body) {
        Ok(r) => r,
        Err(f) => panic!("natix-model failure: {f}"),
    }
}

/// Handle to a task spawned with [`spawn`]; `join` blocks the calling
/// task cooperatively and returns the closure's value.
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> T {
        rt::join_block(self.id);
        let taken = self.result.lock().unwrap_or_else(|e| e.into_inner()).take();
        match taken {
            Some(v) => v,
            // The task ended without a value, i.e. it panicked; the
            // runtime is already aborting — propagate.
            None => std::panic::panic_any(rt::Abort),
        }
    }
}

/// Spawn a model task on its own OS thread. Must be called from a
/// registered task of a running exploration. The spawn itself and the
/// child's first step are scheduling decisions; panics in `f` become
/// schedule failures with a replay token.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let id = rt::spawn_register();
    let result = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let os = std::thread::Builder::new()
        .name(format!("model-task-{id}"))
        .spawn(move || {
            rt::register_thread(id);
            let payload = catch_unwind(AssertUnwindSafe(|| {
                rt::first_wait(id);
                f()
            }));
            match payload {
                Ok(v) => {
                    *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                    rt::task_done(id, None);
                }
                Err(p) => rt::task_done(id, Some(p)),
            }
        })
        .expect("model: failed to spawn an OS thread for a model task");
    rt::os_handle_register(os);
    rt::after_spawn_yield();
    JoinHandle { id, result }
}

/// An explicit decision point with no side effects.
pub fn yield_now() {
    if rt::active_on_this_thread() {
        rt::yield_now();
    }
}
