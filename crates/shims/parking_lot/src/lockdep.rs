//! Lockdep-style runtime validation of the NATIX lock hierarchy.
//!
//! Compiled only under `cfg(any(test, feature = "lockdep"))`; release
//! builds of the shim carry none of this. Three checks run on every
//! acquisition of a *ranked* lock (unranked locks are invisible here):
//!
//! 1. **Recursion** — acquiring a class this thread already holds panics.
//! 2. **Rank monotonicity** — acquiring a class whose level is *lower*
//!    than the most recently acquired held lock panics with both rank
//!    names and the full held chain.
//! 3. **Order-graph cycles** — every `held -> acquired` pair becomes an
//!    edge in a global graph (first-occurrence backtrace recorded). If
//!    the new acquisition closes a cycle — e.g. two equal-level classes
//!    taken in opposite orders by two threads — the panic reports both
//!    offending sites.
//!
//! Additionally the storage layer declares **I/O regions**
//! ([`io_region`]): entering one while holding any exclusive lock whose
//! rank is not `io_tolerant` panics, as does acquiring such a lock while
//! inside a region. Shared (read) guards are exempt — holding a read
//! guard across I/O starves no one.

use crate::rank::Rank;
use std::backtrace::Backtrace;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{Mutex as StdMutex, OnceLock};

/// How a ranked lock is held; read guards are `Shared`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuardKind {
    Exclusive,
    Shared,
}

#[derive(Clone, Copy)]
struct Held {
    rank: &'static Rank,
    kind: GuardKind,
}

thread_local! {
    /// Ranked locks this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Nesting depth of declared I/O regions on this thread.
    static IO_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// First-seen site of a lock-order edge, kept for cycle diagnostics.
struct Edge {
    site: String,
}

/// `graph[a][b]` exists iff some thread acquired class `b` while holding
/// class `a`. Keyed by rank name (class names are unique).
type Graph = HashMap<&'static str, HashMap<&'static str, Edge>>;

fn graph() -> &'static StdMutex<Graph> {
    static G: OnceLock<StdMutex<Graph>> = OnceLock::new();
    G.get_or_init(|| StdMutex::new(HashMap::new()))
}

fn capture_site() -> String {
    format!("{}", Backtrace::force_capture())
}

fn held_chain(held: &[Held]) -> String {
    held.iter()
        .map(|h| format!("{} (level {})", h.rank.name, h.rank.level))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Depth-first search for a path `from -> ... -> to` through recorded
/// edges. Returns the node sequence after `from` (so the first edge on the
/// path is `from -> path[0]`), or `None` if `to` is unreachable.
fn find_path(
    g: &Graph,
    from: &str,
    to: &str,
    seen: &mut Vec<&'static str>,
) -> Option<Vec<&'static str>> {
    let next = g.get(from)?;
    for (&succ, _) in next.iter() {
        if succ == to {
            return Some(vec![succ]);
        }
        if seen.contains(&succ) {
            continue;
        }
        seen.push(succ);
        if let Some(mut rest) = find_path(g, succ, to, seen) {
            rest.insert(0, succ);
            return Some(rest);
        }
    }
    None
}

/// Validate and record the acquisition of `rank`. Called *before* the
/// thread blocks on the underlying lock, so violations are reported as
/// panics rather than deadlocks. Pushes the rank onto the thread's held
/// stack; a failed `try_lock` must undo that with [`release`].
pub fn acquire(rank: &'static Rank, kind: GuardKind) {
    HELD.with(|cell| {
        let held = cell.borrow();

        for h in held.iter() {
            if std::ptr::eq(h.rank, rank) {
                drop(held);
                panic!(
                    "lockdep: recursive acquisition of lock class {} (level {})",
                    rank.name, rank.level
                );
            }
        }

        if let Some(top) = held.last().copied() {
            if top.rank.level > rank.level {
                let chain = held_chain(&held);
                drop(held);
                panic!(
                    "lockdep: lock-order inversion: acquiring {} (level {}) while \
                     holding {} (level {}); held chain: {}",
                    rank.name, rank.level, top.rank.name, top.rank.level, chain
                );
            }
        }

        if kind == GuardKind::Exclusive && !rank.io_tolerant && IO_DEPTH.with(Cell::get) > 0 {
            let chain = held_chain(&held);
            drop(held);
            panic!(
                "lockdep: acquiring non-I/O-tolerant lock {} (level {}) inside a \
                 declared I/O region; held chain: {}",
                rank.name, rank.level, chain
            );
        }

        // Record held -> rank edges and look for a cycle back to anything
        // currently held. Backtraces are captured only on first occurrence
        // of an edge, so steady-state cost is two hash probes per pair.
        if !held.is_empty() {
            let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
            for h in held.iter() {
                g.entry(h.rank.name)
                    .or_default()
                    .entry(rank.name)
                    .or_insert_with(|| Edge {
                        site: capture_site(),
                    });
            }
            for h in held.iter() {
                let mut seen = Vec::new();
                if let Some(path) = find_path(&g, rank.name, h.rank.name, &mut seen) {
                    let here = capture_site();
                    let there = g
                        .get(rank.name)
                        .and_then(|m| m.get(path[0]))
                        .map(|e| e.site.clone())
                        .unwrap_or_else(|| "<unknown>".to_string());
                    let (held_name, rank_name) = (h.rank.name, rank.name);
                    let order = std::iter::once(rank_name)
                        .chain(path.iter().copied())
                        .collect::<Vec<_>>()
                        .join(" -> ");
                    drop(g);
                    drop(held);
                    panic!(
                        "lockdep: lock-order cycle: this thread acquires {rank_name} \
                         while holding {held_name}, but an established order already \
                         requires {order}.\n\
                         -- this acquisition at:\n{here}\n\
                         -- conflicting order first established at:\n{there}"
                    );
                }
            }
        }

        drop(held);
        cell.borrow_mut().push(Held { rank, kind });
    });
}

/// Remove the most recent entry for `rank` from the thread's held stack.
/// Guards may be dropped out of LIFO order, so this searches from the top.
pub fn release(rank: &'static Rank) {
    HELD.with(|cell| {
        let mut held = cell.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| std::ptr::eq(h.rank, rank)) {
            held.remove(pos);
        }
    });
}

/// Names of the ranked locks this thread currently holds, in acquisition
/// order. For tests.
pub fn held_rank_names() -> Vec<&'static str> {
    HELD.with(|cell| cell.borrow().iter().map(|h| h.rank.name).collect())
}

/// RAII marker for a declared I/O region. See [`io_region`].
#[must_use = "dropping an IoRegion immediately ends the declared I/O region"]
pub struct IoRegion {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for IoRegion {
    fn drop(&mut self) {
        IO_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Declare that the current thread is about to perform device I/O
/// (page read/write, log write/sync). Panics if the thread holds any
/// exclusive ranked lock whose rank is not `io_tolerant`. Regions nest.
pub fn io_region(what: &'static str) -> IoRegion {
    HELD.with(|cell| {
        let held = cell.borrow();
        for h in held.iter().copied() {
            if h.kind == GuardKind::Exclusive && !h.rank.io_tolerant {
                let chain = held_chain(&held);
                drop(held);
                panic!(
                    "lockdep: I/O region '{what}' entered while holding \
                     non-I/O-tolerant lock {} (level {}); held chain: {}",
                    h.rank.name, h.rank.level, chain
                );
            }
        }
    });
    IO_DEPTH.with(|d| d.set(d.get() + 1));
    IoRegion {
        _not_send: std::marker::PhantomData,
    }
}

/// Render the lock hierarchy as GraphViz DOT: one node per production
/// rank (labelled with its level; io-tolerant storage-band classes drawn
/// as boxes) plus any test-minted classes that appear in recorded edges,
/// and one edge per acquired-while-holding pair observed so far in this
/// process. CI runs the lockdep suite and archives the dump
/// (`target/lockdep-graph.dot`), so hierarchy drift shows up as an
/// artifact diff rather than a surprise cycle panic two PRs later.
pub fn dot_graph() -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    // Rank metadata by name: production ranks from the table, classes
    // seen only in edges (test-minted) fall back to bare nodes.
    let meta: BTreeMap<&str, &'static Rank> =
        crate::rank::ALL.iter().map(|r| (r.name, *r)).collect();
    let mut edges: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    {
        let g = graph().lock().unwrap_or_else(|e| e.into_inner());
        for (&from, tos) in g.iter() {
            let mut names: Vec<&str> = tos.keys().copied().collect();
            names.sort_unstable();
            edges.insert(from, names);
        }
    }
    let mut out = String::from("digraph lockdep {\n    rankdir=TB;\n");
    let emit_node = |out: &mut String, name: &str| match meta.get(name) {
        Some(r) => {
            let shape = if r.io_tolerant { "box" } else { "ellipse" };
            let _ = writeln!(
                out,
                "    \"{name}\" [label=\"{name}\\nlevel {}\", shape={shape}];",
                r.level
            );
        }
        None => {
            let _ = writeln!(out, "    \"{name}\" [style=dashed];");
        }
    };
    let mut named: Vec<&str> = meta.keys().copied().collect();
    for (&from, tos) in edges.iter() {
        if !named.contains(&from) {
            named.push(from);
        }
        for &to in tos {
            if !named.contains(&to) {
                named.push(to);
            }
        }
    }
    for name in named {
        emit_node(&mut out, name);
    }
    for (from, tos) in edges {
        for to in tos {
            let _ = writeln!(out, "    \"{from}\" -> \"{to}\";");
        }
    }
    out.push_str("}\n");
    out
}
