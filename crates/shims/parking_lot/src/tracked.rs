//! Tracked atomics: drop-in wrappers over `std::sync::atomic` types
//! that double as `natix-model` scheduler decision points and
//! happens-before race-detector events when the calling thread is a
//! registered model task. Outside model builds (`cfg(any(test, feature
//! = "model"))` off) every method inlines to the bare std operation.
//!
//! Adopted by the protocol-critical shared counters of the engine: the
//! version store's epoch watermarks, the buffer manager's pin counts
//! and dirty flags, and the WAL's appended/durable LSN watermarks.

use std::sync::atomic::Ordering;

#[cfg(any(test, feature = "model"))]
use crate::model::rt::{self, AtomOp};

/// Emit a scheduler/race-detector event for an atomic access. Expands to
/// nothing outside model builds, so release binaries carry only the bare
/// std operation.
macro_rules! atom_event {
    ($self:expr, $kind:ident, $order:expr) => {
        #[cfg(any(test, feature = "model"))]
        {
            if rt::active_on_this_thread() {
                rt::atomic_event($self as *const _ as usize, AtomOp::$kind, $order);
            }
        }
    };
}

macro_rules! tracked_common {
    ($name:ident, $std:ty, $prim:ty) => {
        impl $name {
            pub const fn new(v: $prim) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            #[inline]
            pub fn load(&self, order: Ordering) -> $prim {
                atom_event!(self, Load, order);
                self.inner.load(order)
            }

            #[inline]
            pub fn store(&self, v: $prim, order: Ordering) {
                atom_event!(self, Store, order);
                self.inner.store(v, order)
            }

            #[inline]
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                atom_event!(self, Rmw, order);
                self.inner.swap(v, order)
            }

            #[inline]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                atom_event!(self, Rmw, success);
                self.inner.compare_exchange(current, new, success, failure)
            }

            #[inline]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            #[inline]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

macro_rules! tracked_numeric {
    ($name:ident, $std:ty, $prim:ty) => {
        /// See the module docs: a model-aware drop-in for the std atomic.
        #[derive(Default)]
        pub struct $name {
            inner: $std,
        }

        tracked_common!($name, $std, $prim);

        impl $name {
            #[inline]
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                atom_event!(self, Rmw, order);
                self.inner.fetch_add(v, order)
            }

            #[inline]
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                atom_event!(self, Rmw, order);
                self.inner.fetch_sub(v, order)
            }

            #[inline]
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                atom_event!(self, Rmw, order);
                self.inner.fetch_max(v, order)
            }

            #[inline]
            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                atom_event!(self, Rmw, order);
                self.inner.fetch_min(v, order)
            }
        }
    };
}

tracked_numeric!(TrackedAtomicU64, std::sync::atomic::AtomicU64, u64);
tracked_numeric!(TrackedAtomicU32, std::sync::atomic::AtomicU32, u32);
tracked_numeric!(TrackedAtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// See the module docs: a model-aware drop-in for `AtomicBool`.
#[derive(Default)]
pub struct TrackedAtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

tracked_common!(TrackedAtomicBool, std::sync::atomic::AtomicBool, bool);

impl TrackedAtomicBool {
    #[inline]
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        atom_event!(self, Rmw, order);
        self.inner.fetch_or(v, order)
    }

    #[inline]
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        atom_event!(self, Rmw, order);
        self.inner.fetch_and(v, order)
    }
}
