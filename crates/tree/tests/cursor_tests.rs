//! Tests for DOM-style cursor navigation across record boundaries.

use std::sync::Arc;

use natix_storage::{BufferManager, EvictionPolicy, IoStats, MemStorage, StorageManager};
use natix_tree::{Cursor, InsertPos, NewNode, SplitMatrix, TreeConfig, TreeStore};
use natix_xml::{LiteralValue, LABEL_TEXT};

fn mk_store(page_size: usize, matrix: SplitMatrix) -> TreeStore {
    let backend = Arc::new(MemStorage::new(page_size).unwrap());
    let bm = Arc::new(BufferManager::new(
        backend,
        256,
        EvictionPolicy::Lru,
        IoStats::new_shared(),
    ));
    let sm = Arc::new(StorageManager::create(bm).unwrap());
    let seg = sm.create_segment("docs").unwrap();
    TreeStore::new(sm, seg, TreeConfig::paper(), matrix).unwrap()
}

/// Builds a wide tree that certainly spans several records:
/// root(1) → 40 × item(2) → text. Returns the root rid.
fn build_wide(store: &TreeStore) -> natix_storage::Rid {
    let root = store.create_tree(1).unwrap();
    let mut root_ptr = natix_tree::NodePtr::new(root, 0);
    let mut root_rid = root;
    for i in 0..40 {
        let res = store
            .insert(root_ptr, InsertPos::Last, 2, NewNode::Element)
            .unwrap();
        if let Some((old, new)) = res.root_moved {
            if old == root_rid {
                root_rid = new;
                root_ptr = natix_tree::NodePtr::new(new, 0);
            }
        }
        // Track the root across relocations.
        for r in &res.relocations {
            if r.old == root_ptr {
                root_ptr = r.new;
            }
        }
        let item = res.new_node.unwrap();
        let res2 = store
            .insert(
                item,
                InsertPos::Last,
                LABEL_TEXT,
                NewNode::Literal(LiteralValue::String(format!(
                    "text {i} {}",
                    "pad".repeat(6)
                ))),
            )
            .unwrap();
        if let Some((old, new)) = res2.root_moved {
            if old == root_rid {
                root_rid = new;
                root_ptr = natix_tree::NodePtr::new(new, 0);
            }
        }
        for r in &res2.relocations {
            if r.old == root_ptr {
                root_ptr = r.new;
            }
        }
    }
    root_rid
}

#[test]
fn first_child_next_sibling_walk_crosses_records() {
    let store = mk_store(512, SplitMatrix::all_other());
    let root = build_wide(&store);
    let stats = natix_tree::check_tree(&store, root).unwrap();
    assert!(stats.records > 3, "tree must span records: {stats:?}");

    let mut cursor = Cursor::at_root(&store, root).unwrap();
    assert_eq!(cursor.label(), 1);
    assert!(cursor.first_child().unwrap());
    let mut items = 0;
    loop {
        assert_eq!(cursor.label(), 2, "every logical child is an item");
        items += 1;
        // Descend to the text and back up.
        assert!(cursor.first_child().unwrap());
        assert_eq!(cursor.label(), LABEL_TEXT);
        let v = cursor.value().unwrap().to_text();
        assert!(v.starts_with(&format!("text {} ", items - 1)), "{v}");
        assert!(cursor.parent().unwrap());
        if !cursor.next_sibling().unwrap() {
            break;
        }
    }
    assert_eq!(items, 40, "sibling walk must cross every record seam");
    // Walking up from the last item reaches the root.
    assert!(cursor.parent().unwrap());
    assert_eq!(cursor.label(), 1);
    assert!(!cursor.parent().unwrap(), "root has no parent");
}

#[test]
fn cursor_in_one_to_one_mode() {
    let store = mk_store(1024, SplitMatrix::all_standalone());
    let root = build_wide(&store);
    let mut cursor = Cursor::at_root(&store, root).unwrap();
    assert!(cursor.first_child().unwrap());
    let mut count = 1;
    while cursor.next_sibling().unwrap() {
        count += 1;
    }
    assert_eq!(count, 40);
}

#[test]
fn cursor_on_leaf_positions() {
    let store = mk_store(1024, SplitMatrix::all_other());
    let root = store.create_tree(1).unwrap();
    let res = store
        .insert(
            natix_tree::NodePtr::new(root, 0),
            InsertPos::Last,
            LABEL_TEXT,
            NewNode::Literal(LiteralValue::String("only".into())),
        )
        .unwrap();
    let leaf = res.new_node.unwrap();
    let mut cursor = Cursor::at(&store, leaf).unwrap();
    assert!(!cursor.is_element());
    assert_eq!(cursor.value().unwrap().to_text(), "only");
    assert!(!cursor.first_child().unwrap(), "leaves have no children");
    assert!(!cursor.next_sibling().unwrap(), "no siblings");
    assert!(cursor.parent().unwrap());
    assert_eq!(cursor.label(), 1);
    let labels = cursor.child_labels().unwrap();
    assert_eq!(labels, vec![LABEL_TEXT]);
}

#[test]
fn cursor_matches_traverse_order() {
    // A full cursor-driven pre-order walk yields the same facade sequence
    // as the streaming traversal.
    let store = mk_store(512, SplitMatrix::all_other());
    let root = build_wide(&store);
    let mut via_traverse = Vec::new();
    natix_tree::traverse(&store, natix_tree::NodePtr::new(root, 0), &mut |ev| {
        match ev {
            natix_tree::VisitEvent::Enter { label, .. } => via_traverse.push(label),
            natix_tree::VisitEvent::Literal { label, .. } => via_traverse.push(label),
            natix_tree::VisitEvent::Leave { .. } => {}
        }
        true
    })
    .unwrap();

    // Cursor DFS.
    let mut via_cursor = Vec::new();
    let mut cursor = Cursor::at_root(&store, root).unwrap();
    let mut depth = 0usize;
    'walk: loop {
        via_cursor.push(cursor.label());
        if cursor.first_child().unwrap() {
            depth += 1;
            continue;
        }
        loop {
            if cursor.next_sibling().unwrap() {
                break;
            }
            if depth == 0 {
                break 'walk;
            }
            assert!(cursor.parent().unwrap());
            depth -= 1;
        }
    }
    assert_eq!(via_cursor, via_traverse);
}
