//! Deterministic mini-fuzzer for the merge (absorb) path: random insert /
//! delete / update sequences with verification after every operation, so a
//! failure pinpoints the exact op.

use std::collections::HashMap;
use std::sync::Arc;

use natix_storage::{BufferManager, EvictionPolicy, IoStats, MemStorage, Rid, StorageManager};
use natix_tree::{
    check_tree, reconstruct_document, InsertPos, NewNode, NodePtr, OpResult, SplitMatrix,
    TreeConfig, TreeStore,
};
use natix_xml::{Document, LiteralValue, NodeData, NodeIdx, LABEL_TEXT};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // SplitMix64.
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

struct H {
    store: TreeStore,
    doc: Document,
    map: HashMap<NodeIdx, NodePtr>,
    rev: HashMap<NodePtr, NodeIdx>,
    root_rid: Rid,
    live: Vec<NodeIdx>,
}

impl H {
    fn apply(&mut self, res: &OpResult) {
        let moved: Vec<(Option<NodeIdx>, NodePtr)> = res
            .relocations
            .iter()
            .map(|r| (self.rev.remove(&r.old), r.new))
            .collect();
        for (idx, new) in moved {
            if let Some(i) = idx {
                self.map.insert(i, new);
                self.rev.insert(new, i);
            }
        }
        if let Some((old, new)) = res.root_moved {
            if self.root_rid == old {
                self.root_rid = new;
            }
        }
    }

    fn verify(&self, seed: u64, op: usize, desc: &str) {
        let rebuilt = reconstruct_document(&self.store, self.root_rid)
            .unwrap_or_else(|e| panic!("seed {seed} op {op} ({desc}): reconstruct: {e}"));
        assert!(
            rebuilt == self.doc,
            "seed {seed} op {op} ({desc}): diverged"
        );
        check_tree(&self.store, self.root_rid)
            .unwrap_or_else(|e| panic!("seed {seed} op {op} ({desc}): {e}"));
        // The logical↔physical map must agree with the store, including
        // node identity (parent relationship), not just labels.
        for (&idx, &ptr) in &self.map {
            let info = self
                .store
                .node_info(ptr)
                .unwrap_or_else(|e| panic!("seed {seed} op {op} ({desc}): map stale: {e}"));
            assert_eq!(
                info.label,
                self.doc.data(idx).label(),
                "seed {seed} op {op} ({desc}): label mismatch at {ptr}"
            );
            let sparent = self
                .store
                .logical_parent(ptr)
                .unwrap_or_else(|e| panic!("seed {seed} op {op} ({desc}): parent of {ptr}: {e}"));
            match (sparent, self.doc.parent(idx)) {
                (None, None) => {}
                (Some(sp), Some(dp)) => {
                    let mapped = self.rev.get(&sp).copied();
                    assert_eq!(
                        mapped,
                        Some(dp),
                        "seed {seed} op {op} ({desc}): node {idx}@{ptr} has stored parent {sp} \
                         which maps to {mapped:?}, expected {dp}"
                    );
                }
                (sp, dp) => panic!(
                    "seed {seed} op {op} ({desc}): parent mismatch at {ptr}: stored {sp:?} vs \
                     shadow {dp:?}"
                ),
            }
        }
    }
}

fn run(seed: u64, nops: usize, verify_each: bool) {
    let mut rng = Rng(seed);
    let backend = Arc::new(MemStorage::new(512).unwrap());
    let bm = Arc::new(BufferManager::new(
        backend,
        256,
        EvictionPolicy::Lru,
        IoStats::new_shared(),
    ));
    let sm = Arc::new(StorageManager::create(bm).unwrap());
    let seg = sm.create_segment("docs").unwrap();
    let config = TreeConfig {
        merge_enabled: true,
        ..TreeConfig::paper()
    };
    let store = TreeStore::new(sm, seg, config, SplitMatrix::all_other()).unwrap();
    let root_rid = store.create_tree(1).unwrap();
    let mut h = H {
        store,
        doc: Document::new(NodeData::Element(1)),
        map: HashMap::new(),
        rev: HashMap::new(),
        root_rid,
        live: vec![0],
    };
    h.map.insert(0, NodePtr::new(root_rid, 0));
    h.rev.insert(NodePtr::new(root_rid, 0), 0);

    for op in 0..nops {
        if std::env::var("MERGE_FUZZ_DUMP").is_ok() && seed == 2 && op == 125 {
            eprintln!("== state before op {op}, root={}", h.root_rid);
            for (page, _) in h.store.storage().segment_pages(h.store.segment()) {
                let pin = h.store.storage().pin(page).unwrap();
                let buf = pin.read();
                let sp = natix_storage::slotted::SlottedPageRef::open(&buf).unwrap();
                for s in sp.live_slots().filter(|&s| s != 0) {
                    let rid = Rid::new(page, s);
                    match h.store.load(rid) {
                        Ok(t) => eprintln!(
                            "  {rid}: parent={} label={} scaffold={} nodes={} proxies={:?}",
                            t.parent_rid,
                            t.node(t.root()).label,
                            t.node(t.root()).is_scaffolding_aggregate(),
                            t.live_count(),
                            t.proxies_under(t.root())
                        ),
                        Err(e) => eprintln!("  {rid}: PARSE ERROR {e}"),
                    }
                }
            }
        }
        let kind = rng.below(10);
        let desc;
        if kind < 6 {
            // Insert.
            let elements: Vec<NodeIdx> = h
                .live
                .iter()
                .copied()
                .filter(|&n| matches!(h.doc.data(n), NodeData::Element(_)))
                .collect();
            let parent = elements[rng.below(elements.len())];
            let nkids = h.doc.children(parent).len();
            let (pos, spos) = match rng.below(3) {
                0 => (InsertPos::First, 0),
                1 => (InsertPos::Last, nkids),
                _ => {
                    let k = rng.below(nkids + 1);
                    (InsertPos::At(k), k)
                }
            };
            let (label, node, d) = if rng.below(2) == 0 {
                (2 + rng.below(5) as u16, NewNode::Element, "ins-elem")
            } else {
                let len = rng.below(60);
                (
                    LABEL_TEXT,
                    NewNode::Literal(LiteralValue::String("x".repeat(len))),
                    "ins-text",
                )
            };
            desc = d;
            let data = match &node {
                NewNode::Element => NodeData::Element(label),
                NewNode::Literal(v) => NodeData::Literal {
                    label,
                    value: v.clone(),
                },
            };
            let res = h
                .store
                .insert(h.map[&parent], pos, label, node)
                .unwrap_or_else(|e| panic!("seed {seed} op {op} insert: {e}"));
            let idx = h.doc.insert_child(parent, spos, data);
            h.apply(&res);
            let ptr = res.new_node.unwrap();
            h.map.insert(idx, ptr);
            h.rev.insert(ptr, idx);
            h.live.push(idx);
        } else if kind < 9 {
            // Delete.
            desc = "delete";
            let candidates: Vec<NodeIdx> = h.live.iter().copied().filter(|&n| n != 0).collect();
            if candidates.is_empty() {
                continue;
            }
            let victim = candidates[rng.below(candidates.len())];
            let res = h.store.delete_subtree(h.map[&victim]).unwrap_or_else(|e| {
                let ptr = h.map[&victim];
                let mut chain = Vec::new();
                let mut rid = ptr.rid;
                while !rid.is_invalid() {
                    match h.store.load(rid) {
                        Ok(t) => {
                            chain.push(format!("{rid} (parent={})", t.parent_rid));
                            rid = t.parent_rid;
                        }
                        Err(e2) => {
                            chain.push(format!("{rid}: LOAD FAILED {e2}"));
                            break;
                        }
                    }
                }
                panic!("seed {seed} op {op} delete of {ptr}: {e}\nchain: {chain:?}")
            });
            let gone: Vec<NodeIdx> = h.doc.pre_order_from(victim).collect();
            for n in &gone {
                if let Some(p) = h.map.remove(n) {
                    h.rev.remove(&p);
                }
            }
            h.apply(&res);
            h.live.retain(|n| !gone.contains(n));
            h.doc.detach(victim);
        } else {
            // Update a literal.
            desc = "update";
            let lits: Vec<NodeIdx> = h
                .live
                .iter()
                .copied()
                .filter(|&n| matches!(h.doc.data(n), NodeData::Literal { .. }))
                .collect();
            if lits.is_empty() {
                continue;
            }
            let target = lits[rng.below(lits.len())];
            let value = LiteralValue::String("u".repeat(rng.below(80)));
            let res = h
                .store
                .update_literal(h.map[&target], value.clone())
                .unwrap_or_else(|e| panic!("seed {seed} op {op} update: {e}"));
            h.apply(&res);
            if let NodeData::Literal { value: v, .. } = h.doc.data_mut(target) {
                *v = value;
            }
        }
        if verify_each {
            h.verify(seed, op, desc);
        }
    }
    h.verify(seed, nops, "final");
}

#[test]
fn merge_fuzz_many_seeds() {
    for seed in 0..60 {
        run(seed, 150, true);
    }
}
