//! Property-based tests of the tree storage manager.
//!
//! Strategy: generate an arbitrary sequence of structural operations
//! (inserts at random logical positions, subtree deletions, literal
//! updates) under a random split matrix, page size and split
//! configuration; replay the sequence against both the store and an
//! in-memory shadow document; then demand (a) reconstruction equality and
//! (b) all physical invariants of `check_tree`.
//!
//! The build environment has no network access, so instead of `proptest`
//! the cases are driven by a small deterministic SplitMix64 generator over
//! many seeds — same shadow-model properties, reproducible by seed.

use std::collections::HashMap;
use std::sync::Arc;

use natix_storage::{BufferManager, EvictionPolicy, IoStats, MemStorage, Rid, StorageManager};
use natix_tree::{
    check_tree, reconstruct_document, InsertPos, NewNode, NodePtr, OpResult, SplitBehaviour,
    SplitMatrix, TreeConfig, TreeStore,
};
use natix_xml::{Document, LiteralValue, NodeData, NodeIdx, LABEL_TEXT};

use natix_corpus::SplitMix64 as Gen;

fn f64_range(g: &mut Gen, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * (g.next_u64() as f64 / u64::MAX as f64)
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert an element under the `target`-th live element, at position
    /// `pos_seed`.
    InsertElement {
        target: usize,
        pos_seed: usize,
        label: u16,
    },
    /// Insert a text literal of the given length.
    InsertText {
        target: usize,
        pos_seed: usize,
        len: usize,
    },
    /// Delete the `target`-th live non-root node's subtree.
    Delete { target: usize },
    /// Replace the `target`-th live literal's value.
    Update { target: usize, len: usize },
}

fn random_op(g: &mut Gen) -> Op {
    match g.below(10) {
        0..=3 => Op::InsertElement {
            target: g.below(usize::MAX / 2),
            pos_seed: g.below(usize::MAX / 2),
            label: g.range(2, 8) as u16,
        },
        4..=7 => Op::InsertText {
            target: g.below(usize::MAX / 2),
            pos_seed: g.below(usize::MAX / 2),
            len: g.below(60),
        },
        8 => Op::Delete {
            target: g.below(usize::MAX / 2),
        },
        _ => Op::Update {
            target: g.below(usize::MAX / 2),
            len: g.below(80),
        },
    }
}

fn random_ops(g: &mut Gen, lo: usize, hi: usize) -> Vec<Op> {
    let n = g.range(lo, hi);
    (0..n).map(|_| random_op(g)).collect()
}

fn random_matrix(g: &mut Gen) -> SplitMatrix {
    // A default behaviour plus a handful of overrides.
    let default = if g.below(5) == 0 {
        SplitBehaviour::Standalone
    } else {
        SplitBehaviour::Other
    };
    let mut m = SplitMatrix::with_default(default);
    for _ in 0..g.below(6) {
        let b = match g.below(3) {
            0 => SplitBehaviour::Standalone,
            1 => SplitBehaviour::KeepWithParent,
            _ => SplitBehaviour::Other,
        };
        m.set(g.range(2, 8) as u16, g.range(2, 8) as u16, b);
    }
    m
}

struct Harness {
    store: TreeStore,
    doc: Document,
    map: HashMap<NodeIdx, NodePtr>,
    rev: HashMap<NodePtr, NodeIdx>,
    root_rid: Rid,
    live: Vec<NodeIdx>,
}

impl Harness {
    fn new(page_size: usize, matrix: SplitMatrix, config: TreeConfig) -> Harness {
        let backend = Arc::new(MemStorage::new(page_size).unwrap());
        let bm = Arc::new(BufferManager::new(
            backend,
            256,
            EvictionPolicy::Lru,
            IoStats::new_shared(),
        ));
        let sm = Arc::new(StorageManager::create(bm).unwrap());
        let seg = sm.create_segment("docs").unwrap();
        let store = TreeStore::new(sm, seg, config, matrix).unwrap();
        let root_rid = store.create_tree(1).unwrap();
        let mut h = Harness {
            store,
            doc: Document::new(NodeData::Element(1)),
            map: HashMap::new(),
            rev: HashMap::new(),
            root_rid,
            live: vec![0],
        };
        h.bind(0, NodePtr::new(root_rid, 0));
        h
    }

    fn bind(&mut self, idx: NodeIdx, ptr: NodePtr) {
        self.map.insert(idx, ptr);
        self.rev.insert(ptr, idx);
    }

    fn apply(&mut self, res: &OpResult) {
        let moved: Vec<(Option<NodeIdx>, NodePtr)> = res
            .relocations
            .iter()
            .map(|r| (self.rev.remove(&r.old), r.new))
            .collect();
        for (idx, new) in moved {
            if let Some(i) = idx {
                self.map.insert(i, new);
                self.rev.insert(new, i);
            }
        }
        if let Some((old, new)) = res.root_moved {
            if self.root_rid == old {
                self.root_rid = new;
            }
        }
    }

    fn pick_element(&self, seed: usize) -> Option<NodeIdx> {
        let elems: Vec<NodeIdx> = self
            .live
            .iter()
            .copied()
            .filter(|&n| matches!(self.doc.data(n), NodeData::Element(_)))
            .collect();
        (!elems.is_empty()).then(|| elems[seed % elems.len()])
    }

    fn insert(&mut self, parent: NodeIdx, pos_seed: usize, label: u16, node: NewNode) {
        let nkids = self.doc.children(parent).len();
        let (pos, shadow_pos) = match pos_seed % 3 {
            0 => (InsertPos::First, 0),
            1 => (InsertPos::Last, nkids),
            _ => {
                let k = if nkids == 0 {
                    0
                } else {
                    pos_seed % (nkids + 1)
                };
                (InsertPos::At(k), k.min(nkids))
            }
        };
        let data = match &node {
            NewNode::Element => NodeData::Element(label),
            NewNode::Literal(v) => NodeData::Literal {
                label,
                value: v.clone(),
            },
        };
        let res = self
            .store
            .insert(self.map[&parent], pos, label, node)
            .unwrap();
        self.apply(&res);
        let idx = self.doc.insert_child(parent, shadow_pos, data);
        self.bind(idx, res.new_node.expect("new node reported"));
        self.live.push(idx);
    }

    fn delete(&mut self, seed: usize) {
        let candidates: Vec<NodeIdx> = self.live.iter().copied().filter(|&n| n != 0).collect();
        if candidates.is_empty() {
            return;
        }
        let victim = candidates[seed % candidates.len()];
        let res = self.store.delete_subtree(self.map[&victim]).unwrap();
        // Purge the victims (by their pre-op addresses) BEFORE applying
        // relocations: a survivor may relocate into a victim's old slot.
        let gone: Vec<NodeIdx> = self.doc.pre_order_from(victim).collect();
        for n in &gone {
            if let Some(p) = self.map.remove(n) {
                self.rev.remove(&p);
            }
        }
        self.apply(&res);
        self.live.retain(|n| !gone.contains(n));
        self.doc.detach(victim);
    }

    fn update(&mut self, seed: usize, len: usize) {
        let lits: Vec<NodeIdx> = self
            .live
            .iter()
            .copied()
            .filter(|&n| matches!(self.doc.data(n), NodeData::Literal { .. }))
            .collect();
        if lits.is_empty() {
            return;
        }
        let target = lits[seed % lits.len()];
        let value = LiteralValue::String("u".repeat(len));
        let res = self
            .store
            .update_literal(self.map[&target], value.clone())
            .unwrap();
        self.apply(&res);
        if let NodeData::Literal { value: v, .. } = self.doc.data_mut(target) {
            *v = value;
        }
    }

    fn verify(&self) {
        let rebuilt = reconstruct_document(&self.store, self.root_rid).unwrap();
        assert!(rebuilt == self.doc, "reconstruction diverged from shadow");
        check_tree(&self.store, self.root_rid).unwrap();
    }
}

fn run_ops(page_size: usize, matrix: SplitMatrix, config: TreeConfig, ops: &[Op]) {
    let mut h = Harness::new(page_size, matrix, config);
    for op in ops {
        match op {
            Op::InsertElement {
                target,
                pos_seed,
                label,
            } => {
                if let Some(parent) = h.pick_element(*target) {
                    h.insert(parent, *pos_seed, *label, NewNode::Element);
                }
            }
            Op::InsertText {
                target,
                pos_seed,
                len,
            } => {
                if let Some(parent) = h.pick_element(*target) {
                    let text = LiteralValue::String("t".repeat(*len));
                    h.insert(parent, *pos_seed, LABEL_TEXT, NewNode::Literal(text));
                }
            }
            Op::Delete { target } => h.delete(*target),
            Op::Update { target, len } => h.update(*target, *len),
        }
    }
    h.verify();
}

#[test]
fn random_ops_preserve_document() {
    for case in 0..48u64 {
        let mut g = Gen::new(case);
        let ops = random_ops(&mut g, 1, 120);
        let page_size = [512usize, 1024, 2048][g.below(3)];
        let matrix = random_matrix(&mut g);
        let config = TreeConfig {
            split_target: f64_range(&mut g, 0.2, 0.8),
            split_tolerance: f64_range(&mut g, 0.02, 0.3),
            ..TreeConfig::paper()
        };
        run_ops(page_size, matrix, config, &ops);
    }
}

#[test]
fn random_ops_with_merging() {
    for case in 0..48u64 {
        let mut g = Gen::new(0x4E46 ^ case);
        let ops = random_ops(&mut g, 1, 100);
        let page_size = [512usize, 1024][g.below(2)];
        let config = TreeConfig {
            merge_enabled: true,
            ..TreeConfig::paper()
        };
        run_ops(page_size, SplitMatrix::all_other(), config, &ops);
    }
}

#[test]
fn one_to_one_matrix_random_ops() {
    for case in 0..48u64 {
        let mut g = Gen::new(0x0101 ^ case);
        let ops = random_ops(&mut g, 1, 80);
        run_ops(
            1024,
            SplitMatrix::all_standalone(),
            TreeConfig::paper(),
            &ops,
        );
    }
}
