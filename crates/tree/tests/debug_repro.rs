//! Regression scenario distilled from the property tests: a pure-insert
//! sequence under the all-standalone (1:1) matrix on 1 KB pages.

use std::collections::HashMap;
use std::sync::Arc;

use natix_storage::{BufferManager, EvictionPolicy, IoStats, MemStorage, Rid, StorageManager};
use natix_tree::{
    check_tree, reconstruct_document, InsertPos, NewNode, NodePtr, OpResult, SplitMatrix,
    TreeConfig, TreeStore,
};
use natix_xml::{Document, LiteralValue, NodeData, NodeIdx, LABEL_TEXT};

struct H {
    store: TreeStore,
    doc: Document,
    map: HashMap<NodeIdx, NodePtr>,
    rev: HashMap<NodePtr, NodeIdx>,
    root_rid: Rid,
    live: Vec<NodeIdx>,
}

impl H {
    fn apply(&mut self, res: &OpResult) {
        let moved: Vec<(Option<NodeIdx>, NodePtr)> = res
            .relocations
            .iter()
            .map(|r| (self.rev.remove(&r.old), r.new))
            .collect();
        for (idx, new) in moved {
            if let Some(i) = idx {
                self.map.insert(i, new);
                self.rev.insert(new, i);
            }
        }
        if let Some((old, new)) = res.root_moved {
            if self.root_rid == old {
                self.root_rid = new;
            }
        }
    }
}

#[test]
fn standalone_insert_sequence() {
    let backend = Arc::new(MemStorage::new(1024).unwrap());
    let bm = Arc::new(BufferManager::new(
        backend,
        256,
        EvictionPolicy::Lru,
        IoStats::new_shared(),
    ));
    let sm = Arc::new(StorageManager::create(bm).unwrap());
    let seg = sm.create_segment("docs").unwrap();
    let store =
        TreeStore::new(sm, seg, TreeConfig::paper(), SplitMatrix::all_standalone()).unwrap();
    let root_rid = store.create_tree(1).unwrap();
    let mut h = H {
        store,
        doc: Document::new(NodeData::Element(1)),
        map: HashMap::new(),
        rev: HashMap::new(),
        root_rid,
        live: vec![0],
    };
    h.map.insert(0, NodePtr::new(root_rid, 0));
    h.rev.insert(NodePtr::new(root_rid, 0), 0);

    // (target, pos_seed, label, text_len: None=element)
    let ops: Vec<(usize, usize, u16, Option<usize>)> = vec![
        (0, 0, 4, None),
        (3463352798048616484, 2176683219257896540, 5, None),
        (
            16547482297019661615,
            3375051007501521340,
            LABEL_TEXT,
            Some(31),
        ),
        (9680681321423435532, 12833229158990715196, 5, None),
        (16688179498362267752, 6935415870376316847, 2, None),
        (15239617208003563711, 7102741452124097322, 5, None),
        (
            6289115770950463494,
            8308735912830452621,
            LABEL_TEXT,
            Some(34),
        ),
        (14463592814163842391, 17190842004108994094, 6, None),
        (7961002646956014678, 10655555731747165897, 5, None),
        (
            2318479113638696998,
            13222850106980302339,
            LABEL_TEXT,
            Some(29),
        ),
        (
            6887953147433770219,
            1500255433811445820,
            LABEL_TEXT,
            Some(18),
        ),
        (1130890726818129679, 5216393186615953481, 3, None),
        (
            16851267365394323428,
            8783501312474862137,
            LABEL_TEXT,
            Some(8),
        ),
        (8536952172825370729, 3704771442065470959, 5, None),
    ];

    for (i, (target, pos_seed, label, text)) in ops.into_iter().enumerate() {
        let elems: Vec<NodeIdx> = h
            .live
            .iter()
            .copied()
            .filter(|&n| matches!(h.doc.data(n), NodeData::Element(_)))
            .collect();
        let parent = elems[target % elems.len()];
        let nkids = h.doc.children(parent).len();
        let (pos, shadow_pos) = match pos_seed % 3 {
            0 => (InsertPos::First, 0),
            1 => (InsertPos::Last, nkids),
            _ => {
                let k = if nkids == 0 {
                    0
                } else {
                    pos_seed % (nkids + 1)
                };
                (InsertPos::At(k), k.min(nkids))
            }
        };
        let node = match text {
            None => NewNode::Element,
            Some(len) => NewNode::Literal(LiteralValue::String("t".repeat(len))),
        };
        let data = match &node {
            NewNode::Element => NodeData::Element(label),
            NewNode::Literal(v) => NodeData::Literal {
                label,
                value: v.clone(),
            },
        };
        let res = h.store.insert(h.map[&parent], pos, label, node).unwrap();
        h.apply(&res);
        let idx = h.doc.insert_child(parent, shadow_pos, data);
        let ptr = res.new_node.expect("new node");
        h.map.insert(idx, ptr);
        h.rev.insert(ptr, idx);
        h.live.push(idx);

        // Dump physical state for debugging.
        eprintln!("== after op {i}: root={} new={ptr}", h.root_rid);
        for (page, free) in h.store.storage().segment_pages(h.store.segment()) {
            let pin = h.store.storage().pin(page).unwrap();
            let buf = pin.read();
            let sp = natix_storage::slotted::SlottedPageRef::open(&buf).unwrap();
            let slots: Vec<String> = sp
                .live_slots()
                .map(|s| format!("{s}:{}B", sp.get(s).unwrap().len()))
                .collect();
            eprintln!("  page {page} free={free}: {slots:?}");
            sp.check_invariants()
                .unwrap_or_else(|e| panic!("op {i} page {page}: {e}"));
            for s in sp.live_slots().filter(|&s| s != 0) {
                let rid = Rid::new(page, s);
                match h.store.load(rid) {
                    Ok(t) => {
                        let root = t.root();
                        let proxies = t.proxies_under(root);
                        eprintln!(
                            "    {rid}: parent={} label={} nodes={} proxies={:?}",
                            t.parent_rid,
                            t.node(root).label,
                            t.live_count(),
                            proxies
                        );
                    }
                    Err(e) => eprintln!("    {rid}: PARSE ERROR {e}"),
                }
            }
        }
        // Verify after every op to localise a failure.
        let rebuilt = reconstruct_document(&h.store, h.root_rid)
            .unwrap_or_else(|e| panic!("op {i}: reconstruct failed: {e}"));
        assert!(rebuilt == h.doc, "op {i}: diverged");
        check_tree(&h.store, h.root_rid).unwrap_or_else(|e| panic!("op {i}: invariant: {e}"));
    }
}
