//! Integration tests for the tree storage manager: the tree growth
//! procedure, splits, the split matrix, deletion, moves and relocations.
//!
//! Every scenario maintains a *shadow* logical document next to the store
//! (exactly what the NATIX document manager does) and checks, after each
//! structural operation batch, that
//!
//! 1. reconstructing the stored tree yields the shadow document, and
//! 2. all physical invariants hold ([`natix_tree::check_tree`]).

use std::collections::HashMap;
use std::sync::Arc;

use natix_storage::{
    BufferManager, EvictionPolicy, IoStats, MemStorage, PageKind, Rid, StorageManager,
};
use natix_tree::{
    check_tree, reconstruct_document, InsertPos, NewNode, NodePtr, OpResult, SplitBehaviour,
    SplitMatrix, TreeConfig, TreeStore,
};
use natix_xml::{Document, LiteralValue, NodeData, NodeIdx, LABEL_TEXT};

fn mk_store(page_size: usize, matrix: SplitMatrix, config: TreeConfig) -> TreeStore {
    let backend = Arc::new(MemStorage::new(page_size).unwrap());
    let bm = Arc::new(BufferManager::new(
        backend,
        256,
        EvictionPolicy::Lru,
        IoStats::new_shared(),
    ));
    let sm = Arc::new(StorageManager::create(bm).unwrap());
    let seg = sm.create_segment("docs").unwrap();
    TreeStore::new(sm, seg, config, matrix).unwrap()
}

/// Shadow logical document plus the logical↔physical node map, kept
/// current from relocation events.
struct Shadow {
    doc: Document,
    map: HashMap<NodeIdx, NodePtr>,
    rev: HashMap<NodePtr, NodeIdx>,
    root_rid: Rid,
}

impl Shadow {
    fn new(store: &TreeStore, root_label: u16) -> Shadow {
        let root_rid = store.create_tree(root_label).unwrap();
        let doc = Document::new(NodeData::Element(root_label));
        let mut s = Shadow {
            doc,
            map: HashMap::new(),
            rev: HashMap::new(),
            root_rid,
        };
        s.bind(0, NodePtr::new(root_rid, 0));
        s
    }

    fn bind(&mut self, idx: NodeIdx, ptr: NodePtr) {
        self.map.insert(idx, ptr);
        self.rev.insert(ptr, idx);
    }

    fn ptr(&self, idx: NodeIdx) -> NodePtr {
        self.map[&idx]
    }

    fn apply(&mut self, res: &OpResult) {
        // Two-phase: remove all old addresses, then install the new ones
        // (relocations within one record may otherwise collide).
        let moved: Vec<(Option<NodeIdx>, NodePtr)> = res
            .relocations
            .iter()
            .map(|r| (self.rev.remove(&r.old), r.new))
            .collect();
        for (idx, new) in moved {
            if let Some(i) = idx {
                self.map.insert(i, new);
                self.rev.insert(new, i);
            }
        }
        if let Some((old, new)) = res.root_moved {
            if self.root_rid == old {
                self.root_rid = new;
            }
        }
    }

    fn verify(&self, store: &TreeStore) {
        let rebuilt = reconstruct_document(store, self.root_rid).unwrap();
        assert!(
            rebuilt == self.doc,
            "reconstructed tree diverged from the shadow document\n\
             shadow nodes: {}, rebuilt nodes: {}",
            self.doc.reachable_count(),
            rebuilt.reachable_count()
        );
        check_tree(store, self.root_rid).unwrap();
    }

    fn insert(
        &mut self,
        store: &TreeStore,
        parent_idx: NodeIdx,
        pos: InsertPos,
        label: u16,
        node: NewNode,
    ) -> NodeIdx {
        let data = match &node {
            NewNode::Element => NodeData::Element(label),
            NewNode::Literal(v) => NodeData::Literal {
                label,
                value: v.clone(),
            },
        };
        let res = store
            .insert(self.ptr(parent_idx), pos, label, node)
            .unwrap();
        self.apply(&res);
        let new_ptr = res.new_node.expect("insert reports the new node");
        let shadow_pos = match pos {
            InsertPos::First => 0,
            InsertPos::Last => self.doc.children(parent_idx).len(),
            InsertPos::At(k) => k.min(self.doc.children(parent_idx).len()),
        };
        let idx = self.doc.insert_child(parent_idx, shadow_pos, data);
        self.bind(idx, new_ptr);
        idx
    }

    fn insert_after(
        &mut self,
        store: &TreeStore,
        sibling_idx: NodeIdx,
        label: u16,
        node: NewNode,
    ) -> NodeIdx {
        let data = match &node {
            NewNode::Element => NodeData::Element(label),
            NewNode::Literal(v) => NodeData::Literal {
                label,
                value: v.clone(),
            },
        };
        let res = store
            .insert_after(self.ptr(sibling_idx), label, node)
            .unwrap();
        self.apply(&res);
        let new_ptr = res.new_node.expect("insert reports the new node");
        let parent = self.doc.parent(sibling_idx).expect("sibling has a parent");
        let pos = self
            .doc
            .children(parent)
            .iter()
            .position(|&c| c == sibling_idx)
            .unwrap()
            + 1;
        let idx = self.doc.insert_child(parent, pos, data);
        self.bind(idx, new_ptr);
        idx
    }
}

fn text(n: usize, seed: usize) -> NewNode {
    NewNode::Literal(LiteralValue::String(
        (0..n)
            .map(|i| (b'a' + ((seed + i) % 26) as u8) as char)
            .collect(),
    ))
}

#[test]
fn single_record_document() {
    let store = mk_store(2048, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 10);
    let speaker = sh.insert(&store, 0, InsertPos::Last, 11, NewNode::Element);
    sh.insert(&store, speaker, InsertPos::Last, LABEL_TEXT, text(7, 0));
    for i in 0..2 {
        let line = sh.insert(&store, 0, InsertPos::Last, 12, NewNode::Element);
        sh.insert(&store, line, InsertPos::Last, LABEL_TEXT, text(20, i));
    }
    sh.verify(&store);
    let stats = check_tree(&store, sh.root_rid).unwrap();
    assert_eq!(stats.records, 1, "small tree fits one record");
    assert_eq!(stats.facade_nodes, 7);
    assert_eq!(stats.proxies, 0);
}

#[test]
fn append_growth_splits_records() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 10);
    // Append elements with text until several splits have happened.
    for i in 0..120 {
        let e = sh.insert(&store, 0, InsertPos::Last, 11, NewNode::Element);
        sh.insert(&store, e, InsertPos::Last, LABEL_TEXT, text(10 + i % 17, i));
        if i % 10 == 9 {
            sh.verify(&store);
        }
    }
    sh.verify(&store);
    let stats = check_tree(&store, sh.root_rid).unwrap();
    assert!(stats.records > 5, "growth must split: {stats:?}");
    assert!(stats.record_depth >= 2);
    assert_eq!(stats.facade_nodes, 241);
}

#[test]
fn deep_preorder_build() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    // A deep chain with text at every level (like a severely nested doc).
    let mut cur = 0;
    for depth in 0..60 {
        sh.insert(&store, cur, InsertPos::Last, LABEL_TEXT, text(12, depth));
        cur = sh.insert(&store, cur, InsertPos::Last, 2, NewNode::Element);
    }
    sh.verify(&store);
    let stats = check_tree(&store, sh.root_rid).unwrap();
    assert!(stats.records > 1);
}

#[test]
fn bfs_incremental_build() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    // Insert first children and then chains of siblings — the shape of the
    // paper's "incremental updates" workload.
    let mut level = vec![0];
    for label in [2u16, 3, 4] {
        let mut next = Vec::new();
        for &p in &level {
            let first = sh.insert(&store, p, InsertPos::First, label, NewNode::Element);
            next.push(first);
            let mut prev = first;
            for _ in 0..3 {
                prev = sh.insert_after(&store, prev, label, NewNode::Element);
                next.push(prev);
            }
        }
        level = next;
        sh.verify(&store);
    }
    // Attach text everywhere, scattered.
    let leaves = level.clone();
    for (i, &leaf) in leaves.iter().enumerate() {
        sh.insert(&store, leaf, InsertPos::Last, LABEL_TEXT, text(15, i));
        if i % 16 == 15 {
            sh.verify(&store);
        }
    }
    sh.verify(&store);
}

#[test]
fn one_to_one_matrix_gives_record_per_node() {
    let store = mk_store(2048, SplitMatrix::all_standalone(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 10);
    for i in 0..20 {
        let e = sh.insert(&store, 0, InsertPos::Last, 11, NewNode::Element);
        sh.insert(&store, e, InsertPos::Last, LABEL_TEXT, text(8, i));
    }
    sh.verify(&store);
    let stats = check_tree(&store, sh.root_rid).unwrap();
    // 41 facade nodes → 41 records (root + 20 elements + 20 literals):
    // "each facade node is a standalone node, and all aggregates contain
    // exclusively proxies" (§5).
    assert_eq!(stats.facade_nodes, 41);
    assert_eq!(stats.records, 41);
    assert_eq!(stats.proxies, 40);
    assert_eq!(stats.scaffolding_aggregates, 0);
}

#[test]
fn keep_with_parent_never_separated() {
    let mut matrix = SplitMatrix::all_other();
    // SPEAKER (11) must stay with SPEECH (10).
    matrix.set(10, 11, SplitBehaviour::KeepWithParent);
    let store = mk_store(512, matrix, TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    for i in 0..40 {
        let speech = sh.insert(&store, 0, InsertPos::Last, 10, NewNode::Element);
        let speaker = sh.insert(&store, speech, InsertPos::Last, 11, NewNode::Element);
        sh.insert(&store, speaker, InsertPos::Last, LABEL_TEXT, text(6, i));
        let line = sh.insert(&store, speech, InsertPos::Last, 12, NewNode::Element);
        sh.insert(&store, line, InsertPos::Last, LABEL_TEXT, text(25, i));
    }
    sh.verify(&store);
    // Verify: wherever a SPEAKER(11) facade node lives, its physical
    // parent chain within the record reaches the SPEECH(10) facade.
    let stats = check_tree(&store, sh.root_rid).unwrap();
    assert!(
        stats.records > 1,
        "the tree must have split for the test to bite"
    );
    for (&idx, &ptr) in &sh.map {
        if let NodeData::Element(11) = sh.doc.data(idx) {
            let tree = store.load(ptr.rid).unwrap();
            let parent = tree.node(ptr.node).parent.expect("speaker below speech");
            assert_eq!(
                tree.node(parent).label,
                10,
                "SPEAKER must share its record with its SPEECH parent"
            );
        }
    }
}

#[test]
fn delete_subtree_cascades() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    let mut elements = Vec::new();
    for i in 0..60 {
        let e = sh.insert(&store, 0, InsertPos::Last, 2, NewNode::Element);
        sh.insert(&store, e, InsertPos::Last, LABEL_TEXT, text(14, i));
        elements.push(e);
    }
    sh.verify(&store);
    // Delete every third element subtree.
    for &e in elements.iter().step_by(3) {
        let res = store.delete_subtree(sh.ptr(e)).unwrap();
        // Purge victims by their pre-op addresses before applying
        // relocations (survivors may move into freed slots).
        for n in sh.doc.pre_order_from(e).collect::<Vec<_>>() {
            if let Some(p) = sh.map.remove(&n) {
                sh.rev.remove(&p);
            }
        }
        sh.apply(&res);
        sh.doc.detach(e);
    }
    sh.verify(&store);
    let stats = check_tree(&store, sh.root_rid).unwrap();
    assert_eq!(stats.facade_nodes, 1 + 2 * 40);
}

#[test]
fn delete_everything_leaves_root() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    let mut kids = Vec::new();
    for i in 0..50 {
        let node = if i % 2 == 0 {
            NewNode::Element
        } else {
            NewNode::Literal(LiteralValue::String(format!(
                "payload-{i}-{}",
                "x".repeat(i % 30)
            )))
        };
        let label = if i % 2 == 0 { 2 } else { LABEL_TEXT };
        kids.push(sh.insert(&store, 0, InsertPos::Last, label, node));
    }
    sh.verify(&store);
    for &k in &kids {
        let res = store.delete_subtree(sh.ptr(k)).unwrap();
        for n in sh.doc.pre_order_from(k).collect::<Vec<_>>() {
            if let Some(p) = sh.map.remove(&n) {
                sh.rev.remove(&p);
            }
        }
        sh.apply(&res);
        sh.doc.detach(k);
    }
    sh.verify(&store);
    let stats = check_tree(&store, sh.root_rid).unwrap();
    assert_eq!(stats.facade_nodes, 1);
    assert_eq!(
        stats.records, 1,
        "empty root collapses to one record: {stats:?}"
    );
}

#[test]
fn update_literal_grows_and_splits() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    let mut texts = Vec::new();
    for i in 0..8 {
        let e = sh.insert(&store, 0, InsertPos::Last, 2, NewNode::Element);
        texts.push(sh.insert(&store, e, InsertPos::Last, LABEL_TEXT, text(10, i)));
    }
    sh.verify(&store);
    // Grow one literal until the record must split.
    let big = "B".repeat(300);
    let res = store
        .update_literal(sh.ptr(texts[3]), LiteralValue::String(big.clone()))
        .unwrap();
    sh.apply(&res);
    if let NodeData::Literal { value, .. } = sh.doc.data_mut(texts[3]) {
        *value = LiteralValue::String(big);
    }
    sh.verify(&store);
    // And shrink it back.
    let res = store
        .update_literal(sh.ptr(texts[3]), LiteralValue::String("tiny".into()))
        .unwrap();
    sh.apply(&res);
    if let NodeData::Literal { value, .. } = sh.doc.data_mut(texts[3]) {
        *value = LiteralValue::String("tiny".into());
    }
    sh.verify(&store);
}

#[test]
fn typed_literals_roundtrip_through_store() {
    let store = mk_store(1024, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    for v in [
        LiteralValue::I8(-3),
        LiteralValue::I16(500),
        LiteralValue::I32(-70_000),
        LiteralValue::I64(1 << 40),
        LiteralValue::F64(6.25),
        LiteralValue::Uri("http://natix.example/doc".into()),
    ] {
        sh.insert(&store, 0, InsertPos::Last, LABEL_TEXT, NewNode::Literal(v));
    }
    sh.verify(&store);
}

#[test]
fn oversized_single_node_rejected() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let sh = Shadow::new(&store, 1);
    let huge = "x".repeat(2000);
    let err = store
        .insert(
            sh.ptr(0),
            InsertPos::Last,
            LABEL_TEXT,
            NewNode::Literal(LiteralValue::String(huge)),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            natix_tree::TreeError::OversizedNode { .. }
                | natix_tree::TreeError::Storage(
                    natix_storage::StorageError::RecordTooLarge { .. }
                )
        ),
        "got {err}"
    );
    // The tree is still intact.
    check_tree(&store, sh.root_rid).unwrap();
}

#[test]
fn merge_absorbs_small_records() {
    let mut config = TreeConfig::paper();
    config.merge_enabled = true;
    let store = mk_store(512, SplitMatrix::all_other(), config);
    let mut sh = Shadow::new(&store, 1);
    let mut kids = Vec::new();
    for i in 0..80 {
        let e = sh.insert(&store, 0, InsertPos::Last, 2, NewNode::Element);
        sh.insert(&store, e, InsertPos::Last, LABEL_TEXT, text(12, i));
        kids.push(e);
    }
    sh.verify(&store);
    let before = check_tree(&store, sh.root_rid).unwrap();
    // Delete most of the content; merging should shrink the record count
    // rather than leaving a chain of near-empty records.
    for &e in kids.iter().skip(4) {
        let res = store.delete_subtree(sh.ptr(e)).unwrap();
        for n in sh.doc.pre_order_from(e).collect::<Vec<_>>() {
            if let Some(p) = sh.map.remove(&n) {
                sh.rev.remove(&p);
            }
        }
        sh.apply(&res);
        sh.doc.detach(e);
    }
    sh.verify(&store);
    let after = check_tree(&store, sh.root_rid).unwrap();
    assert!(
        after.records < before.records / 2,
        "merge should reclaim records: before {before:?}, after {after:?}"
    );
}

#[test]
fn drop_tree_frees_all_records() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    for i in 0..60 {
        let e = sh.insert(&store, 0, InsertPos::Last, 2, NewNode::Element);
        sh.insert(&store, e, InsertPos::Last, LABEL_TEXT, text(14, i));
    }
    sh.verify(&store);
    store.drop_tree(sh.root_rid).unwrap();
    assert!(store.load(sh.root_rid).is_err());
    // A second document can reuse the space.
    let rid = store.create_tree(9).unwrap();
    check_tree(&store, rid).unwrap();
}

#[test]
fn many_documents_coexist() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut shadows: Vec<Shadow> = (0..5).map(|d| Shadow::new(&store, 100 + d)).collect();
    for round in 0..30 {
        for sh in shadows.iter_mut() {
            let e = sh.insert(&store, 0, InsertPos::Last, 2, NewNode::Element);
            sh.insert(&store, e, InsertPos::Last, LABEL_TEXT, text(11, round));
        }
    }
    for sh in &shadows {
        sh.verify(&store);
    }
}

#[test]
fn insert_positions_mixed() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    // Interleave First/Last/At across enough volume to cross splits.
    for i in 0..90 {
        let pos = match i % 3 {
            0 => InsertPos::First,
            1 => InsertPos::Last,
            _ => InsertPos::At(i / 2 % 7),
        };
        sh.insert(&store, 0, pos, LABEL_TEXT, text(9 + i % 23, i));
        if i % 9 == 8 {
            sh.verify(&store);
        }
    }
    sh.verify(&store);
}

#[test]
fn logical_navigation_matches_shadow() {
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    let mut all = vec![0];
    for i in 0..70 {
        let parent = all[i * 7 % all.len()];
        if matches!(sh.doc.data(parent), NodeData::Element(_)) {
            let e = sh.insert(
                &store,
                parent,
                InsertPos::Last,
                2 + (i % 3) as u16,
                NewNode::Element,
            );
            all.push(e);
        }
    }
    sh.verify(&store);
    // logical_children and logical_parent agree with the shadow document.
    for &idx in &all {
        let kids = store.logical_children(sh.ptr(idx)).unwrap();
        let shadow_kids = sh.doc.children(idx);
        assert_eq!(kids.len(), shadow_kids.len(), "child count at node {idx}");
        for (p, &si) in kids.iter().zip(shadow_kids) {
            assert_eq!(sh.rev[p], si, "child identity");
        }
        let parent = store.logical_parent(sh.ptr(idx)).unwrap();
        match sh.doc.parent(idx) {
            None => assert!(parent.is_none()),
            Some(sp) => assert_eq!(sh.rev[&parent.unwrap()], sp),
        }
    }
}

#[test]
fn page_kind_bookkeeping() {
    // The store must only ever touch slotted pages in its segment.
    let store = mk_store(512, SplitMatrix::all_other(), TreeConfig::paper());
    let mut sh = Shadow::new(&store, 1);
    for i in 0..40 {
        sh.insert(&store, 0, InsertPos::Last, LABEL_TEXT, text(16, i));
    }
    sh.verify(&store);
    let sm = store.storage();
    for (page, _) in sm.segment_pages(store.segment()) {
        let pin = sm.pin(page).unwrap();
        assert_eq!(pin.read().kind().unwrap(), PageKind::Slotted);
    }
}
