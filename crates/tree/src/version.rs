//! Record-level versioning — the shared-state edit path's read side.
//!
//! The tree storage manager rewrites records wholesale: an insert, split
//! or delete replaces the byte image of every record it touches, and one
//! logical operation touches several records (the updated host, split
//! partitions, the parent holding the separator, standalone parent-pointer
//! patches). A reader that walks the record graph while such an operation
//! is in flight would see a *mix* of pre- and post-operation records —
//! proxies pointing at records that do not exist yet, parent pointers one
//! step ahead of their children.
//!
//! [`VersionStore`] makes concurrent readers safe without blocking them:
//!
//! * **Epoch watermark.** Every completed structural operation advances a
//!   global epoch. A reader *pins* the current epoch for the duration of
//!   one read operation ([`VersionStore::begin_read`]); the pin is the
//!   reader's snapshot identity.
//! * **Copy-on-write record versions.** Before a writer overwrites,
//!   patches or deletes a stored record, it deposits the record's current
//!   parsed image in the version store ([`VersionStore::supersede`]),
//!   tagged with its operation. When the operation completes
//!   ([`WriteOp`] drop), the deposited versions are *published*: stamped
//!   with the new epoch, meaning "readers pinned below this epoch read
//!   me". Versions are garbage-collected as soon as no pinned reader can
//!   need them.
//! * **Latch-free read validation.** A reader first consults the version
//!   store, then reads the page, then consults the version store *again*:
//!   because the writer deposits the old image before touching the page
//!   (and page content is handed over through the frame's `RwLock`), a
//!   reader that raced the overwrite is guaranteed to find the deposit on
//!   the second look. No per-read lock is held across page I/O, and when
//!   no writer has deposited anything the whole check is one relaxed
//!   atomic load.
//!
//! Writers of *one* document are serialised by the document manager's
//! per-document edit latch; writers of different documents (and streaming
//! bulkloads) run concurrently — their record sets are disjoint, and each
//! carries its own operation token.
//!
//! The ambient snapshot/operation is thread-local: [`ReadPin`] and
//! [`WriteOp`] install themselves for the current thread, so the many
//! layers between a public API call and `TreeStore::load` need no epoch
//! plumbing. Parallel query workers join their coordinator's snapshot
//! with [`VersionStore::adopt_read`].

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, TrackedAtomicU64, TrackedAtomicUsize};

use natix_storage::wal::{log_suppressed, Wal, WalRecord};
use natix_storage::{PageId, Rid};

use crate::model::RecordTree;

thread_local! {
    /// `(store identity, pinned epoch)` of the innermost read snapshot
    /// active on this thread.
    static READ_PIN: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
    /// `(store identity, op token)` of the write operation active on this
    /// thread.
    static WRITE_OP: Cell<Option<(usize, u64)>> = const { Cell::new(None) };
}

/// A deposited pre-image: raw page bytes until a superseded load actually
/// needs the parsed tree. Writers deposit on *every* overwrite, but most
/// deposits are never read (no reader is pinned behind the edit), so the
/// record decode — the dominant CPU cost of a deposit — is deferred to
/// the first superseded load and cached for the rest.
enum Image {
    /// `(record bytes, encoded type table)` as of the deposit.
    Raw(Vec<u8>, Vec<u8>),
    Decoded(Arc<RecordTree>),
}

/// One retained pre-image of a record.
struct RecordVersion {
    /// Epoch from which the replacement is current: readers pinned at an
    /// epoch `< valid_until` read this image. `u64::MAX` while the
    /// superseding operation is still in flight.
    valid_until: u64,
    /// Token of the superseding operation (meaningful while pending).
    op: u64,
    image: Image,
}

/// A side effect an operation schedules for its publish point: runs with
/// `(new_epoch, floor)` — the operation's epoch and the lowest epoch any
/// reader still pins — *inside* the publish critical section, so its
/// state change and the epoch advance are atomic for readers. Hooks must
/// not call back into the version store.
type PublishHook = Box<dyn FnOnce(u64, u64) + Send>;

struct VersionState {
    /// The published epoch: advanced once per completed write operation.
    epoch: u64,
    /// Pinned reader epochs → pin count.
    readers: BTreeMap<u64, usize>,
    /// Superseded images per record, oldest first (ascending
    /// `valid_until`, pending `u64::MAX` entries last).
    records: HashMap<Rid, Vec<RecordVersion>>,
    /// Records superseded by each in-flight operation.
    pending: HashMap<u64, Vec<Rid>>,
    /// Publish hooks per in-flight operation (document-root moves, document
    /// retirement — state that must flip atomically with the epoch).
    hooks: HashMap<u64, Vec<PublishHook>>,
    /// Records *created* by each in-flight operation: no pre-image exists
    /// and no older snapshot can reach them, so superseding one later in
    /// the same operation (parent-pointer patches of freshly bulkloaded
    /// records, partitions re-split recursively) deposits nothing —
    /// without this, a streaming bulkload would retain its entire
    /// document in parsed form until publish.
    created: HashMap<u64, HashSet<Rid>>,
    next_op: u64,
}

/// Commit-time callback installed by the repository: `(op, touched pages)`,
/// invoked after an operation publishes. The repository's hook captures
/// full images of the touched pages and appends them to the log together
/// with the operation's commit record.
pub type CommitHook = Box<dyn Fn(u64, Vec<PageId>) + Send + Sync>;

/// The shared epoch/version state of one repository's record stores. All
/// [`crate::TreeStore`]s of one storage manager share a single
/// `Arc<VersionStore>`, because records are addressed globally.
pub struct VersionStore {
    state: Mutex<VersionState>,
    /// Number of retained versions — the readers' fast-path gate. Zero
    /// means no writer has deposited anything a reader could need, so
    /// `lookup` never takes the mutex.
    retained: TrackedAtomicUsize,
    /// Attached write-ahead log: deposits double as logged undo images.
    wal: OnceLock<Arc<Wal>>,
    /// Redo-logging hook run when an operation publishes.
    commit_hook: OnceLock<CommitHook>,
    /// Outer write operations started (counts up-front, before the
    /// operation's first log append can happen).
    ops_begun: TrackedAtomicU64,
    /// Outer write operations fully finished — published *and* done with
    /// their commit hook, i.e. past their last log append.
    ops_finished: TrackedAtomicU64,
}

impl Default for VersionStore {
    fn default() -> Self {
        VersionStore::new()
    }
}

impl VersionStore {
    /// Creates an empty version store at epoch 0.
    pub fn new() -> VersionStore {
        VersionStore {
            state: Mutex::with_rank(
                &parking_lot::rank::VERSION_STORE,
                VersionState {
                    epoch: 0,
                    readers: BTreeMap::new(),
                    records: HashMap::new(),
                    pending: HashMap::new(),
                    hooks: HashMap::new(),
                    created: HashMap::new(),
                    next_op: 0,
                },
            ),
            retained: TrackedAtomicUsize::new(0),
            wal: OnceLock::new(),
            commit_hook: OnceLock::new(),
            ops_begun: TrackedAtomicU64::new(0),
            ops_finished: TrackedAtomicU64::new(0),
        }
    }

    /// Attaches the write-ahead log: from now on every first deposit and
    /// creation notice is also appended as an undo record.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        let _ = self.wal.set(wal);
    }

    /// Installs the redo-logging commit hook (at most once).
    pub fn set_commit_hook(&self, hook: CommitHook) {
        let _ = self.commit_hook.set(hook);
    }

    /// Outer write operations started so far.
    pub fn ops_begun(&self) -> u64 {
        self.ops_begun.load(Ordering::Acquire)
    }

    /// Outer write operations fully finished (published, commit hook run).
    pub fn ops_finished(&self) -> u64 {
        self.ops_finished.load(Ordering::Acquire)
    }

    /// Write operations currently in flight. Racy by nature — meaningful
    /// for quiescence checks only together with
    /// [`ops_begun`](Self::ops_begun)/[`ops_finished`](Self::ops_finished)
    /// equality over an interval.
    pub fn active_ops(&self) -> u64 {
        self.ops_begun().saturating_sub(self.ops_finished())
    }

    /// Identity used to match thread-local ambient state to this store.
    fn id(&self) -> usize {
        self as *const VersionStore as usize
    }

    /// The current published epoch (diagnostics and tests).
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Number of retained superseded record versions (tests).
    pub fn retained_versions(&self) -> usize {
        self.retained.load(Ordering::Acquire)
    }

    // ==================================================================
    // Reader side.
    // ==================================================================

    /// Pins the current epoch as a read snapshot for this thread. Nested
    /// pins on the same store share the outermost epoch, so a read
    /// operation that calls another read operation stays on one snapshot.
    pub fn begin_read(&self) -> ReadPin<'_> {
        let prev = READ_PIN.get();
        let epoch = match prev {
            Some((id, e)) if id == self.id() => {
                // Nested: join the enclosing snapshot.
                let mut st = self.state.lock();
                *st.readers.entry(e).or_insert(0) += 1;
                e
            }
            _ => {
                let mut st = self.state.lock();
                let e = st.epoch;
                *st.readers.entry(e).or_insert(0) += 1;
                e
            }
        };
        READ_PIN.set(Some((self.id(), epoch)));
        ReadPin {
            store: self,
            epoch,
            prev,
            _not_send: PhantomData,
        }
    }

    /// Joins an existing snapshot from another thread (parallel query
    /// workers adopt their coordinator's epoch). The coordinator's own pin
    /// must outlive the adoption — it keeps the epoch's versions alive.
    pub fn adopt_read(&self, epoch: u64) -> ReadPin<'_> {
        {
            let mut st = self.state.lock();
            *st.readers.entry(epoch).or_insert(0) += 1;
        }
        let prev = READ_PIN.get();
        READ_PIN.set(Some((self.id(), epoch)));
        ReadPin {
            store: self,
            epoch,
            prev,
            _not_send: PhantomData,
        }
    }

    /// Pins the current epoch without touching the thread-local ambient
    /// state — test helper for holding several snapshots at distinct
    /// epochs on one thread.
    #[cfg(test)]
    fn pin_raw(&self) -> u64 {
        let mut st = self.state.lock();
        let e = st.epoch;
        *st.readers.entry(e).or_insert(0) += 1;
        e
    }

    /// The epoch pinned by this thread on *this* store, if any.
    pub fn ambient_read_epoch(&self) -> Option<u64> {
        match READ_PIN.get() {
            Some((id, e)) if id == self.id() => Some(e),
            _ => None,
        }
    }

    /// The superseded image of `rid` a reader pinned at `epoch` must use,
    /// or `None` when the on-page record is current for that epoch.
    /// Raw deposits are decoded on this first superseded load and the
    /// parsed tree cached in place; the decode runs outside the state
    /// mutex (the bytes are cloned), so concurrent lookups never stall
    /// behind each other's parsing.
    ///
    /// # Panics
    ///
    /// If a raw deposit fails to decode — impossible unless the writer
    /// deposited corrupt page bytes, which would have failed its own
    /// operation first.
    pub fn lookup(&self, rid: Rid, epoch: u64) -> Option<Arc<RecordTree>> {
        if self.retained.load(Ordering::Acquire) == 0 {
            return None;
        }
        let raw = {
            let st = self.state.lock();
            let v = st
                .records
                .get(&rid)?
                .iter()
                .find(|v| v.valid_until > epoch)?;
            match &v.image {
                Image::Decoded(tree) => return Some(Arc::clone(tree)),
                Image::Raw(bytes, table) => (v.valid_until, v.op, bytes.clone(), table.clone()),
            }
        };
        let (valid_until, op, bytes, table) = raw;
        let parsed = crate::typetable::TypeTable::decode(&table)
            .and_then(|t| crate::record::deserialize(&bytes, &t, rid))
            .unwrap_or_else(|e| panic!("corrupt pre-image deposit for {rid}: {e}"));
        let tree = Arc::new(parsed);
        let mut st = self.state.lock();
        if let Some(versions) = st.records.get_mut(&rid) {
            // Cache for later loads of the same version (matched by its
            // window, not by position — publishes may have stamped it or
            // stacked newer deposits meanwhile).
            if let Some(v) = versions
                .iter_mut()
                .find(|v| v.op == op && (v.valid_until == valid_until || valid_until == u64::MAX))
            {
                if matches!(v.image, Image::Raw(..)) {
                    v.image = Image::Decoded(Arc::clone(&tree));
                }
            }
        }
        Some(tree)
    }

    fn unpin(&self, epoch: u64) {
        let mut st = self.state.lock();
        match st.readers.get_mut(&epoch) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                st.readers.remove(&epoch);
            }
        }
        self.gc(&mut st);
    }

    // ==================================================================
    // Writer side.
    // ==================================================================

    /// Starts a write operation for this thread. Nested calls on the same
    /// store return a passive guard — the outermost operation owns the
    /// publish.
    pub fn begin_write(&self) -> WriteOp<'_> {
        let prev = WRITE_OP.get();
        if let Some((id, ambient)) = prev {
            if id == self.id() {
                return WriteOp {
                    store: self,
                    op: None,
                    token: ambient,
                    prev,
                    counted: false,
                    _not_send: PhantomData,
                };
            }
        }
        let op = {
            let mut st = self.state.lock();
            st.next_op += 1;
            st.next_op
        };
        // Counted before the operation can log anything: a checkpoint's
        // quiescence check that sees an unchanged count knows no record of
        // this operation can be in the log it is about to truncate.
        // Suppressed operations (checkpoint/recovery internals) never log,
        // so they stay invisible to that check — otherwise a checkpoint's
        // own catalog save would veto its log truncation.
        let counted = !log_suppressed();
        if counted {
            self.ops_begun.fetch_add(1, Ordering::AcqRel);
        }
        WRITE_OP.set(Some((self.id(), op)));
        WriteOp {
            store: self,
            op: Some(op),
            token: op,
            prev,
            counted,
            _not_send: PhantomData,
        }
    }

    /// The op token of the write operation active on this thread, if any.
    pub fn ambient_write_op(&self) -> Option<u64> {
        match WRITE_OP.get() {
            Some((id, op)) if id == self.id() => Some(op),
            _ => None,
        }
    }

    /// Marks `rid` as created by operation `op`: it has no pre-image, and
    /// no snapshot older than the operation can reach it, so later
    /// supersedes within the same operation are skipped.
    pub fn note_created(&self, op: u64, rid: Rid) {
        let mut st = self.state.lock();
        if st.created.entry(op).or_default().insert(rid) {
            if let Some(wal) = self.wal.get() {
                wal.append(&WalRecord::Created { op, rid });
            }
        }
    }

    /// True when `rid` was created by operation `op` (its supersedes need
    /// no deposit — callers use this to skip the pre-image decode too).
    pub fn created_by(&self, op: u64, rid: Rid) -> bool {
        self.state
            .lock()
            .created
            .get(&op)
            .is_some_and(|s| s.contains(&rid))
    }

    /// True when `rid` has a *pending* deposit from an operation other
    /// than `op` — the slot-reuse quarantine. A freed slot whose
    /// pre-image is still pending belongs, for every current reader, to
    /// the old tenant: if another in-flight operation re-created the slot
    /// and published first, `(rid, epoch)` would resolve to *two* valid
    /// images at once (the creator's readers need the page, the deleter's
    /// readers need the deposit). Writers therefore refuse to place a new
    /// record in such a slot until the deleting operation publishes —
    /// published deposits are safe, because their validity window closes
    /// at the deleter's epoch, strictly before any later creation's.
    pub fn pending_elsewhere(&self, rid: Rid, op: u64) -> bool {
        if self.retained.load(Ordering::Acquire) == 0 {
            return false;
        }
        let st = self.state.lock();
        st.records
            .get(&rid)
            .is_some_and(|vs| vs.iter().any(|v| v.valid_until == u64::MAX && v.op != op))
    }

    /// Deposits the current image of `rid` before operation `op`
    /// overwrites, patches or deletes it. Must be called *before* the page
    /// bytes change. Only the first deposit per record per operation
    /// sticks — later rewrites of the same record within one operation are
    /// intermediate states no reader may observe.
    pub fn supersede(&self, op: u64, rid: Rid, tree: Arc<RecordTree>) {
        self.deposit(op, rid, Image::Decoded(tree));
    }

    /// Like [`supersede`](Self::supersede), but deposits the raw record
    /// bytes plus the page's encoded type table — the cheap (memcpy-only)
    /// form writers use on their hot path. The decode happens lazily, on
    /// the first superseded load, and only if one ever comes.
    pub fn supersede_raw(&self, op: u64, rid: Rid, bytes: Vec<u8>, table: Vec<u8>) {
        self.deposit(op, rid, Image::Raw(bytes, table));
    }

    fn deposit(&self, op: u64, rid: Rid, image: Image) {
        let mut st = self.state.lock();
        if st.created.get(&op).is_some_and(|s| s.contains(&rid)) {
            return; // created by this very operation — no reader can need it
        }
        if let Some(versions) = st.records.get(&rid) {
            if versions
                .last()
                .is_some_and(|v| v.valid_until == u64::MAX && v.op == op)
            {
                return; // already deposited by this operation
            }
        }
        // The sticking deposit *is* the undo image: log it before the
        // caller touches the page bytes. (The decoded form is test-only;
        // the write path always deposits raw bytes + table.)
        if let (Some(wal), Image::Raw(bytes, table)) = (self.wal.get(), &image) {
            wal.append(&WalRecord::PreImage {
                op,
                rid,
                table: table.clone(),
                bytes: bytes.clone(),
            });
        }
        st.records.entry(rid).or_default().push(RecordVersion {
            valid_until: u64::MAX,
            op,
            image,
        });
        st.pending.entry(op).or_default().push(rid);
        self.retained.fetch_add(1, Ordering::Release);
    }

    /// Schedules `hook` to run at the current thread's operation's publish
    /// point, atomically with the epoch advance. Returns `false` (without
    /// scheduling) when no operation is active on this thread — the caller
    /// then applies the effect immediately (unpublished/bootstrap paths).
    pub fn defer_until_publish(&self, hook: impl FnOnce(u64, u64) + Send + 'static) -> bool {
        let Some(op) = self.ambient_write_op() else {
            return false;
        };
        self.state
            .lock()
            .hooks
            .entry(op)
            .or_default()
            .push(Box::new(hook));
        true
    }

    /// Publishes operation `op`: the epoch advances, every image the
    /// operation deposited becomes valid-for-readers-below-the-new-epoch,
    /// and the operation's publish hooks run — all inside one critical
    /// section, so no reader can pin the new epoch and still observe
    /// pre-publish upper-layer state (e.g. a stale document-root RID).
    ///
    /// Returns the set of pages the operation touched (every page holding
    /// a record it superseded or created), for the commit hook.
    fn end_write(&self, op: u64) -> Vec<PageId> {
        let mut st = self.state.lock();
        st.epoch += 1;
        let e = st.epoch;
        let mut pages: BTreeSet<PageId> = BTreeSet::new();
        if let Some(created) = st.created.remove(&op) {
            for rid in created {
                pages.insert(rid.page);
            }
        }
        if let Some(rids) = st.pending.remove(&op) {
            for rid in rids {
                pages.insert(rid.page);
                if let Some(versions) = st.records.get_mut(&rid) {
                    for v in versions.iter_mut() {
                        if v.valid_until == u64::MAX && v.op == op {
                            v.valid_until = e;
                        }
                    }
                }
            }
        }
        if let Some(hooks) = st.hooks.remove(&op) {
            let floor = st.readers.keys().next().copied().unwrap_or(e);
            for hook in hooks {
                hook(e, floor);
            }
        }
        self.gc(&mut st);
        pages.into_iter().collect()
    }

    /// Drops every published version no pinned reader can need. A version
    /// valid until epoch `v` is needed only by readers pinned below `v`;
    /// the floor is the lowest pinned epoch (or the current epoch when
    /// nothing is pinned — future readers pin at or above it).
    fn gc(&self, st: &mut VersionState) {
        let floor = st.readers.keys().next().copied().unwrap_or(st.epoch);
        let mut dropped = 0usize;
        st.records.retain(|_, versions| {
            versions.retain(|v| {
                let keep = v.valid_until == u64::MAX || v.valid_until > floor;
                if !keep {
                    dropped += 1;
                }
                keep
            });
            !versions.is_empty()
        });
        if dropped > 0 {
            self.retained.fetch_sub(dropped, Ordering::Release);
        }
    }
}

/// RAII read snapshot: pins an epoch for the current thread and installs
/// it as the thread's ambient snapshot. Dropping unpins and restores the
/// previous ambient state. Not `Send` — the pin is bound to the thread's
/// ambient slot.
#[must_use = "dropping a ReadPin immediately releases the snapshot; bind it for the read's duration"]
pub struct ReadPin<'a> {
    store: &'a VersionStore,
    epoch: u64,
    prev: Option<(usize, u64)>,
    _not_send: PhantomData<*const ()>,
}

impl ReadPin<'_> {
    /// The pinned epoch — hand this to workers joining the snapshot via
    /// [`VersionStore::adopt_read`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for ReadPin<'_> {
    fn drop(&mut self) {
        READ_PIN.set(self.prev);
        self.store.unpin(self.epoch);
    }
}

/// RAII write operation: deposits made through
/// [`VersionStore::supersede`] under this token are published (epoch
/// advance + version stamping) when the guard drops — on success, error
/// and unwind alike, because the pages were modified either way. Not
/// `Send`.
#[must_use = "dropping a WriteOp immediately publishes the operation; bind it for the edit's duration"]
pub struct WriteOp<'a> {
    store: &'a VersionStore,
    /// `None` for a nested guard (the outer operation publishes).
    op: Option<u64>,
    /// The operation token this guard works under — its own for an outer
    /// guard, the enclosing operation's for a nested one. Captured at
    /// construction so `id` never has to re-derive it from thread state.
    token: u64,
    prev: Option<(usize, u64)>,
    /// Whether this guard bumped `ops_begun` (false when it began under
    /// log suppression and is invisible to quiescence checks).
    counted: bool,
    _not_send: PhantomData<*const ()>,
}

impl WriteOp<'_> {
    /// The operation's token (the outer operation's for a nested guard).
    pub fn id(&self) -> u64 {
        self.token
    }
}

impl Drop for WriteOp<'_> {
    fn drop(&mut self) {
        if let Some(op) = self.op {
            WRITE_OP.set(self.prev);
            let pages = self.store.end_write(op);
            // Redo logging: capture-and-commit the touched pages. Runs
            // after publish (the images must be the final, published
            // bytes) but before the operation counts as finished — a
            // checkpoint's quiescence check must not truncate the log
            // while the hook is still appending to it. Skipped for
            // operations that touched nothing and under log suppression
            // (checkpoint/recovery internals).
            if !pages.is_empty() && !log_suppressed() {
                if let Some(hook) = self.store.commit_hook.get() {
                    hook(op, pages);
                }
            }
            if self.counted {
                self.store.ops_finished.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PContent;

    fn tree_with_label(label: u16) -> Arc<RecordTree> {
        Arc::new(RecordTree::new(
            label,
            PContent::Aggregate(Vec::new()),
            Rid::invalid(),
        ))
    }

    #[test]
    fn reader_sees_deposit_until_publish_boundary() {
        let vs = VersionStore::new();
        let rid = Rid::new(3, 1);
        let old = vs.pin_raw();
        assert!(vs.lookup(rid, old).is_none());
        // A writer deposits mid-operation: the pinned reader must see it.
        let op = vs.begin_write();
        let tok = vs.ambient_write_op().unwrap();
        vs.supersede(tok, rid, tree_with_label(7));
        assert_eq!(
            vs.lookup(rid, old).unwrap().node(0).label,
            7,
            "pending version serves pinned readers"
        );
        drop(op);
        // Still visible to the old pin, invisible to a fresh one.
        assert!(vs.lookup(rid, old).is_some());
        let fresh = vs.pin_raw();
        assert!(vs.lookup(rid, fresh).is_none());
        vs.unpin(fresh);
        vs.unpin(old);
        assert_eq!(vs.retained_versions(), 0, "gc after last unpin");
    }

    #[test]
    fn raw_deposits_decode_lazily_and_cache() {
        // The write-path deposit is raw bytes; the parsed tree appears on
        // the first superseded load and later loads share it (pointer
        // equality of the cached Arc).
        let vs = VersionStore::new();
        let rid = Rid::new(6, 2);
        let src = tree_with_label(33);
        let mut table = crate::typetable::TypeTable::new();
        let (bytes, _) = crate::record::serialize(&src, &mut table);
        let pin = vs.pin_raw();
        let op = vs.begin_write();
        let tok = vs.ambient_write_op().unwrap();
        vs.supersede_raw(tok, rid, bytes, table.encode());
        let first = vs.lookup(rid, pin).expect("pending raw deposit serves");
        assert_eq!(first.node(first.root()).label, 33);
        drop(op);
        let second = vs.lookup(rid, pin).expect("published deposit serves");
        assert!(
            Arc::ptr_eq(&first, &second),
            "decode must be cached, not repeated"
        );
        vs.unpin(pin);
        assert_eq!(vs.retained_versions(), 0);
    }

    #[test]
    fn first_deposit_per_op_wins() {
        let vs = VersionStore::new();
        let rid = Rid::new(1, 1);
        let pin = vs.pin_raw();
        let op = vs.begin_write();
        let tok = vs.ambient_write_op().unwrap();
        vs.supersede(tok, rid, tree_with_label(1));
        vs.supersede(tok, rid, tree_with_label(2)); // intermediate — ignored
        assert_eq!(vs.lookup(rid, pin).unwrap().node(0).label, 1);
        drop(op);
        vs.unpin(pin);
    }

    #[test]
    fn pending_deposits_quarantine_the_slot_for_other_ops() {
        let vs = VersionStore::new();
        let rid = Rid::new(4, 4);
        let pin = vs.pin_raw();
        let op1 = vs.begin_write();
        let tok1 = vs.ambient_write_op().unwrap();
        vs.supersede(tok1, rid, tree_with_label(9));
        // The depositing op itself may reuse the slot; others may not
        // while the deposit is pending.
        assert!(!vs.pending_elsewhere(rid, tok1));
        assert!(vs.pending_elsewhere(rid, tok1 + 999));
        drop(op1);
        // Published: the validity window is closed, reuse is safe.
        assert!(!vs.pending_elsewhere(rid, tok1 + 999));
        vs.unpin(pin);
    }

    #[test]
    fn records_created_by_an_op_deposit_nothing() {
        let vs = VersionStore::new();
        let rid = Rid::new(8, 0);
        let pin = vs.pin_raw();
        let op = vs.begin_write();
        let tok = vs.ambient_write_op().unwrap();
        vs.note_created(tok, rid);
        assert!(vs.created_by(tok, rid));
        vs.supersede(tok, rid, tree_with_label(5));
        assert!(
            vs.lookup(rid, pin).is_none(),
            "self-created records retain no versions"
        );
        drop(op);
        assert!(!vs.created_by(tok, rid), "created set cleared on publish");
        vs.unpin(pin);
        assert_eq!(vs.retained_versions(), 0);
    }

    #[test]
    fn successive_ops_stack_versions_per_epoch() {
        let vs = VersionStore::new();
        let rid = Rid::new(2, 2);
        let pin0 = vs.pin_raw(); // epoch 0
        {
            let _op = vs.begin_write();
            vs.supersede(vs.ambient_write_op().unwrap(), rid, tree_with_label(10));
        } // epoch 1
        let pin1 = vs.pin_raw();
        {
            let _op = vs.begin_write();
            vs.supersede(vs.ambient_write_op().unwrap(), rid, tree_with_label(11));
        } // epoch 2
        assert_eq!(vs.lookup(rid, pin0).unwrap().node(0).label, 10);
        assert_eq!(vs.lookup(rid, pin1).unwrap().node(0).label, 11);
        let pin2 = vs.pin_raw();
        assert!(vs.lookup(rid, pin2).is_none());
        vs.unpin(pin0);
        vs.unpin(pin1);
        vs.unpin(pin2);
        assert_eq!(vs.retained_versions(), 0);
    }

    #[test]
    fn nested_guards_share_ambient_state() {
        let vs = VersionStore::new();
        let outer = vs.begin_read();
        let inner = vs.begin_read();
        assert_eq!(outer.epoch(), inner.epoch());
        assert_eq!(vs.ambient_read_epoch(), Some(outer.epoch()));
        drop(inner);
        assert_eq!(vs.ambient_read_epoch(), Some(outer.epoch()));
        drop(outer);
        assert_eq!(vs.ambient_read_epoch(), None);

        let op_outer = vs.begin_write();
        let tok = vs.ambient_write_op().unwrap();
        let op_inner = vs.begin_write();
        assert_eq!(vs.ambient_write_op(), Some(tok));
        drop(op_inner);
        assert_eq!(vs.ambient_write_op(), Some(tok), "inner guard is passive");
        drop(op_outer);
        assert_eq!(vs.ambient_write_op(), None);
    }

    #[test]
    fn adoption_joins_a_snapshot_across_threads() {
        let vs = Arc::new(VersionStore::new());
        let pin = vs.begin_read();
        let epoch = pin.epoch();
        let rid = Rid::new(9, 0);
        {
            let _op = vs.begin_write();
            vs.supersede(vs.ambient_write_op().unwrap(), rid, tree_with_label(42));
        }
        let vs2 = Arc::clone(&vs);
        std::thread::spawn(move || {
            let worker_pin = vs2.adopt_read(epoch);
            assert_eq!(vs2.ambient_read_epoch(), Some(epoch));
            assert_eq!(
                vs2.lookup(rid, worker_pin.epoch()).unwrap().node(0).label,
                42
            );
        })
        .join()
        .unwrap();
        drop(pin);
        assert_eq!(vs.retained_versions(), 0);
    }
}
