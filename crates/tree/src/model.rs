//! The physical tree model (§2.3).
//!
//! The logical data tree is materialised as a *physical data tree* built
//! from the original logical nodes plus nodes that manage the physical
//! structure of large trees. Three classifications apply to every physical
//! node:
//!
//! * **content** (§2.3.1): aggregate (inner), literal (uninterpreted
//!   bytes), or proxy (pointer to another record);
//! * **standalone vs embedded** (§2.3.2): each record stores exactly one
//!   subtree, its root is the standalone object, the rest are embedded;
//! * **facade vs scaffolding** (§2.3.3): facade objects represent logical
//!   nodes, scaffolding objects (proxies and helper aggregates) only exist
//!   to represent large trees.
//!
//! [`RecordTree`] is the in-memory form of one record's subtree; all
//! mutation (inserts, splits, deletions) happens here, then the tree is
//! serialised back through [`crate::record`]. Byte sizes computed here are
//! exact mirror images of the serialised format — the split algorithm's
//! decisions are byte-accurate.

use natix_storage::Rid;
use natix_xml::{LabelId, LiteralValue, LABEL_NONE};

/// Index of a physical node within its record (pre-order position when the
/// record is serialised; arena slot while in memory).
pub type PNodeId = u16;

/// Physical address of a node: a record plus the node's pre-order index
/// within it. Node pointers are invalidated by record rewrites; the store
/// reports every change as a relocation event so upper layers (the
/// document manager's logical-node map) can follow along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodePtr {
    pub rid: Rid,
    pub node: PNodeId,
}

impl NodePtr {
    /// Creates a node pointer.
    pub fn new(rid: Rid, node: PNodeId) -> NodePtr {
        NodePtr { rid, node }
    }
}

impl std::fmt::Display for NodePtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.rid, self.node)
    }
}

/// Bytes of an embedded object header (Appendix A: "a header of only 6
/// bytes for embedded objects").
pub const EMBEDDED_HEADER: usize = 6;
/// Bytes of a standalone (root) object header (Appendix A: "a standalone
/// header usually consumes 10 bytes" — 8-byte parent RID + 2-byte type
/// index; the size comes from the slot).
pub const STANDALONE_HEADER: usize = 10;
/// Serialised size of a proxy's body: the child record's RID.
pub const PROXY_BODY: usize = 8;

/// Content of a physical node (§2.3.1, plus the depth-aware packing
/// extension's two scaffolding kinds).
#[derive(Debug, Clone, PartialEq)]
pub enum PContent {
    /// Inner node; contains its children.
    Aggregate(Vec<PNodeId>),
    /// Leaf with an uninterpreted, typed byte payload.
    Literal(LiteralValue),
    /// Pointer to the record holding a connected subtree.
    Proxy(Rid),
    /// Separator-style copy of an ancestor element packed into a
    /// continuation-group record (depth-aware packing, XRecursive-style
    /// parent-path storage). Carries the copied ancestor's *label* but is
    /// scaffolding: traversal emits no `Enter` for it — the real facade
    /// lives in an ancestor record — and emits the ancestor's *deferred*
    /// `Leave` once the prefix's children (the ancestor's late children)
    /// are done. Prefix entries form a chain from the group record's root,
    /// one per spilled spine level of the record the group continues.
    Prefix(Vec<PNodeId>),
    /// Placeholder through which the whole open path of a spilled record
    /// continues: points at the continuation-group record whose prefix
    /// chain matches the spilled path. At most one per record, always the
    /// last child of the spilled path's deepest node. Traversal treats the
    /// target like a proxy but returns "open" to the holder, telling every
    /// facade on the spilled path that its `Leave` was emitted by the
    /// group's prefix entries.
    Continuation(Rid),
}

/// One physical node.
#[derive(Debug, Clone)]
pub struct PNode {
    /// Logical label; [`LABEL_NONE`] marks scaffolding aggregates. A
    /// proxy's label is a *digest*: the referenced record root's label
    /// when that root is a facade (so a reader can prune the child
    /// without loading its page), [`LABEL_NONE`] when the child is
    /// scaffolding-rooted, the digest is unknown (pre-format-2 records),
    /// or digests are disabled. A digest never makes a proxy a facade.
    pub label: LabelId,
    pub content: PContent,
    /// Arena index of the parent (`None` for the record root).
    pub parent: Option<PNodeId>,
    /// The node's stored location at load time (`None` for nodes created
    /// since). Relocation events are emitted from this on serialisation;
    /// the full address (not just the index) is kept because split
    /// assembly mixes nodes from different source records in one tree.
    pub orig: Option<NodePtr>,
}

impl PNode {
    /// Facade nodes represent logical nodes; scaffolding nodes exist only
    /// for the physical structure (§2.3.3). Prefix entries carry a label
    /// but are scaffolding — the facade they copy lives elsewhere.
    pub fn is_facade(&self) -> bool {
        match self.content {
            PContent::Proxy(_) | PContent::Prefix(_) | PContent::Continuation(_) => false,
            _ => self.label != LABEL_NONE,
        }
    }

    /// True for proxies.
    pub fn is_proxy(&self) -> bool {
        matches!(self.content, PContent::Proxy(_))
    }

    /// True for path-prefix entries (depth-aware packing).
    pub fn is_prefix(&self) -> bool {
        matches!(self.content, PContent::Prefix(_))
    }

    /// True for continuation placeholders (depth-aware packing).
    pub fn is_continuation(&self) -> bool {
        matches!(self.content, PContent::Continuation(_))
    }

    /// True for scaffolding aggregates (helper nodes like h1/h2 in the
    /// paper's figure 3).
    pub fn is_scaffolding_aggregate(&self) -> bool {
        self.label == LABEL_NONE && matches!(self.content, PContent::Aggregate(_))
    }
}

/// Exact serialised size of a literal body.
pub fn literal_body_len(v: &LiteralValue) -> usize {
    match v {
        LiteralValue::String(s) | LiteralValue::Uri(s) => s.len(),
        LiteralValue::I8(_) => 1,
        LiteralValue::I16(_) => 2,
        LiteralValue::I32(_) => 4,
        LiteralValue::I64(_) | LiteralValue::F64(_) => 8,
    }
}

/// The in-memory subtree of one record.
///
/// Nodes live in an arena; removals leave tombstones (`None`) that vanish
/// on serialisation. The arena root is the record's standalone object.
#[derive(Debug, Clone)]
pub struct RecordTree {
    nodes: Vec<Option<PNode>>,
    root: PNodeId,
    /// RID of the parent record (invalid for a tree's root record) — the
    /// standalone header's parent pointer.
    pub parent_rid: Rid,
}

impl RecordTree {
    /// Creates a record tree holding a single node.
    pub fn new(label: LabelId, content: PContent, parent_rid: Rid) -> RecordTree {
        RecordTree {
            nodes: vec![Some(PNode {
                label,
                content,
                parent: None,
                orig: None,
            })],
            root: 0,
            parent_rid,
        }
    }

    /// Creates a tree from already-built arena parts (deserialisation).
    pub(crate) fn from_parts(nodes: Vec<Option<PNode>>, root: PNodeId, parent_rid: Rid) -> Self {
        RecordTree {
            nodes,
            root,
            parent_rid,
        }
    }

    /// Creates a new record tree whose root is the subtree `node`
    /// transplanted out of `src` (split partition assembly). `orig`
    /// markers travel along, keeping relocations traceable.
    pub fn from_transplant(src: &mut RecordTree, node: PNodeId) -> RecordTree {
        let mut dst = RecordTree {
            nodes: Vec::new(),
            root: 0,
            parent_rid: Rid::invalid(),
        };
        let id = src.transplant(node, &mut dst);
        dst.root = id;
        dst
    }

    /// The record root (standalone object).
    pub fn root(&self) -> PNodeId {
        self.root
    }

    /// Live node count.
    pub fn live_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Arena slots used so far, tombstones included. The arena is bounded
    /// by `u16::MAX`; long-lived trees that churn nodes (the bulkloader's
    /// in-flight spine tree) compact before they approach it.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the record holds depth-aware-packing structure (prefix
    /// entries or a continuation placeholder). Allocation-free arena scan
    /// — cheap enough for per-record checks on navigation paths.
    pub fn has_packed_entries(&self) -> bool {
        self.nodes.iter().any(|n| {
            matches!(
                n,
                Some(PNode {
                    content: PContent::Prefix(_) | PContent::Continuation(_),
                    ..
                })
            )
        })
    }

    /// Borrow a node. Panics on tombstones — indices are only produced by
    /// this tree's own API.
    pub fn node(&self, id: PNodeId) -> &PNode {
        match self.nodes[id as usize].as_ref() {
            Some(n) => n,
            None => unreachable!("record-tree id {id} points at a tombstone"),
        }
    }

    /// Checked borrow (external pointers may be stale).
    pub fn try_node(&self, id: PNodeId) -> Option<&PNode> {
        self.nodes.get(id as usize).and_then(|n| n.as_ref())
    }

    /// Mutable borrow.
    pub fn node_mut(&mut self, id: PNodeId) -> &mut PNode {
        match self.nodes[id as usize].as_mut() {
            Some(n) => n,
            None => unreachable!("record-tree id {id} points at a tombstone"),
        }
    }

    /// Children of an aggregate or prefix entry (empty slice for leaves).
    pub fn children(&self, id: PNodeId) -> &[PNodeId] {
        match &self.node(id).content {
            PContent::Aggregate(kids) | PContent::Prefix(kids) => kids,
            _ => &[],
        }
    }

    /// Allocates a detached node.
    pub fn alloc(&mut self, label: LabelId, content: PContent) -> PNodeId {
        let id = self.nodes.len();
        assert!(id <= u16::MAX as usize, "record arena exhausted");
        self.nodes.push(Some(PNode {
            label,
            content,
            parent: None,
            orig: None,
        }));
        id as PNodeId
    }

    /// Attaches `child` under `parent` at `index` (clamped).
    pub fn attach(&mut self, parent: PNodeId, index: usize, child: PNodeId) {
        self.node_mut(child).parent = Some(parent);
        match &mut self.node_mut(parent).content {
            PContent::Aggregate(kids) | PContent::Prefix(kids) => {
                let at = index.min(kids.len());
                kids.insert(at, child);
            }
            _ => panic!("attach to non-aggregate"),
        }
    }

    /// Detaches `child` from its parent (the subtree stays in the arena).
    pub fn detach(&mut self, child: PNodeId) {
        let Some(parent) = self.node(child).parent else {
            return;
        };
        // A tombstoned parent has no child list left to prune; clearing
        // the child's back-pointer below is all the detach there is.
        if let Some(Some(p)) = self.nodes.get_mut(parent as usize) {
            if let PContent::Aggregate(kids) | PContent::Prefix(kids) = &mut p.content {
                kids.retain(|&c| c != child);
            }
        }
        self.node_mut(child).parent = None;
    }

    /// Removes the subtree under `id` (tombstoning every node), returning
    /// the RIDs of any proxies or continuations it contained — the caller
    /// must cascade the deletion into those records.
    pub fn remove_subtree(&mut self, id: PNodeId) -> Vec<Rid> {
        self.detach(id);
        let mut proxies = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            // Already-tombstoned entries (removal is idempotent) have
            // nothing left to cascade.
            let Some(node) = self.nodes[n as usize].take() else {
                continue;
            };
            match node.content {
                PContent::Aggregate(kids) | PContent::Prefix(kids) => stack.extend(kids),
                PContent::Proxy(rid) | PContent::Continuation(rid) => proxies.push(rid),
                PContent::Literal(_) => {}
            }
        }
        proxies
    }

    /// Pre-order walk of the subtree at `id`.
    pub fn pre_order(&self, id: PNodeId) -> Vec<PNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            if let PContent::Aggregate(kids) | PContent::Prefix(kids) = &self.node(n).content {
                stack.extend(kids.iter().rev());
            }
        }
        out
    }

    /// Exact serialised body length of the subtree at `id` (without its own
    /// header).
    pub fn body_len(&self, id: PNodeId) -> usize {
        match &self.node(id).content {
            PContent::Literal(v) => literal_body_len(v),
            PContent::Proxy(_) | PContent::Continuation(_) => PROXY_BODY,
            PContent::Aggregate(kids) | PContent::Prefix(kids) => kids
                .iter()
                .map(|&c| EMBEDDED_HEADER + self.body_len(c))
                .sum(),
        }
    }

    /// Exact serialised size of the subtree at `id` as an embedded object.
    pub fn embedded_size(&self, id: PNodeId) -> usize {
        EMBEDDED_HEADER + self.body_len(id)
    }

    /// Exact serialised size of the whole record.
    pub fn record_size(&self) -> usize {
        STANDALONE_HEADER + self.body_len(self.root)
    }

    /// Size the subtree at `id` would have as the root of its own record.
    pub fn standalone_size(&self, id: PNodeId) -> usize {
        STANDALONE_HEADER + self.body_len(id)
    }

    /// All child-record RIDs referenced from the subtree at `id` — proxies
    /// *and* continuation placeholders (both name records whose standalone
    /// parent pointer must track this record).
    pub fn proxies_under(&self, id: PNodeId) -> Vec<Rid> {
        self.pre_order(id)
            .into_iter()
            .filter_map(|n| match self.node(n).content {
                PContent::Proxy(rid) | PContent::Continuation(rid) => Some(rid),
                _ => None,
            })
            .collect()
    }

    /// Moves the subtree rooted at `id` out of this arena into `dst`,
    /// returning its node id there. Used by split assembly. `orig`
    /// markers travel along (relocations are emitted when `dst` is
    /// serialised).
    pub fn transplant(&mut self, id: PNodeId, dst: &mut RecordTree) -> PNodeId {
        self.detach(id);
        let Some(node) = self.nodes[id as usize].take() else {
            unreachable!("transplant of tombstoned node {id}");
        };
        let (label, content, orig) = (node.label, node.content, node.orig);
        match content {
            PContent::Aggregate(kids) => {
                let new_id = dst.alloc(label, PContent::Aggregate(Vec::new()));
                dst.node_mut(new_id).orig = orig;
                for (i, k) in kids.into_iter().enumerate() {
                    let moved = self.transplant_inner(k, dst);
                    dst.attach(new_id, i, moved);
                }
                new_id
            }
            PContent::Prefix(kids) => {
                let new_id = dst.alloc(label, PContent::Prefix(Vec::new()));
                dst.node_mut(new_id).orig = orig;
                for (i, k) in kids.into_iter().enumerate() {
                    let moved = self.transplant_inner(k, dst);
                    dst.attach(new_id, i, moved);
                }
                new_id
            }
            other => {
                let new_id = dst.alloc(label, other);
                dst.node_mut(new_id).orig = orig;
                new_id
            }
        }
    }

    fn transplant_inner(&mut self, id: PNodeId, dst: &mut RecordTree) -> PNodeId {
        let Some(node) = self.nodes[id as usize].take() else {
            unreachable!("transplant of tombstoned node {id}");
        };
        let (label, content, orig) = (node.label, node.content, node.orig);
        match content {
            PContent::Aggregate(kids) => {
                let new_id = dst.alloc(label, PContent::Aggregate(Vec::new()));
                dst.node_mut(new_id).orig = orig;
                for (i, k) in kids.into_iter().enumerate() {
                    let moved = self.transplant_inner(k, dst);
                    dst.attach(new_id, i, moved);
                }
                new_id
            }
            PContent::Prefix(kids) => {
                let new_id = dst.alloc(label, PContent::Prefix(Vec::new()));
                dst.node_mut(new_id).orig = orig;
                for (i, k) in kids.into_iter().enumerate() {
                    let moved = self.transplant_inner(k, dst);
                    dst.attach(new_id, i, moved);
                }
                new_id
            }
            other => {
                let new_id = dst.alloc(label, other);
                dst.node_mut(new_id).orig = orig;
                new_id
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use natix_xml::LABEL_TEXT;

    fn text(s: &str) -> PContent {
        PContent::Literal(LiteralValue::String(s.into()))
    }

    /// Builds the paper's figure-2 record: SPEECH(SPEAKER("OTHELLO"),
    /// LINE("Let me see your eyes;"), LINE("Look in my face.")).
    fn figure2() -> RecordTree {
        let mut t = RecordTree::new(10, PContent::Aggregate(vec![]), Rid::invalid());
        let speaker = t.alloc(11, PContent::Aggregate(vec![]));
        t.attach(t.root(), 0, speaker);
        let s_text = t.alloc(LABEL_TEXT, text("OTHELLO"));
        t.attach(speaker, 0, s_text);
        for (i, line) in ["Let me see your eyes;", "Look in my face."]
            .iter()
            .enumerate()
        {
            let l = t.alloc(12, PContent::Aggregate(vec![]));
            t.attach(t.root(), i + 1, l);
            let lt = t.alloc(LABEL_TEXT, text(line));
            t.attach(l, 0, lt);
        }
        t
    }

    #[test]
    fn sizes_match_appendix_a_example() {
        // Appendix A, figure 15: the figure-2 tree as one record. Embedded
        // headers are 6 bytes; the standalone header is 10.
        let t = figure2();
        // Text literals: 7 + 21 + 16 bytes of content.
        let texts = 7 + 21 + 16;
        // 6 embedded objects (SPEAKER, 2×LINE, 3 literals) + root header.
        let expect = STANDALONE_HEADER + 6 * EMBEDDED_HEADER + texts;
        assert_eq!(t.record_size(), expect);
    }

    #[test]
    fn proxy_sizes() {
        let mut t = RecordTree::new(5, PContent::Aggregate(vec![]), Rid::invalid());
        let p = t.alloc(LABEL_NONE, PContent::Proxy(Rid::new(9, 1)));
        t.attach(t.root(), 0, p);
        assert_eq!(
            t.record_size(),
            STANDALONE_HEADER + EMBEDDED_HEADER + PROXY_BODY
        );
        assert!(t.node(p).is_proxy());
        assert!(!t.node(p).is_facade());
    }

    #[test]
    fn facade_vs_scaffolding() {
        let t = RecordTree::new(LABEL_NONE, PContent::Aggregate(vec![]), Rid::invalid());
        assert!(t.node(t.root()).is_scaffolding_aggregate());
        assert!(!t.node(t.root()).is_facade());
        let f = figure2();
        assert!(f.node(f.root()).is_facade());
    }

    #[test]
    fn remove_subtree_returns_proxies_and_tombstones() {
        let mut t = figure2();
        let speaker = t.children(t.root())[0];
        let p = t.alloc(LABEL_NONE, PContent::Proxy(Rid::new(3, 3)));
        t.attach(speaker, 1, p);
        let before = t.record_size();
        let proxies = t.remove_subtree(speaker);
        assert_eq!(proxies, vec![Rid::new(3, 3)]);
        assert!(t.record_size() < before);
        assert_eq!(t.children(t.root()).len(), 2);
        assert_eq!(t.live_count(), 5);
    }

    #[test]
    fn detach_and_attach_reorders() {
        let mut t = figure2();
        let kids: Vec<_> = t.children(t.root()).to_vec();
        t.detach(kids[0]);
        t.attach(t.root(), 5, kids[0]); // clamped to the end
        let now: Vec<_> = t.children(t.root()).to_vec();
        assert_eq!(now, vec![kids[1], kids[2], kids[0]]);
    }

    #[test]
    fn pre_order_matches_structure() {
        let t = figure2();
        let order = t.pre_order(t.root());
        assert_eq!(order.len(), 7);
        assert_eq!(order[0], t.root());
        // SPEAKER before its text, before the LINEs.
        assert_eq!(t.node(order[1]).label, 11);
        assert_eq!(t.node(order[2]).label, LABEL_TEXT);
        assert_eq!(t.node(order[3]).label, 12);
    }

    #[test]
    fn transplant_moves_subtrees_between_trees() {
        let mut src = figure2();
        let mut dst = RecordTree::new(LABEL_NONE, PContent::Aggregate(vec![]), Rid::invalid());
        let speaker = src.children(src.root())[0];
        let speaker_size = src.embedded_size(speaker);
        let moved = src.transplant(speaker, &mut dst);
        dst.attach(dst.root(), 0, moved);
        assert_eq!(dst.embedded_size(moved), speaker_size);
        assert_eq!(src.children(src.root()).len(), 2);
        assert_eq!(dst.node(moved).label, 11);
        assert_eq!(dst.children(moved).len(), 1);
    }

    #[test]
    fn literal_body_lengths() {
        assert_eq!(literal_body_len(&LiteralValue::String("abc".into())), 3);
        assert_eq!(literal_body_len(&LiteralValue::I8(0)), 1);
        assert_eq!(literal_body_len(&LiteralValue::I16(0)), 2);
        assert_eq!(literal_body_len(&LiteralValue::I32(0)), 4);
        assert_eq!(literal_body_len(&LiteralValue::I64(0)), 8);
        assert_eq!(literal_body_len(&LiteralValue::F64(0.0)), 8);
        assert_eq!(literal_body_len(&LiteralValue::Uri("http://x".into())), 8);
    }
}
