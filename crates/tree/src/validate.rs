//! Physical-tree invariant checking and statistics.
//!
//! The test suite (including the property-based tests) validates every
//! stored tree against the invariants the paper's design implies:
//!
//! 1. every record parses under its page's node-type table;
//! 2. every record's size is within the net page capacity;
//! 3. scaffolding aggregates appear only as record roots (they are created
//!    exclusively as partition-group helpers, and special case 2 plus the
//!    merge path preserve this);
//! 4. every non-root record's standalone parent pointer names the record
//!    whose proxy refers to it;
//! 5. the proxy graph is acyclic (each record is reached exactly once);
//! 6. scaffolding aggregates and continuation placeholders carry no
//!    logical label, and a proxy's label is either
//!    [`natix_xml::LABEL_NONE`] ("must read") or an exact *digest* of the
//!    referenced record's root: the root is a facade carrying that label.
//!
//! [`physical_stats`] gathers the figures the evaluation section talks
//! about: record counts, scaffolding overhead, on-disk bytes (Figure 14)
//! and the depth of the multiway record tree (the paper explains Query 3's
//! result by "the physical record tree has only a depth of 2").

use std::collections::HashSet;

use natix_storage::Rid;
use natix_xml::LabelId;

use crate::error::{TreeError, TreeResult};
use crate::model::PContent;
use crate::store::TreeStore;

/// Aggregate statistics of one stored tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhysicalStats {
    /// Number of records.
    pub records: usize,
    /// Facade nodes (logical nodes).
    pub facade_nodes: usize,
    /// Scaffolding helper aggregates.
    pub scaffolding_aggregates: usize,
    /// Proxy nodes.
    pub proxies: usize,
    /// Sum of serialised record sizes (excluding page/slot overhead).
    pub record_bytes: usize,
    /// Depth of the multiway tree of records (1 = everything in one
    /// record).
    pub record_depth: usize,
    /// Distinct pages the tree's records live on.
    pub pages: usize,
}

/// Validates all invariants of the tree rooted at record `root` and
/// returns its statistics. Iterative over an explicit work list: the
/// record tree can be deep (chained group records), so call-stack
/// recursion would overflow before the proxy graph ran out.
pub fn check_tree(store: &TreeStore, root: Rid) -> TreeResult<PhysicalStats> {
    let mut stats = PhysicalStats::default();
    let mut seen: HashSet<Rid> = HashSet::new();
    let mut pages: HashSet<u32> = HashSet::new();
    let mut work: Vec<(Rid, Rid, usize, LabelId)> =
        vec![(root, Rid::invalid(), 1, natix_xml::LABEL_NONE)];
    while let Some((rid, expected_parent, depth, digest)) = work.pop() {
        if !seen.insert(rid) {
            return Err(TreeError::Invariant(format!(
                "record {rid} reached twice: proxy graph is not a tree"
            )));
        }
        let tree = store.load(rid)?; // invariant 1: parses
        if tree.parent_rid != expected_parent {
            return Err(TreeError::Invariant(format!(
                "record {rid}: standalone parent {} but reached from {expected_parent}",
                tree.parent_rid
            )));
        }
        if digest != natix_xml::LABEL_NONE {
            // Invariant 6: a proxy digest must be exact — readers prune
            // on it without loading this record.
            let root_node = tree.node(tree.root());
            if !root_node.is_facade() || root_node.label != digest {
                return Err(TreeError::Invariant(format!(
                    "record {rid}: proxy digest {digest} does not match root \
                     (facade: {}, label {})",
                    root_node.is_facade(),
                    root_node.label
                )));
            }
        }
        let size = tree.record_size();
        if size > store.net_capacity() {
            return Err(TreeError::Invariant(format!(
                "record {rid}: {size} bytes exceeds net capacity {}",
                store.net_capacity()
            )));
        }
        stats.records += 1;
        stats.record_bytes += size;
        stats.record_depth = stats.record_depth.max(depth);
        pages.insert(rid.page);
        let mut continuations = 0usize;
        for id in tree.pre_order(tree.root()) {
            let n = tree.node(id);
            match &n.content {
                PContent::Proxy(target) => {
                    stats.proxies += 1;
                    work.push((*target, rid, depth + 1, n.label));
                }
                PContent::Continuation(target) => {
                    // Depth-aware packing invariants: one continuation per
                    // record, carrying no logical label, reached exactly
                    // once like any other child record.
                    if n.label != natix_xml::LABEL_NONE {
                        return Err(TreeError::Invariant(format!(
                            "record {rid}: continuation node {id} carries label {}",
                            n.label
                        )));
                    }
                    continuations += 1;
                    if continuations > 1 {
                        return Err(TreeError::Invariant(format!(
                            "record {rid}: more than one continuation placeholder"
                        )));
                    }
                    stats.proxies += 1;
                    work.push((*target, rid, depth + 1, natix_xml::LABEL_NONE));
                }
                PContent::Prefix(_) => {
                    // Prefix entries copy a labelled ancestor and chain
                    // down from the record root (each one's parent is a
                    // prefix, or it is the root itself).
                    if n.label == natix_xml::LABEL_NONE {
                        return Err(TreeError::Invariant(format!(
                            "record {rid}: prefix entry {id} carries no label"
                        )));
                    }
                    match n.parent {
                        None => {}
                        Some(p) if tree.node(p).is_prefix() => {}
                        Some(_) => {
                            return Err(TreeError::Invariant(format!(
                                "record {rid}: prefix entry {id} is not chained from the root"
                            )))
                        }
                    }
                    stats.scaffolding_aggregates += 1;
                }
                PContent::Aggregate(_) if n.is_scaffolding_aggregate() => {
                    if id != tree.root() {
                        return Err(TreeError::Invariant(format!(
                            "record {rid}: scaffolding aggregate {id} is not the record root"
                        )));
                    }
                    stats.scaffolding_aggregates += 1;
                }
                _ => stats.facade_nodes += 1,
            }
        }
    }
    stats.pages = pages.len();
    Ok(stats)
}

/// Statistics without the invariant failures (tolerates e.g. merged or
/// exotic configurations during benchmarking) — counts only.
pub fn physical_stats(store: &TreeStore, root: Rid) -> TreeResult<PhysicalStats> {
    check_tree(store, root)
}
