//! Per-page node-type tables (Appendix A).
//!
//! > Since on each page typically only a limited set of (content type,
//! > logical type) combinations occur, this information is stored in the
//! > object header as 2 byte offset into a node type table which is
//! > maintained on each page.
//!
//! The table is stored as an ordinary record in **slot 0** of every tree
//! page, so growth reuses the slotted-page mechanics. Entries are
//! append-only (indices embedded in record bytes must stay valid); a page's
//! table is bounded by the DTD alphabet, which is tiny in practice.
//!
//! Consequence, also stated in the paper: record bytes are
//! location-independent *within* a page ("records can be moved around on
//! the page without modification"), but moving a record to another page
//! re-interns its type indices ([`translate`]).

use natix_xml::LabelId;

use crate::error::{TreeError, TreeResult};

/// Content-type tag of a physical node, the first component of a type-table
/// entry. Literal types follow Appendix A ("string literals, 8/16/32/64-Bit
/// integer literals, float, or URI").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ContentKind {
    Aggregate = 0,
    Proxy = 1,
    LitString = 2,
    LitI8 = 3,
    LitI16 = 4,
    LitI32 = 5,
    LitI64 = 6,
    LitF64 = 7,
    LitUri = 8,
    /// Path-prefix entry (depth-aware packing): a labelled scaffolding
    /// copy of an open ancestor element inside a continuation group.
    Prefix = 9,
    /// Continuation placeholder (depth-aware packing): RID of the
    /// continuation-group record that carries a spilled record's late
    /// children and deferred closes.
    Continuation = 10,
}

impl ContentKind {
    /// Decodes a kind byte.
    pub fn from_u8(v: u8) -> Option<ContentKind> {
        Some(match v {
            0 => ContentKind::Aggregate,
            1 => ContentKind::Proxy,
            2 => ContentKind::LitString,
            3 => ContentKind::LitI8,
            4 => ContentKind::LitI16,
            5 => ContentKind::LitI32,
            6 => ContentKind::LitI64,
            7 => ContentKind::LitF64,
            8 => ContentKind::LitUri,
            9 => ContentKind::Prefix,
            10 => ContentKind::Continuation,
            _ => return None,
        })
    }
}

/// Bytes per serialised table entry: kind (1) + label (2).
pub const ENTRY_BYTES: usize = 3;

/// A page's node-type table: an append-only list of
/// `(content kind, logical label)` pairs indexed by the 2-byte type indices
/// in object headers.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    entries: Vec<(ContentKind, LabelId)>,
}

impl TypeTable {
    /// An empty table (fresh page).
    pub fn new() -> TypeTable {
        TypeTable::default()
    }

    /// Parses the slot-0 record payload: `count: u16` then `count` entries.
    pub fn decode(bytes: &[u8]) -> TreeResult<TypeTable> {
        let corrupt = |m: &str| TreeError::Invariant(format!("type table: {m}"));
        if bytes.len() < 2 {
            return Err(corrupt("missing count"));
        }
        let count = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        if bytes.len() < 2 + count * ENTRY_BYTES {
            return Err(corrupt("truncated"));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = 2 + i * ENTRY_BYTES;
            let kind = ContentKind::from_u8(bytes[at])
                .ok_or_else(|| corrupt(&format!("bad kind {}", bytes[at])))?;
            let label = u16::from_le_bytes([bytes[at + 1], bytes[at + 2]]);
            entries.push((kind, label));
        }
        Ok(TypeTable { entries })
    }

    /// Serialises the table for the slot-0 record.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.entries.len() * ENTRY_BYTES);
        out.extend_from_slice(&(self.entries.len() as u16).to_le_bytes());
        for (kind, label) in &self.entries {
            out.push(*kind as u8);
            out.extend_from_slice(&label.to_le_bytes());
        }
        out
    }

    /// Serialised byte length.
    pub fn encoded_len(&self) -> usize {
        2 + self.entries.len() * ENTRY_BYTES
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of an existing entry.
    pub fn find(&self, kind: ContentKind, label: LabelId) -> Option<u16> {
        self.entries
            .iter()
            .position(|&e| e == (kind, label))
            .map(|i| i as u16)
    }

    /// Index of an entry, appending it if new. Returns `(index, grew)`.
    pub fn intern(&mut self, kind: ContentKind, label: LabelId) -> (u16, bool) {
        if let Some(i) = self.find(kind, label) {
            return (i, false);
        }
        assert!(
            self.entries.len() < u16::MAX as usize,
            "type table exhausted"
        );
        self.entries.push((kind, label));
        ((self.entries.len() - 1) as u16, true)
    }

    /// Resolves a type index from an object header.
    pub fn get(&self, index: u16) -> TreeResult<(ContentKind, LabelId)> {
        self.entries
            .get(index as usize)
            .copied()
            .ok_or_else(|| TreeError::Invariant(format!("type index {index} out of range")))
    }

    /// How many of `types` are missing from this table — the byte cost of
    /// interning them is `missing * ENTRY_BYTES`.
    pub fn missing_count(&self, types: impl IntoIterator<Item = (ContentKind, LabelId)>) -> usize {
        let mut missing: Vec<(ContentKind, LabelId)> = Vec::new();
        for t in types {
            if self.find(t.0, t.1).is_none() && !missing.contains(&t) {
                missing.push(t);
            }
        }
        missing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_get() {
        let mut t = TypeTable::new();
        let (a, grew) = t.intern(ContentKind::Aggregate, 7);
        assert!(grew);
        let (b, grew2) = t.intern(ContentKind::Aggregate, 7);
        assert!(!grew2);
        assert_eq!(a, b);
        let (c, _) = t.intern(ContentKind::LitString, 1);
        assert_ne!(a, c);
        assert_eq!(t.get(a).unwrap(), (ContentKind::Aggregate, 7));
        assert_eq!(t.get(c).unwrap(), (ContentKind::LitString, 1));
        assert!(t.get(99).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = TypeTable::new();
        t.intern(ContentKind::Aggregate, 5);
        t.intern(ContentKind::Proxy, 0);
        t.intern(ContentKind::LitF64, 1);
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        let t2 = TypeTable::decode(&bytes).unwrap();
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.get(1).unwrap(), (ContentKind::Proxy, 0));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TypeTable::decode(&[]).is_err());
        assert!(
            TypeTable::decode(&[5, 0, 1]).is_err(),
            "count says 5, data truncated"
        );
        assert!(
            TypeTable::decode(&[1, 0, 99, 0, 0]).is_err(),
            "bad kind byte"
        );
    }

    #[test]
    fn missing_count_dedupes() {
        let mut t = TypeTable::new();
        t.intern(ContentKind::Aggregate, 5);
        let missing = t.missing_count(vec![
            (ContentKind::Aggregate, 5),
            (ContentKind::LitString, 1),
            (ContentKind::LitString, 1),
            (ContentKind::Proxy, 0),
        ]);
        assert_eq!(missing, 2);
    }

    #[test]
    fn all_kind_bytes_roundtrip() {
        for v in 0..=10u8 {
            let k = ContentKind::from_u8(v).unwrap();
            assert_eq!(k as u8, v);
        }
        assert!(ContentKind::from_u8(11).is_none());
    }
}
