//! Tree-storage-manager configuration.
//!
//! §3.2.2 introduces two tuning knobs besides the split matrix:
//!
//! * the **split target** — "the desired ratio between the sizes of L and
//!   R is a configuration parameter (the split target), which can, for
//!   example, be set to achieve very small R partitions to prevent
//!   degeneration of the tree if insertion is mainly on the right side";
//! * the **split tolerance** — "states how much the algorithm may deviate
//!   from this ratio. Essentially, the split tolerance specifies a minimum
//!   size for the subtree of d. Subtrees smaller than this value are not
//!   split, but completely moved into one partition to prevent
//!   fragmentation."
//!
//! The paper's experiments use target = ½ and tolerance = page size/10
//! (§4.2); those are the defaults here.

use natix_storage::slotted::SLOT_ENTRY_SIZE;
use natix_storage::PAGE_HEADER_SIZE;

/// Configuration of a [`crate::store::TreeStore`].
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Desired fraction of a split record's bytes that go to the left
    /// partition. The paper's experiments use ½.
    pub split_target: f64,
    /// Minimum subtree size (fraction of the page) below which the
    /// separator search stops descending. The paper's experiments use ⅒.
    pub split_tolerance: f64,
    /// Bytes reserved on each page for node-type-table growth when
    /// computing the *net page capacity* a record may reach before it must
    /// be split.
    pub type_table_reserve: usize,
    /// Enables the record-merge extension: after deletions, records whose
    /// fill drops below `merge_threshold` try to absorb proxy children
    /// whose records fit inline (§1: clustered nodes "can become records of
    /// their own or again be merged into clusters").
    pub merge_enabled: bool,
    /// Fill fraction (of net capacity) under which merging is attempted.
    pub merge_threshold: f64,
    /// Fill fraction a merge result may not exceed (hysteresis so a merge
    /// is not immediately undone by the next insert).
    pub merge_fill_max: f64,
    /// Depth-aware packing (bulkloader): when a deeply nested document
    /// spills its open spine across records, cut multi-level pieces with
    /// a **single** continuation placeholder each, and serve late
    /// children of all of a piece's levels from one continuation-group
    /// record whose separator-style prefix chain mirrors the spilled path
    /// (6 bytes per level instead of 20). Keeps the record tree's height
    /// tracking the split-matrix fanout rather than the document depth.
    /// `false` cuts one level per piece instead — the ablation baseline
    /// whose record-tree height tracks the document depth — kept for A/B
    /// benchmarking.
    pub depth_packing: bool,
    /// Proxy label digests: store the child record root's label on the
    /// proxy node referencing it (interned through the page's node-type
    /// table, so it costs no record bytes). Summary-seeded descent can
    /// then prune a non-matching child without reading its page. A
    /// [`natix_xml::LABEL_NONE`] proxy label means "must read" — the
    /// digest-less pre-format-2 encoding and scaffolding-rooted children
    /// decode that way. `false` writes every proxy digest-less — the
    /// ablation baseline.
    pub proxy_digests: bool,
    /// Lazy packed-cluster normalization: when a structural edit hits a
    /// depth-aware-packed record whose merged cluster provably fits back
    /// into one record (no split, so no separator reaches the parent),
    /// normalize only that cluster and leave packed *ancestor* records
    /// untouched. `false` always normalizes the full packed ancestor
    /// chain top-down — the pre-optimisation behaviour, kept for A/B
    /// benchmarking of deep-corpus edits.
    pub lazy_normalize: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            split_target: 0.5,
            split_tolerance: 0.1,
            type_table_reserve: 96,
            merge_enabled: false,
            merge_threshold: 0.25,
            merge_fill_max: 0.8,
            depth_packing: true,
            proxy_digests: true,
            lazy_normalize: true,
        }
    }
}

impl TreeConfig {
    /// The paper's §4.2 configuration (target ½, tolerance ⅒, no merging).
    pub fn paper() -> TreeConfig {
        TreeConfig::default()
    }

    /// Net page capacity: the largest record the tree store will keep
    /// whole. Page header, two slot entries (type table + record) and the
    /// type-table reserve are subtracted from the page size.
    pub fn net_capacity(&self, page_size: usize) -> usize {
        page_size - PAGE_HEADER_SIZE - 2 * SLOT_ENTRY_SIZE - self.type_table_reserve
    }

    /// Split tolerance in bytes for a given page size.
    pub fn tolerance_bytes(&self, page_size: usize) -> usize {
        ((page_size as f64) * self.split_tolerance) as usize
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.05..=0.95).contains(&self.split_target) {
            return Err(format!(
                "split_target {} outside [0.05, 0.95]",
                self.split_target
            ));
        }
        if !(0.0..=0.5).contains(&self.split_tolerance) {
            return Err(format!(
                "split_tolerance {} outside [0, 0.5]",
                self.split_tolerance
            ));
        }
        if self.merge_threshold >= self.merge_fill_max {
            return Err("merge_threshold must be below merge_fill_max".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = TreeConfig::paper();
        assert_eq!(c.split_target, 0.5);
        assert_eq!(c.split_tolerance, 0.1);
        assert_eq!(c.tolerance_bytes(2048), 204);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn net_capacity_leaves_room() {
        let c = TreeConfig::default();
        let net = c.net_capacity(2048);
        assert!(net < 2048);
        assert!(net > 1800, "overhead should be modest: {net}");
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let c = TreeConfig {
            split_target: 0.01,
            ..TreeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TreeConfig {
            split_tolerance: 0.9,
            ..TreeConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TreeConfig {
            merge_threshold: 0.9,
            ..TreeConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
