//! # natix-tree — the NATIX tree storage manager
//!
//! The primary contribution of *Efficient Storage of XML Data* (Kanne &
//! Moerkotte, ICDE 2000): a storage manager that maps logical XML trees
//! onto physical records, dynamically maintaining clusters of connected
//! tree nodes in records smaller than a page.
//!
//! > In contrast to traditional large object (LOB) managers, we do not
//! > split at arbitrary byte positions but take the semantics of the
//! > underlying tree structure of XML documents into account. Our
//! > parameterizable split algorithm dynamically maintains physical
//! > records of size smaller than a page which contain sets of connected
//! > tree nodes.
//!
//! Module map:
//!
//! * [`model`] — physical nodes (aggregate/literal/proxy; facade vs
//!   scaffolding; standalone vs embedded) and in-memory record trees;
//! * [`record`] — the Appendix-A byte format (10-byte standalone headers,
//!   6-byte embedded headers, per-page type tables — see [`typetable`]);
//! * [`matrix`] — the split matrix s_ij ∈ {0, ∞, other} (§3.3);
//! * [`config`] — split target, split tolerance, merge knobs;
//! * [`split`] — the tree-structured separator split (§3.2.2), pure and
//!   testable in isolation;
//! * [`store`] — the tree growth procedure (figure 5): insertion-location
//!   resolution, record moves, splits with recursive separator insertion,
//!   deletion with cascades, the merge extension, relocation events;
//! * [`bulkload`] — the streaming bottom-up bulkloader for whole-document
//!   loads (the paper's §4.3 append workload without per-node
//!   read-modify-write), including depth-aware packing: deeply nested
//!   documents spill their open spine into multi-level pieces whose late
//!   children live in separator-style continuation groups (path-prefix
//!   entries + a single continuation placeholder per piece), keeping the
//!   record tree's height tracking fanout instead of document depth;
//! * [`cursor`] — DOM-style navigation that transparently crosses records;
//! * [`reconstruct`] — proxy substitution back into logical documents,
//!   streaming traversal and XML serialisation;
//! * [`validate`] — invariant checks and the physical statistics used by
//!   the evaluation harness;
//! * [`version`] — record-level versioning: epoch-pinned read snapshots
//!   over copy-on-write record pre-images, so readers overlap structural
//!   edits and bulkloads of the same tree.

pub mod bulkload;
pub mod config;
pub mod cursor;
pub mod error;
pub mod matrix;
pub mod model;
pub mod reconstruct;
pub mod record;
pub mod split;
pub mod store;
pub mod typetable;
pub mod validate;
pub mod version;

pub use bulkload::{bulkload_document, BulkLoader, BulkStats};
pub use config::TreeConfig;
pub use cursor::Cursor;
pub use error::{TreeError, TreeResult};
pub use matrix::{SplitBehaviour, SplitMatrix};
pub use model::{NodePtr, PContent, PNode, PNodeId, RecordTree};
pub use reconstruct::{reconstruct_document, serialize_xml, subtree_text, traverse, VisitEvent};
pub use split::{find_separator, plan_split, SplitPlan};
pub use store::{
    AppendCursor, InsertPos, NewNode, NodeInfo, OpResult, RecordEntry, Relocation, TreeStore,
};
pub use validate::{check_tree, PhysicalStats};
pub use version::{ReadPin, VersionStore, WriteOp};
