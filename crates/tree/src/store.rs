//! The tree storage manager (§3).
//!
//! [`TreeStore`] maps logical data trees onto physical records, running the
//! **tree growth procedure** of figure 5 on every insert:
//!
//! 1. determine the record into which the node has to be inserted (per the
//!    split matrix and the designated siblings' records, §3.2.1/§3.3);
//! 2. if there is not enough space on the page, try to **move** the
//!    record; if the record exceeds the net page capacity, **split** it —
//!    determine the separator, distribute the partitions onto records, and
//!    insert the separator into the parent record, recursively;
//! 3. insert the new node into its designated partition record.
//!
//! All structural changes report **relocation events**: records are
//! rewritten wholesale, so a node's `(rid, pre-order index)` address can
//! change; the document manager keeps its logical-node map current from
//! these events. Standalone parent pointers (Appendix A) are maintained by
//! deferred 8-byte patches collected per operation.

use std::sync::Arc;

use natix_storage::segment::PlacementHint;
use natix_storage::slotted::{SlottedPage, SlottedPageRef, SLOT_ENTRY_SIZE};
use natix_storage::{AccessHint, PageKind, Rid, SegmentId, StorageError, StorageManager};
use natix_xml::{LabelId, LiteralValue, LABEL_NONE};

use crate::config::TreeConfig;
use crate::error::{TreeError, TreeResult};
use crate::matrix::{SplitBehaviour, SplitMatrix};
use crate::model::{NodePtr, PContent, PNodeId, RecordTree};
use crate::record;
use crate::split::{plan_split, ProxyHome};
use crate::typetable::TypeTable;
use crate::version::{ReadPin, VersionStore, WriteOp};

/// Sentinel `orig` marker for the node being inserted: its final address
/// surfaces as the operation's `new_node` instead of a relocation.
const WATCH: NodePtr = NodePtr {
    rid: Rid {
        page: u32::MAX,
        slot: u16::MAX,
    },
    node: u16::MAX,
};

/// A node moved from `old` to `new` (same identity, new address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Relocation {
    pub old: NodePtr,
    pub new: NodePtr,
}

/// Result of a structural operation.
#[derive(Debug, Default)]
pub struct OpResult {
    /// Facade nodes whose address changed, in application order.
    pub relocations: Vec<Relocation>,
    /// Address of the node the operation created (inserts only).
    pub new_node: Option<NodePtr>,
    /// Set when the tree's root record was replaced: `(old, new)`.
    pub root_moved: Option<(Rid, Rid)>,
}

/// Where to insert relative to the parent's *logical* child list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPos {
    /// As the first logical child.
    First,
    /// As the last logical child.
    Last,
    /// At a logical child index (clamped to the end).
    At(usize),
}

/// Payload of a new facade node.
#[derive(Debug, Clone)]
pub enum NewNode {
    /// An inner (element) node.
    Element,
    /// A leaf literal.
    Literal(LiteralValue),
}

impl NewNode {
    fn into_content(self) -> PContent {
        match self {
            NewNode::Element => PContent::Aggregate(Vec::new()),
            NewNode::Literal(v) => PContent::Literal(v),
        }
    }
}

/// Basic information about a stored node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    pub label: LabelId,
    /// `None` for aggregates, the value for literals.
    pub value: Option<LiteralValue>,
    /// True for facade nodes (should always hold for API-returned nodes).
    pub facade: bool,
    /// Number of *physical* children (aggregates only).
    pub physical_children: usize,
}

/// One entry of a record-granular subtree scan
/// ([`TreeStore::scan_record_subtree`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordEntry {
    /// A facade node inside the scanned record.
    Node {
        ptr: NodePtr,
        label: LabelId,
        /// True for literals (text, attributes, comments, PIs); false for
        /// element aggregates.
        literal: bool,
    },
    /// A proxy (or continuation placeholder) to a child record, at its
    /// document-order position. The caller scans the child record —
    /// starting at the carried node — as a separate unit of work. For
    /// ordinary proxies the node is the record root; for continuation
    /// groups it is the prefix entry matching the scan's start level, so
    /// late children of levels *outside* the scanned subtree stay out.
    ChildRecord {
        ptr: NodePtr,
        /// The proxy's label digest: the child record root's label, or
        /// [`LABEL_NONE`] when unknown (continuation groups, scaffolding-
        /// rooted children, digest-less pre-format-2 records).
        label: LabelId,
    },
}

/// Per-operation bookkeeping.
#[derive(Default)]
struct OpCtx {
    relocations: Vec<Relocation>,
    new_node: Option<NodePtr>,
    root_moved: Option<(Rid, Rid)>,
    /// Deferred standalone-parent patches: `(child record, new parent)`,
    /// applied in order (later entries win).
    parent_patches: Vec<(Rid, Rid)>,
    /// Records deleted during this operation. Patches targeting them are
    /// stale and skipped — e.g. a record absorbed by a merge after its
    /// parent pointer was queued for patching. Re-creating a RID (slot
    /// reuse within the op) clears the mark.
    deleted: std::collections::HashSet<Rid>,
}

impl OpCtx {
    fn finish(self) -> OpResult {
        OpResult {
            relocations: self.relocations,
            new_node: self.new_node,
            root_moved: self.root_moved,
        }
    }

    /// Records a root-record move. One operation can move the root more
    /// than once (a root split whose separator splice re-splits the root;
    /// packed-cluster normalization re-storing a whole chain): the moves
    /// compose, and the caller of the operation must see `(first old,
    /// final new)` — overwriting with the latest pair would lose the RID
    /// the document manager knows the root by.
    fn note_root_move(&mut self, old: Rid, new: Rid) {
        self.root_moved = match self.root_moved.take() {
            Some((first, _)) => Some((first, new)),
            None => Some((old, new)),
        };
    }
}

/// The tree storage manager.
pub struct TreeStore {
    sm: Arc<StorageManager>,
    segment: SegmentId,
    config: TreeConfig,
    matrix: parking_lot::RwLock<SplitMatrix>,
    /// Record-version/epoch state (see [`crate::version`]). Shared across
    /// every tree store of one repository — records are addressed
    /// globally, so a reader of the main store must see versions
    /// deposited through an ingestion store and vice versa.
    versions: Arc<VersionStore>,
}

impl TreeStore {
    /// Creates a tree store over `segment` of an existing storage manager,
    /// with its own private version store. Fails on an invalid
    /// [`TreeConfig`].
    pub fn new(
        sm: Arc<StorageManager>,
        segment: SegmentId,
        config: TreeConfig,
        matrix: SplitMatrix,
    ) -> TreeResult<TreeStore> {
        TreeStore::with_versions(sm, segment, config, matrix, Arc::new(VersionStore::new()))
    }

    /// Creates a tree store sharing `versions` with other stores of the
    /// same storage manager (the repository wires all of its stores —
    /// documents, catalog, ingestion pool — to one version store).
    pub fn with_versions(
        sm: Arc<StorageManager>,
        segment: SegmentId,
        config: TreeConfig,
        matrix: SplitMatrix,
        versions: Arc<VersionStore>,
    ) -> TreeResult<TreeStore> {
        config
            .validate()
            .map_err(|m| TreeError::Invariant(format!("invalid tree configuration: {m}")))?;
        Ok(TreeStore {
            sm,
            segment,
            config,
            matrix: parking_lot::RwLock::with_rank(&parking_lot::rank::SPLIT_MATRIX, matrix),
            versions,
        })
    }

    /// The shared record-version store.
    pub fn versions(&self) -> &Arc<VersionStore> {
        &self.versions
    }

    /// Pins the current epoch as a read snapshot for this thread: every
    /// [`load`](Self::load) until the pin drops reads record images as of
    /// the pinned epoch, even while writers rewrite, split or delete the
    /// same records.
    pub fn begin_read(&self) -> ReadPin<'_> {
        self.versions.begin_read()
    }

    /// Joins the snapshot `epoch` from a worker thread (the coordinator's
    /// own pin must outlive the adoption).
    pub fn adopt_read(&self, epoch: u64) -> ReadPin<'_> {
        self.versions.adopt_read(epoch)
    }

    /// The snapshot epoch pinned by the current thread, if any.
    pub fn ambient_read_epoch(&self) -> Option<u64> {
        self.versions.ambient_read_epoch()
    }

    /// Starts (or joins) a write operation for this thread; superseded
    /// record images deposited during the operation are published when
    /// the outermost guard drops. Public mutating operations take this
    /// internally — explicit use is only needed by multi-call writers
    /// like the bulkloader.
    pub fn begin_write(&self) -> WriteOp<'_> {
        self.versions.begin_write()
    }

    /// The underlying storage manager.
    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.sm
    }

    /// Best-effort batched read-ahead of record pages (see
    /// [`StorageManager::prefetch`]). Pages enter the pool at scan
    /// priority; already-resident or in-flight pages are skipped. This is
    /// an I/O region: callers must not hold any non-I/O-tolerant lock
    /// across it. Returns the number of pages actually read.
    pub fn prefetch_pages(&self, pages: &[natix_storage::PageId]) -> TreeResult<usize> {
        Ok(self.sm.prefetch(pages)?)
    }

    /// The segment records live in.
    pub fn segment(&self) -> SegmentId {
        self.segment
    }

    /// The configuration.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Page size of the repository.
    pub fn page_size(&self) -> usize {
        self.sm.page_size()
    }

    /// Net page capacity — the split threshold for records.
    pub fn net_capacity(&self) -> usize {
        self.config.net_capacity(self.page_size())
    }

    /// Digest label for a proxy referencing `child`: the child record
    /// root's label when that root is a facade (readers can then prune
    /// the child without loading its page), [`LABEL_NONE`] ("must read")
    /// for scaffolding-rooted children or with digests disabled.
    pub(crate) fn proxy_digest(&self, child: &RecordTree) -> LabelId {
        let root = child.node(child.root());
        if self.config.proxy_digests && root.is_facade() {
            root.label
        } else {
            LABEL_NONE
        }
    }

    /// Read access to the split matrix.
    pub fn matrix(&self) -> parking_lot::RwLockReadGuard<'_, SplitMatrix> {
        self.matrix.read()
    }

    /// Replaces the split matrix (affects future operations only).
    pub fn set_matrix(&self, matrix: SplitMatrix) {
        *self.matrix.write() = matrix;
    }

    /// Sets a single matrix element.
    pub fn set_matrix_entry(&self, parent: LabelId, child: LabelId, value: SplitBehaviour) {
        self.matrix.write().set(parent, child, value);
    }

    // ==================================================================
    // Record I/O.
    // ==================================================================

    /// Loads and parses the record at `rid`.
    ///
    /// With a read snapshot pinned on this thread
    /// ([`begin_read`](Self::begin_read)), the load is *versioned*: a
    /// record superseded since the pinned epoch is served from the version
    /// store instead of the page, so a multi-record walk observes the
    /// record graph as of one epoch even while writers rewrite it.
    /// Without a pin (and on every writer's own loads) the on-page image
    /// is authoritative.
    pub fn load(&self, rid: Rid) -> TreeResult<RecordTree> {
        self.load_hinted(rid, AccessHint::Normal)
    }

    /// [`load`](Self::load) under a buffer-replacement hint: record-queue
    /// scans pass [`AccessHint::Scan`] so their one-shot pages enter the
    /// pool at cold priority instead of displacing the point-access
    /// working set.
    pub fn load_hinted(&self, rid: Rid, hint: AccessHint) -> TreeResult<RecordTree> {
        let Some(epoch) = self.versions.ambient_read_epoch() else {
            return self.load_current_hinted(rid, hint);
        };
        if let Some(v) = self.versions.lookup(rid, epoch) {
            return Ok((*v).clone());
        }
        let current = self.load_current_hinted(rid, hint);
        // A writer may have superseded `rid` between the lookup above and
        // the page read; the deposit lands in the version store *before*
        // the page bytes change (see `crate::version`), so a second
        // lookup catches every such race — including a page read that
        // failed because the slot was deleted underneath us.
        if let Some(v) = self.versions.lookup(rid, epoch) {
            return Ok((*v).clone());
        }
        current
    }

    /// Loads the on-page image of the record at `rid` (no versioning).
    fn load_current(&self, rid: Rid) -> TreeResult<RecordTree> {
        self.load_current_hinted(rid, AccessHint::Normal)
    }

    fn load_current_hinted(&self, rid: Rid, hint: AccessHint) -> TreeResult<RecordTree> {
        let pin = self.sm.pin_hinted(rid.page, hint)?;
        let buf = pin.read();
        let sp = SlottedPageRef::open(&buf)?;
        let table = match sp.get(0) {
            Some(b) => TypeTable::decode(b)?,
            None => TypeTable::new(),
        };
        let bytes = sp
            .get(rid.slot)
            .ok_or(TreeError::Storage(StorageError::RecordNotFound(rid)))?;
        record::deserialize(bytes, &table, rid)
    }

    /// Deposits the current image of `rid` into the version store before a
    /// write operation overwrites, patches or deletes it — the
    /// copy-on-write half of record-level versioning. No-op outside a
    /// write operation (standalone stores keep the old single-writer
    /// behaviour) and for slots that hold no record.
    ///
    /// The deposit is *raw*: record bytes plus the page's encoded type
    /// table, two memcpys. The parsed pre-image is produced lazily by the
    /// version store on the first superseded load — an edit with zero
    /// pinned readers behind it never pays a record decode.
    fn deposit_superseded(
        &self,
        rid: Rid,
        bytes: Option<&[u8]>,
        table: &TypeTable,
    ) -> TreeResult<()> {
        let Some(op) = self.versions.ambient_write_op() else {
            return Ok(());
        };
        let Some(bytes) = bytes else {
            return Ok(());
        };
        if self.versions.created_by(op, rid) {
            // Created by this very operation (bulkloaded records being
            // parent-patched, recursively re-split partitions): no reader
            // can reach it, so skip the pre-image copy entirely.
            return Ok(());
        }
        self.versions
            .supersede_raw(op, rid, bytes.to_vec(), table.encode());
        Ok(())
    }

    /// Rewrites the record at `rid` in place. Fails with `PageFull` when
    /// the page cannot absorb the growth (type table included); the caller
    /// then moves or splits.
    fn write_at(&self, rid: Rid, tree: &RecordTree, ctx: &mut OpCtx) -> TreeResult<()> {
        let pin = self.sm.pin(rid.page)?;
        let mut buf = pin.write();
        let mut sp = SlottedPage::open(&mut buf)?;
        let had_tt = sp.is_live(0);
        let mut table = match sp.get(0) {
            Some(b) => TypeTable::decode(b)?,
            None => TypeTable::new(),
        };
        let before = table.len();
        let (bytes, mapping) = record::serialize(tree, &mut table);
        // Conservative pre-check so a failed update leaves no half-state:
        // compute the worst-case growth of table + record together.
        let old_len = sp.get(rid.slot).map(|b| b.len()).unwrap_or(0);
        let tt_growth = if had_tt {
            (table.len() - before) * crate::typetable::ENTRY_BYTES
        } else {
            table.encoded_len() + SLOT_ENTRY_SIZE
        };
        let record_growth = bytes.len().saturating_sub(old_len);
        if tt_growth + record_growth > sp.free_total() {
            return Err(TreeError::Storage(StorageError::PageFull {
                needed: tt_growth + record_growth,
                free: sp.free_total(),
            }));
        }
        // Copy-on-write: deposit the record's pre-image before any page
        // byte changes (the type-table update below may already compact
        // the page). Type-table growth is append-only, so decoding the old
        // bytes with the grown table is exact.
        self.deposit_superseded(rid, sp.get(rid.slot), &table)?;
        if !had_tt {
            sp.insert_at(0, &table.encode())?;
        } else if table.len() > before {
            sp.update(0, &table.encode())?;
        }
        sp.update(rid.slot, &bytes)?;
        let free = sp.free_total();
        drop(buf);
        self.sm.note_free_space(self.segment, rid.page, free);
        self.emit_relocations(rid, &mapping, tree, ctx);
        Ok(())
    }

    /// Writes `tree` as a new record, choosing a page (hint first, then
    /// best fit, then a fresh page). Fails with `RecordTooLarge` when even
    /// a fresh page cannot take it.
    fn write_new(
        &self,
        tree: &RecordTree,
        hint: PlacementHint,
        ctx: &mut OpCtx,
    ) -> TreeResult<Rid> {
        let len = tree.record_size();
        let types = record::collect_types(tree);
        // Worst case: every type is new and the page has no table yet.
        let worst = len
            + SLOT_ENTRY_SIZE
            + 2
            + types.len() * crate::typetable::ENTRY_BYTES
            + SLOT_ENTRY_SIZE;
        // Placement policy: with a locality hint, only pages *near* the
        // hint are considered (paper §4.2: related records on the same
        // page "if possible") — a global best-fit would scatter a growing
        // document over cold pages of older documents and destroy exactly
        // the clustering the tree store exists to maintain. Without a
        // hint, best fit bounds fragmentation.
        let mut tried: Option<u32> = None;
        for _ in 0..2 {
            let candidate = match (hint, tried) {
                (PlacementHint::NearPage(h), None) => {
                    self.sm
                        .find_page_with_space_near(self.segment, worst, h, 16)
                }
                (PlacementHint::NearPage(_), Some(_)) => None,
                (PlacementHint::Anywhere, None) => {
                    self.sm.find_page_with_space(self.segment, worst, hint)
                }
                (PlacementHint::Anywhere, Some(t)) => {
                    self.sm
                        .find_page_with_space_excluding(self.segment, worst, hint, t)
                }
            };
            let Some(page) = candidate else { break };
            if let Some(rid) = self.try_write_on_page(page, tree, ctx, AccessHint::Normal)? {
                return Ok(rid);
            }
            tried = Some(page);
        }
        let page = self.sm.allocate_page(self.segment, PageKind::Slotted)?;
        match self.try_write_on_page(page, tree, ctx, AccessHint::Normal)? {
            Some(rid) => Ok(rid),
            None => Err(TreeError::Storage(StorageError::RecordTooLarge {
                len,
                max: self.net_capacity(),
            })),
        }
    }

    /// Attempts to place `tree` on `page`; returns `None` when it does not
    /// fit there.
    fn try_write_on_page(
        &self,
        page: u32,
        tree: &RecordTree,
        ctx: &mut OpCtx,
        hint: AccessHint,
    ) -> TreeResult<Option<Rid>> {
        let pin = self.sm.pin_hinted(page, hint)?;
        let mut buf = pin.write();
        let mut sp = SlottedPage::open(&mut buf)?;
        let had_tt = sp.is_live(0);
        let mut table = match sp.get(0) {
            Some(b) => TypeTable::decode(b)?,
            None => TypeTable::new(),
        };
        let before = table.len();
        let (bytes, mapping) = record::serialize(tree, &mut table);
        let tt_growth = if had_tt {
            (table.len() - before) * crate::typetable::ENTRY_BYTES
        } else {
            table.encoded_len() + SLOT_ENTRY_SIZE
        };
        if tt_growth + bytes.len() > sp.free_for_new_record() {
            return Ok(None);
        }
        if !had_tt {
            sp.insert_at(0, &table.encode())?;
        } else if table.len() > before {
            sp.update(0, &table.encode())?;
        }
        let slot = sp.insert(&bytes)?;
        let rid = Rid::new(page, slot);
        // Slot-reuse quarantine: a slot freed by a *different, still
        // in-flight* operation must not be re-tenanted — the old tenant's
        // pending pre-image and the new record would claim overlapping
        // epoch windows and `(rid, epoch)` lookups would become ambiguous
        // (see `VersionStore::pending_elsewhere`). Back the insert out
        // and report "does not fit here"; the caller falls back to
        // another page or a fresh one.
        if let Some(op) = self.versions.ambient_write_op() {
            if self.versions.pending_elsewhere(rid, op) {
                sp.delete(slot)
                    .map_err(|_| TreeError::Storage(StorageError::RecordNotFound(rid)))?;
                return Ok(None);
            }
            // A record this operation creates has no pre-image: snapshot
            // readers resolve the RID through the previous tenant's
            // deposit (same-operation reuse) or cannot reach it at all.
            self.versions.note_created(op, rid);
        }
        let free = sp.free_total();
        drop(buf);
        self.sm.note_free_space(self.segment, page, free);
        // Slot reuse within one operation: the RID is live again, and any
        // patches queued for its previous tenant must not hit the new one.
        if ctx.deleted.remove(&rid) {
            ctx.parent_patches.retain(|(child, _)| *child != rid);
        }
        self.emit_relocations(rid, &mapping, tree, ctx);
        // Every record referenced by a proxy in this fresh record now has
        // this record as its parent. Registering here (instead of from
        // split plans) keeps the patch order right even when partitions
        // are split recursively.
        for child in tree.proxies_under(tree.root()) {
            ctx.parent_patches.push((child, rid));
        }
        Ok(Some(rid))
    }

    /// Bulk-append fast path (used by [`crate::bulkload`]): writes `tree`
    /// as a new record on the cursor's current fill page, or on a freshly
    /// allocated page when it no longer fits. Unlike [`write_new`] this
    /// never searches the free-space inventory and never touches existing
    /// pages — sequential bulkloads fill pages one at a time, left to
    /// right, with no read-modify-write of earlier pages. Standalone
    /// parent pointers of records referenced by proxies in `tree` are
    /// patched to the new record's RID.
    ///
    /// [`write_new`]: Self::write_new
    pub fn append_record(&self, tree: &RecordTree, cursor: &mut AppendCursor) -> TreeResult<Rid> {
        let _op = self.versions.begin_write();
        let mut ctx = OpCtx::default();
        // Append streams are one-shot writers: their pages enter the
        // buffer pool at scan (cold) priority so a long bulkload does not
        // flush the point-access working set.
        let rid = 'placed: {
            if let Some(page) = cursor.page {
                if let Some(rid) = self.try_write_on_page(page, tree, &mut ctx, AccessHint::Scan)? {
                    break 'placed rid;
                }
            }
            let page =
                self.sm
                    .allocate_page_hinted(self.segment, PageKind::Slotted, AccessHint::Scan)?;
            cursor.page = Some(page);
            match self.try_write_on_page(page, tree, &mut ctx, AccessHint::Scan)? {
                Some(rid) => rid,
                None => {
                    return Err(TreeError::Storage(StorageError::RecordTooLarge {
                        len: tree.record_size(),
                        max: self.net_capacity(),
                    }))
                }
            }
        };
        // try_write_on_page queued a parent patch for every proxy in the
        // fresh record; apply them now (bulkloads flush children before
        // their parent record exists, so every child is patched exactly
        // once, when its parent is written).
        self.apply_patches(&mut ctx)?;
        Ok(rid)
    }

    fn emit_relocations(
        &self,
        rid: Rid,
        mapping: &[(PNodeId, PNodeId)],
        tree: &RecordTree,
        ctx: &mut OpCtx,
    ) {
        for &(arena, serial) in mapping {
            let node = tree.node(arena);
            let Some(old) = node.orig else { continue };
            let new = NodePtr::new(rid, serial);
            if old == WATCH {
                ctx.new_node = Some(new);
            } else if node.is_facade() && old != new {
                ctx.relocations.push(Relocation { old, new });
            }
        }
    }

    /// Deletes the physical record at `rid` (no cascading).
    fn delete_record_raw(&self, rid: Rid, ctx: &mut OpCtx) -> TreeResult<()> {
        ctx.deleted.insert(rid);
        self.discard_record(rid)
    }

    /// Deletes a single physical record with no cascading and no operation
    /// bookkeeping — used by the bulkloader to roll back flushed records
    /// when a load is aborted.
    pub(crate) fn discard_record(&self, rid: Rid) -> TreeResult<()> {
        let pin = self.sm.pin(rid.page)?;
        let mut buf = pin.write();
        let mut sp = SlottedPage::open(&mut buf)?;
        let table = match sp.get(0) {
            Some(b) => TypeTable::decode(b)?,
            None => TypeTable::new(),
        };
        self.deposit_superseded(rid, sp.get(rid.slot), &table)?;
        sp.delete(rid.slot)
            .map_err(|_| TreeError::Storage(StorageError::RecordNotFound(rid)))?;
        let free = sp.free_total();
        drop(buf);
        self.sm.note_free_space(self.segment, rid.page, free);
        Ok(())
    }

    /// Patches the standalone parent pointer (first 8 record bytes). The
    /// pre-image is deposited first: a snapshot reader navigating upward
    /// from this record must see the parent RID of its epoch, not the
    /// patched one (the new parent record may not exist in its snapshot).
    fn patch_parent_rid(&self, child: Rid, parent: Rid) -> TreeResult<()> {
        let pin = self.sm.pin(child.page)?;
        let mut buf = pin.write();
        let mut sp = SlottedPage::open(&mut buf)?;
        let table = match sp.get(0) {
            Some(b) => TypeTable::decode(b)?,
            None => TypeTable::new(),
        };
        self.deposit_superseded(child, sp.get(child.slot), &table)?;
        let bytes = sp
            .get_mut(child.slot)
            .ok_or(TreeError::Storage(StorageError::RecordNotFound(child)))?;
        parent.encode(&mut bytes[0..8]);
        Ok(())
    }

    fn apply_patches(&self, ctx: &mut OpCtx) -> TreeResult<()> {
        let patches = std::mem::take(&mut ctx.parent_patches);
        let mut last = std::collections::HashMap::new();
        for (child, parent) in patches {
            if child.is_invalid() {
                // Placeholder proxy (bulkload spine chaining): the target
                // record does not exist yet; the bulkloader repoints it.
                continue;
            }
            last.insert(child, parent);
        }
        for (child, parent) in last {
            if ctx.deleted.contains(&child) {
                continue; // the child record died later in this operation
            }
            self.patch_parent_rid(child, parent)?;
        }
        Ok(())
    }

    // ==================================================================
    // The tree growth procedure (figure 5).
    // ==================================================================

    /// Stores an updated version of record `rid`: in place if it fits,
    /// otherwise move, otherwise split. Returns the rid now holding the
    /// (possibly shrunken) record.
    fn store_updated(&self, rid: Rid, tree: RecordTree, ctx: &mut OpCtx) -> TreeResult<Rid> {
        if tree.record_size() <= self.net_capacity() {
            match self.write_at(rid, &tree, ctx) {
                Ok(()) => return Ok(rid),
                Err(TreeError::Storage(StorageError::PageFull { .. })) => {
                    return self.move_record(rid, tree, ctx)
                }
                Err(e) => return Err(e),
            }
        }
        self.split_stored(rid, tree, ctx)
    }

    /// §3.2 step 2: "the system tries to move the record to a page with
    /// more free space".
    fn move_record(&self, old_rid: Rid, tree: RecordTree, ctx: &mut OpCtx) -> TreeResult<Rid> {
        // Stay near the old page: the record's neighbours live there.
        let new_rid = self.write_new(&tree, PlacementHint::NearPage(old_rid.page), ctx)?;
        self.delete_record_raw(old_rid, ctx)?;
        if tree.parent_rid.is_invalid() {
            ctx.note_root_move(old_rid, new_rid);
        } else {
            self.repoint_proxy(tree.parent_rid, old_rid, new_rid)?;
        }
        for child in tree.proxies_under(tree.root()) {
            ctx.parent_patches.push((child, new_rid));
        }
        Ok(new_rid)
    }

    /// Rewrites the proxy in `parent_rid` that pointed at `old` to point at
    /// `new` (an equal-size in-place rewrite).
    /// Removes a placeholder proxy (bulkload continuation slot that was
    /// never needed) from a stored record — an in-place shrink, so it can
    /// never fail for space.
    pub(crate) fn remove_placeholder(&self, rid: Rid, sentinel: Rid) -> TreeResult<()> {
        let _op = self.versions.begin_write();
        let mut tree = self.load_current(rid)?;
        let Some(proxy) = find_proxy(&tree, sentinel) else {
            return Err(TreeError::Invariant(format!(
                "record {rid} has no placeholder proxy {sentinel}"
            )));
        };
        tree.remove_subtree(proxy);
        let mut scratch = OpCtx::default();
        self.write_at(rid, &tree, &mut scratch)
    }

    pub(crate) fn repoint_proxy(&self, parent_rid: Rid, old: Rid, new: Rid) -> TreeResult<()> {
        let _op = self.versions.begin_write();
        let mut parent = self.load_current(parent_rid)?;
        let Some(proxy) = find_proxy(&parent, old) else {
            return Err(TreeError::Invariant(format!(
                "record {parent_rid} has no proxy for child {old}"
            )));
        };
        // Preserve the reference kind: a continuation placeholder stays a
        // continuation (its delegated-Leave semantics must survive the
        // patch).
        parent.node_mut(proxy).content = match parent.node(proxy).content {
            PContent::Continuation(_) => PContent::Continuation(new),
            _ => PContent::Proxy(new),
        };
        // Same length: an in-place update can never fail for space.
        let mut scratch = OpCtx::default();
        self.write_at(parent_rid, &parent, &mut scratch)?;
        debug_assert!(scratch.relocations.is_empty(), "structure unchanged");
        Ok(())
    }

    /// Splits a stored record (§3.2.2) whose updated in-memory tree
    /// exceeds the net page capacity, and recursively inserts the separator
    /// into the parent record. Returns the rid of the record holding the
    /// (facade or scaffolding) root of the split subtree's remainder.
    fn split_stored(&self, rid: Rid, tree: RecordTree, ctx: &mut OpCtx) -> TreeResult<Rid> {
        let parent_rid = tree.parent_rid;
        let plan = {
            let matrix = self.matrix.read();
            plan_split(tree, &self.config, &matrix, self.page_size())?
        };
        // Delete the old record first: partitions gladly reuse its space.
        self.delete_record_raw(rid, ctx)?;
        let part_rids = self.store_partitions(plan.partitions, rid.page, ctx)?;
        let mut separator = plan.separator;
        for (node, part) in plan.partition_proxies {
            separator.node_mut(node).content = PContent::Proxy(part_rids[part]);
        }
        if parent_rid.is_invalid() {
            // "If the old record had no parent record, a new root record
            // for the tree is created which contains just the separator."
            // Storing the separator registers parent patches for every
            // proxy it contains (partitions and ∞-moved children alike).
            let sep_rid = self.store_possibly_oversized(separator, rid.page, ctx)?;
            ctx.note_root_move(rid, sep_rid);
            return Ok(sep_rid);
        }
        // The separator is spliced into the *existing* parent record below
        // (an in-place rewrite that does not auto-register patches), so the
        // records its proxies reference re-home to the parent explicitly.
        // These are tentative: if the parent itself splits or moves, later
        // patches override them.
        for (child, home) in plan.moved_proxies {
            if home == ProxyHome::Separator {
                ctx.parent_patches.push((child, parent_rid));
            }
        }
        for &p in &part_rids {
            ctx.parent_patches.push((p, parent_rid));
        }
        // Splice the separator into the parent in place of the old proxy
        // (§3.2.2, "Inserting the separator"), honouring special case 2.
        let mut parent = self.load_current(parent_rid)?;
        let Some(proxy) = find_proxy(&parent, rid) else {
            return Err(TreeError::Invariant(format!(
                "record {parent_rid} has no proxy for split child {rid}"
            )));
        };
        let proxy_parent = parent
            .node(proxy)
            .parent
            .ok_or_else(|| TreeError::Invariant(format!("record {parent_rid}: detached proxy")))?;
        let at = parent
            .children(proxy_parent)
            .iter()
            .position(|&c| c == proxy)
            .ok_or_else(|| {
                TreeError::Invariant(format!(
                    "record {parent_rid}: proxy missing from its parent's child list"
                ))
            })?;
        parent.detach(proxy);
        let sep_root = separator.root();
        if separator.node(sep_root).is_scaffolding_aggregate() {
            // Special case 2: "if the root node of the separator is a
            // scaffolding aggregate, it is disregarded, and the children of
            // the separator root are inserted in the parent record
            // instead." Transplanting detaches the child, so the first
            // child advances without copying the child list.
            let mut i = 0;
            while let Some(&k) = separator.children(sep_root).first() {
                let moved = separator.transplant(k, &mut parent);
                parent.attach(proxy_parent, at + i, moved);
                i += 1;
            }
        } else {
            let moved = separator.transplant(sep_root, &mut parent);
            parent.attach(proxy_parent, at, moved);
        }
        self.store_updated(parent_rid, parent, ctx)
    }

    /// Stores split partitions, splitting any partition that is *still*
    /// larger than a page (possible with coarse tolerances).
    fn store_partitions(
        &self,
        partitions: Vec<RecordTree>,
        near: u32,
        ctx: &mut OpCtx,
    ) -> TreeResult<Vec<Rid>> {
        let mut rids = Vec::with_capacity(partitions.len());
        for p in partitions {
            rids.push(self.store_possibly_oversized(p, near, ctx)?);
        }
        Ok(rids)
    }

    /// Stores a fresh (not-yet-stored) tree, recursively splitting it while
    /// it exceeds the net capacity. Terminates because every split strictly
    /// shrinks the remainder; a childless oversized root is reported as
    /// [`TreeError::OversizedNode`].
    fn store_possibly_oversized(
        &self,
        tree: RecordTree,
        near: u32,
        ctx: &mut OpCtx,
    ) -> TreeResult<Rid> {
        if tree.record_size() <= self.net_capacity() {
            return self.write_new(&tree, PlacementHint::NearPage(near), ctx);
        }
        let before = tree.record_size();
        let plan = {
            let matrix = self.matrix.read();
            plan_split(tree, &self.config, &matrix, self.page_size())?
        };
        // Convergence guard: every split must strictly shrink the pieces,
        // otherwise recursion would never terminate (only possible with a
        // node close to the page size plus pathological configuration).
        if plan.separator.record_size() >= before
            || plan.partitions.iter().any(|p| p.record_size() >= before)
        {
            return Err(TreeError::OversizedNode {
                size: before,
                max: self.net_capacity(),
            });
        }
        let part_rids = self.store_partitions(plan.partitions, near, ctx)?;
        let mut separator = plan.separator;
        for (node, part) in plan.partition_proxies {
            separator.node_mut(node).content = PContent::Proxy(part_rids[part]);
        }
        // Storing the separator (a fresh record) registers the parent
        // patches for the partition proxies and ∞-moved children it holds.
        let sep_rid = self.store_possibly_oversized(separator, near, ctx)?;
        let _ = plan.moved_proxies;
        Ok(sep_rid)
    }

    // ==================================================================
    // Public operations.
    // ==================================================================

    /// Creates a new tree whose root is an element with `label`; returns
    /// the root record's RID (== the root node's pointer with index 0).
    pub fn create_tree(&self, label: LabelId) -> TreeResult<Rid> {
        let _op = self.versions.begin_write();
        let tree = RecordTree::new(label, PContent::Aggregate(Vec::new()), Rid::invalid());
        let mut ctx = OpCtx::default();
        let rid = self.write_new(&tree, PlacementHint::Anywhere, &mut ctx)?;
        Ok(rid)
    }

    /// Inserts a new facade node under `parent` at the given logical
    /// position.
    pub fn insert(
        &self,
        parent: NodePtr,
        pos: InsertPos,
        label: LabelId,
        node: NewNode,
    ) -> TreeResult<OpResult> {
        let _op = self.versions.begin_write();
        let site = self.resolve_site(parent, pos)?;
        self.insert_at_site(site, parent, label, node)
    }

    /// Inserts a new facade node as the next logical sibling of `sibling`
    /// (used heavily by the incremental-update workload).
    pub fn insert_after(
        &self,
        sibling: NodePtr,
        label: LabelId,
        node: NewNode,
    ) -> TreeResult<OpResult> {
        let _op = self.versions.begin_write();
        let tree = self.load_current(sibling.rid)?;
        if tree_is_packed(&tree) {
            return Err(TreeError::PackedRecord(sibling.rid));
        }
        let parent = tree
            .try_node(sibling.node)
            .ok_or(TreeError::BadNodePtr {
                rid: sibling.rid,
                node: sibling.node,
            })?
            .parent;
        let site = match parent {
            Some(p) => {
                let idx = tree
                    .children(p)
                    .iter()
                    .position(|&c| c == sibling.node)
                    .ok_or_else(|| {
                        TreeError::Invariant(
                            "sibling node missing from its parent's child list".into(),
                        )
                    })?
                    + 1;
                Site {
                    rid: sibling.rid,
                    tree,
                    parent_node: p,
                    index: idx,
                }
            }
            None => {
                // The sibling is a record root: insert after the proxy that
                // points to this record, in the parent record.
                let parent_rid = tree.parent_rid;
                if parent_rid.is_invalid() {
                    return Err(TreeError::Invariant(
                        "cannot insert a sibling of the tree root".into(),
                    ));
                }
                let ptree = self.load_current(parent_rid)?;
                if tree_is_packed(&ptree) {
                    return Err(TreeError::PackedRecord(parent_rid));
                }
                let proxy = find_proxy(&ptree, sibling.rid).ok_or_else(|| {
                    TreeError::Invariant(format!(
                        "record {parent_rid} has no proxy for {}",
                        sibling.rid
                    ))
                })?;
                let pp = ptree.node(proxy).parent.ok_or_else(|| {
                    TreeError::Invariant(format!("record {parent_rid}: detached proxy"))
                })?;
                let idx = ptree
                    .children(pp)
                    .iter()
                    .position(|&c| c == proxy)
                    .ok_or_else(|| {
                        TreeError::Invariant(format!(
                            "record {parent_rid}: proxy missing from its parent's child list"
                        ))
                    })?
                    + 1;
                Site {
                    rid: parent_rid,
                    tree: ptree,
                    parent_node: pp,
                    index: idx,
                }
            }
        };
        // The logical parent's label governs the split-matrix lookup.
        let lparent = self
            .logical_parent_from(site.rid, site.parent_node, &site.tree, true)?
            .ok_or_else(|| TreeError::Invariant("sibling has no logical parent".into()))?;
        self.insert_at_site(site, lparent, label, node)
    }

    /// Walks up from `(rid, node)` (inclusive) to the nearest facade node,
    /// crossing record boundaries through standalone parent pointers. The
    /// starting tree is borrowed (the common case never leaves it); only
    /// boundary crossings load further records. `current` selects the
    /// on-page image (write paths) over the versioned view (read paths).
    fn logical_parent_from(
        &self,
        mut rid: Rid,
        mut node: PNodeId,
        tree: &RecordTree,
        current: bool,
    ) -> TreeResult<Option<NodePtr>> {
        enum Next {
            Up(PNodeId),
            Cross(Rid),
            /// A prefix entry at the given chain index: hop to the record
            /// whose node it copies.
            Hop(usize, Rid),
        }
        let mut owned: Option<RecordTree> = None;
        loop {
            let action = {
                let t = owned.as_ref().unwrap_or(tree);
                let n = t.node(node);
                if n.is_facade() {
                    return Ok(Some(NodePtr::new(rid, preorder_index(t, node))));
                }
                if n.is_prefix() {
                    // Chain index = number of (prefix) ancestors above.
                    let mut i = 0usize;
                    let mut up = n.parent;
                    while let Some(p) = up {
                        i += 1;
                        up = t.node(p).parent;
                    }
                    Next::Hop(i, t.parent_rid)
                } else {
                    match n.parent {
                        Some(p) => Next::Up(p),
                        None => Next::Cross(t.parent_rid),
                    }
                }
            };
            match action {
                Next::Up(p) => node = p,
                Next::Cross(parent_rid) => {
                    if parent_rid.is_invalid() {
                        return Ok(None);
                    }
                    let ptree = if current {
                        self.load_current(parent_rid)?
                    } else {
                        self.load(parent_rid)?
                    };
                    let proxy = find_proxy(&ptree, rid).ok_or_else(|| {
                        TreeError::Invariant(format!("record {parent_rid} has no proxy for {rid}"))
                    })?;
                    node = ptree.node(proxy).parent.ok_or_else(|| {
                        TreeError::Invariant(format!("record {parent_rid}: detached proxy"))
                    })?;
                    rid = parent_rid;
                    owned = Some(ptree);
                }
                Next::Hop(mut level, mut holder_rid) => {
                    // A prefix copies a spilled level of an ancestor
                    // record: climb holders, offsetting the level index by
                    // each split-chain piece's chain length, until the
                    // record whose spilled path carries the level.
                    loop {
                        if holder_rid.is_invalid() {
                            return Err(TreeError::Invariant(
                                "prefix chain with no holder record".into(),
                            ));
                        }
                        let holder = if current {
                            self.load_current(holder_rid)?
                        } else {
                            self.load(holder_rid)?
                        };
                        if find_continuation(&holder).map(|(_, t)| t) == Some(rid) {
                            // Our record is the holder's continuation
                            // group: chain index i maps to spilled-path
                            // node i.
                            let (_, path, _) = spilled_path(&holder).ok_or_else(|| {
                                TreeError::Invariant(format!(
                                    "record {holder_rid}: continuation group without a \
                                     spilled path"
                                ))
                            })?;
                            let at = *path.get(level).ok_or_else(|| {
                                TreeError::Invariant(format!(
                                    "record {holder_rid}: spilled path shorter than \
                                     its group's prefix chain"
                                ))
                            })?;
                            node = at;
                            rid = holder_rid;
                            owned = Some(holder);
                            break;
                        }
                        // Reached via a chain proxy: our record continues
                        // the holder's prefix chain.
                        level += prefix_chain(&holder).len();
                        rid = holder_rid;
                        holder_rid = holder.parent_rid;
                    }
                }
            }
        }
    }

    /// A single node larger than the net capacity can never be stored: the
    /// split algorithm cannot divide below node granularity (§3.2.2 always
    /// descends into subtrees; a childless node terminates it). Rejecting
    /// it up front keeps failures non-destructive; the document manager
    /// chunks long text to stay below this bound.
    fn check_node_size(&self, node: &NewNode) -> TreeResult<()> {
        let body = match node {
            NewNode::Element => 0,
            NewNode::Literal(v) => crate::model::literal_body_len(v),
        };
        let standalone = crate::model::STANDALONE_HEADER + body;
        if standalone > self.net_capacity() {
            return Err(TreeError::OversizedNode {
                size: standalone,
                max: self.net_capacity(),
            });
        }
        Ok(())
    }

    fn insert_at_site(
        &self,
        mut site: Site,
        logical_parent: NodePtr,
        label: LabelId,
        node: NewNode,
    ) -> TreeResult<OpResult> {
        self.check_node_size(&node)?;
        let parent_label = {
            // The logical parent may live in the site's record or higher.
            if logical_parent.rid == site.rid {
                site.tree
                    .try_node(preorder_to_arena(&site.tree, logical_parent.node))
                    .map(|n| n.label)
            } else {
                let t = self.load_current(logical_parent.rid)?;
                t.try_node(preorder_to_arena(&t, logical_parent.node))
                    .map(|n| n.label)
            }
        }
        .ok_or(TreeError::BadNodePtr {
            rid: logical_parent.rid,
            node: logical_parent.node,
        })?;

        // A split of the site record splices its separator into ancestor
        // records, and the splice machinery requires plain (non-packed)
        // ancestors — lazy normalization deliberately leaves them packed.
        // When this insert could overflow the site record, demand plain
        // ancestors all the way up *before any page is written*: the
        // document layer normalizes the reported cluster and retries, one
        // level per round, until the chain is plain.
        let growth = crate::model::EMBEDDED_HEADER
            + crate::model::PROXY_BODY.max(match &node {
                NewNode::Element => 0,
                NewNode::Literal(v) => crate::model::literal_body_len(v),
            });
        if site.tree.record_size() + growth > self.net_capacity() {
            if tree_is_packed(&site.tree) {
                // An in-place edit of a packed record is only safe while
                // it cannot split: a split would run the plan/separator
                // machinery on packed structure. Normalize and retry.
                return Err(TreeError::PackedRecord(site.rid));
            }
            let mut p = site.tree.parent_rid;
            while !p.is_invalid() {
                let pt = self.load_current(p)?;
                if tree_is_packed(&pt) {
                    return Err(TreeError::PackedRecord(p));
                }
                p = pt.parent_rid;
            }
        }
        let behaviour = self.matrix.read().get(parent_label, label);
        let mut ctx = OpCtx::default();
        match behaviour {
            SplitBehaviour::Standalone => {
                // §3.3: "x is stored as a standalone node"; a proxy goes
                // into the designated record. Hint: same page as the parent
                // ("store parent with children ... on the same page if
                // possible", §4.2).
                let mut child = RecordTree::new(label, node.into_content(), site.rid);
                child.node_mut(child.root()).orig = Some(WATCH);
                let child_rid =
                    self.write_new(&child, PlacementHint::NearPage(site.rid.page), &mut ctx)?;
                let proxy = site
                    .tree
                    .alloc(self.proxy_digest(&child), PContent::Proxy(child_rid));
                site.tree.attach(site.parent_node, site.index, proxy);
                let final_rid = self.store_updated(site.rid, site.tree, &mut ctx)?;
                if final_rid == site.rid {
                    // The host did not move/split: the tentative parent is
                    // still right, but make it explicit for clarity.
                    ctx.parent_patches.push((child_rid, site.rid));
                }
                self.apply_patches(&mut ctx)?;
                Ok(ctx.finish())
            }
            SplitBehaviour::KeepWithParent | SplitBehaviour::Other => {
                let new = site.tree.alloc(label, node.into_content());
                site.tree.node_mut(new).orig = Some(WATCH);
                site.tree.attach(site.parent_node, site.index, new);
                self.store_updated(site.rid, site.tree, &mut ctx)?;
                self.apply_patches(&mut ctx)?;
                Ok(ctx.finish())
            }
        }
    }

    /// Resolves an insertion site for `pos` under `parent`. For `First`
    /// and `Last`, the designated sibling's record is considered as an
    /// alternative host and the one with more free space wins (§3.2.1,
    /// §3.3: "the node is inserted on the same record as one of its
    /// designated siblings (wherever there is more free space)").
    fn resolve_site(&self, parent: NodePtr, pos: InsertPos) -> TreeResult<Site> {
        let tree = self.load_current(parent.rid)?;
        if tree_is_packed(&tree) && !self.config.lazy_normalize {
            // Structural edits cannot preserve the packed-prefix layout;
            // the caller normalizes the cluster and retries.
            return Err(TreeError::PackedRecord(parent.rid));
        }
        let pnode = preorder_to_arena(&tree, parent.node);
        let n = tree.try_node(pnode).ok_or(TreeError::BadNodePtr {
            rid: parent.rid,
            node: parent.node,
        })?;
        if tree_is_packed(&tree) && !packed_site_is_plain(&tree, pnode) {
            // Lazy mode: an insert whose site node's child list is local
            // to this record (not a prefix entry, not on the spilled
            // path) proceeds in place — the packed structure around it is
            // untouched, so no normalization is needed. Sites that *do*
            // participate in the packed layout still take the
            // normalize-and-retry path.
            return Err(TreeError::PackedRecord(parent.rid));
        }
        if !matches!(n.content, PContent::Aggregate(_)) {
            return Err(TreeError::NotAnAggregate {
                rid: parent.rid,
                node: parent.node,
            });
        }
        match pos {
            InsertPos::First => self.resolve_edge(parent.rid, tree, pnode, true),
            InsertPos::Last => self.resolve_edge(parent.rid, tree, pnode, false),
            InsertPos::At(k) => self.resolve_at(parent.rid, tree, pnode, k),
        }
    }

    /// Site at the first/last edge of the logical child list: either
    /// embedded in the parent's record, or inside the first/last child's
    /// host record reached through scaffolding chains.
    fn resolve_edge(
        &self,
        rid: Rid,
        tree: RecordTree,
        node: PNodeId,
        first: bool,
    ) -> TreeResult<Site> {
        // Follow the edge-child proxy chain to the deepest scaffolding
        // host (the record holding the designated sibling).
        let mut deep: Option<(Rid, RecordTree)> = None;
        loop {
            let (t, n) = match &deep {
                Some((_, t)) => (t, t.root()),
                None => (&tree, node),
            };
            let Some(c) = edge_child(t, n, first) else {
                break;
            };
            let PContent::Proxy(target) = t.node(c).content else {
                break;
            };
            let child_tree = self.load_current(target)?;
            if !child_tree
                .node(child_tree.root())
                .is_scaffolding_aggregate()
            {
                break; // facade-rooted record is a logical child itself
            }
            if tree_is_packed(&child_tree) {
                // The designated sibling's host is packed and its root's
                // child list is part of the packed layout — edge
                // resolution there needs the cluster normalized first.
                return Err(TreeError::PackedRecord(target));
            }
            deep = Some((target, child_tree));
        }
        match deep {
            None => {
                let index = if first { 0 } else { tree.children(node).len() };
                Ok(Site {
                    rid,
                    tree,
                    parent_node: node,
                    index,
                })
            }
            Some((drid, dtree)) => {
                // "Wherever there is more free space": parent record vs the
                // designated sibling's record.
                let shallow_free = self.sm.page_free_space(rid.page)?;
                let deep_free = self.sm.page_free_space(drid.page)?;
                if deep_free > shallow_free {
                    let droot = dtree.root();
                    let index = if first {
                        0
                    } else {
                        dtree.children(droot).len()
                    };
                    Ok(Site {
                        rid: drid,
                        tree: dtree,
                        parent_node: droot,
                        index,
                    })
                } else {
                    let index = if first { 0 } else { tree.children(node).len() };
                    Ok(Site {
                        rid,
                        tree,
                        parent_node: node,
                        index,
                    })
                }
            }
        }
    }

    /// Site after the k-th logical child (so the new node lands at logical
    /// index `k`); clamps to the end when fewer children exist.
    fn resolve_at(&self, rid: Rid, tree: RecordTree, node: PNodeId, k: usize) -> TreeResult<Site> {
        if k == 0 {
            return self.resolve_edge(rid, tree, node, true);
        }
        // Walk the expanded logical child list, consuming k children. The
        // child list is indexed in place — nothing here mutates the trees,
        // so no copy of the list is needed.
        let mut remaining = k;
        let mut stack: Vec<(Rid, RecordTree, PNodeId, usize)> = vec![(rid, tree, node, 0)];
        while let Some((crid, ctree, cnode, start)) = stack.pop() {
            let mut idx = start;
            while idx < ctree.children(cnode).len() {
                let c = ctree.children(cnode)[idx];
                if let PContent::Proxy(target) = ctree.node(c).content {
                    let child_tree = self.load_current(target)?;
                    if child_tree
                        .node(child_tree.root())
                        .is_scaffolding_aggregate()
                    {
                        if tree_is_packed(&child_tree) {
                            // A packed scaffolding host's local child list
                            // is incomplete — indexing through it would
                            // miscount; normalize the cluster first.
                            return Err(TreeError::PackedRecord(target));
                        }
                        let root = child_tree.root();
                        stack.push((crid, ctree, cnode, idx + 1));
                        stack.push((target, child_tree, root, 0));
                        break;
                    }
                    // A facade-rooted record counts as one logical child.
                }
                remaining -= 1;
                if remaining == 0 {
                    return Ok(Site {
                        rid: crid,
                        tree: ctree,
                        parent_node: cnode,
                        index: idx + 1,
                    });
                }
                idx += 1;
            }
        }
        // Fewer than k logical children: append at the end.
        self.resolve_edge_reload(rid, node, false)
    }

    fn resolve_edge_reload(&self, rid: Rid, node: PNodeId, first: bool) -> TreeResult<Site> {
        let tree = self.load_current(rid)?;
        self.resolve_edge(rid, tree, node, first)
    }

    /// Replaces the value of a literal node. The record is rewritten and
    /// may move or split when the value grew.
    pub fn update_literal(&self, ptr: NodePtr, value: LiteralValue) -> TreeResult<OpResult> {
        let _op = self.versions.begin_write();
        let mut tree = self.load_current(ptr.rid)?;
        if tree_is_packed(&tree) {
            return Err(TreeError::PackedRecord(ptr.rid));
        }
        let arena = preorder_to_arena(&tree, ptr.node);
        let n = tree.try_node(arena).ok_or(TreeError::BadNodePtr {
            rid: ptr.rid,
            node: ptr.node,
        })?;
        if !matches!(n.content, PContent::Literal(_)) {
            return Err(TreeError::NotALiteral {
                rid: ptr.rid,
                node: ptr.node,
            });
        }
        self.check_node_size(&NewNode::Literal(value.clone()))?;
        tree.node_mut(arena).content = PContent::Literal(value);
        let mut ctx = OpCtx::default();
        self.store_updated(ptr.rid, tree, &mut ctx)?;
        self.apply_patches(&mut ctx)?;
        Ok(ctx.finish())
    }

    /// Deletes the subtree rooted at `ptr`, cascading into records behind
    /// proxies. Deleting a record's standalone root removes the record and
    /// the proxy referring to it; empty scaffolding cascades upward.
    pub fn delete_subtree(&self, ptr: NodePtr) -> TreeResult<OpResult> {
        let _op = self.versions.begin_write();
        let mut ctx = OpCtx::default();
        let tree = self.load_current(ptr.rid)?;
        if tree_is_packed(&tree) {
            return Err(TreeError::PackedRecord(ptr.rid));
        }
        let arena = preorder_to_arena(&tree, ptr.node);
        if tree.try_node(arena).is_none() {
            return Err(TreeError::BadNodePtr {
                rid: ptr.rid,
                node: ptr.node,
            });
        }
        if arena == tree.root() {
            let parent_rid = tree.parent_rid;
            if !parent_rid.is_invalid() && tree_is_packed(&self.load_current(parent_rid)?) {
                // Removing this record rewrites the (packed) parent.
                return Err(TreeError::PackedRecord(parent_rid));
            }
            self.drop_record_recursive(ptr.rid, &mut ctx)?;
            if !parent_rid.is_invalid() {
                self.remove_proxy_cascading(parent_rid, ptr.rid, &mut ctx)?;
            }
        } else {
            let mut tree = tree;
            let cascade = tree.remove_subtree(arena);
            for rid in cascade {
                self.drop_record_recursive(rid, &mut ctx)?;
            }
            self.finish_after_removal(ptr.rid, tree, &mut ctx)?;
        }
        self.apply_patches(&mut ctx)?;
        Ok(ctx.finish())
    }

    /// After removing nodes from `rid`'s tree: delete the record if it
    /// became empty scaffolding, otherwise rewrite it (and optionally try
    /// to merge, §1's "merged into clusters").
    fn finish_after_removal(&self, rid: Rid, tree: RecordTree, ctx: &mut OpCtx) -> TreeResult<()> {
        let root = tree.root();
        if tree.node(root).is_scaffolding_aggregate() && tree.children(root).is_empty() {
            let parent_rid = tree.parent_rid;
            self.delete_record_raw(rid, ctx)?;
            if !parent_rid.is_invalid() {
                self.remove_proxy_cascading(parent_rid, rid, ctx)?;
            }
            return Ok(());
        }
        let mut tree = tree;
        if self.config.merge_enabled {
            self.try_absorb(rid, &mut tree, ctx)?;
        }
        self.store_updated(rid, tree, ctx)?;
        Ok(())
    }

    /// Removes the proxy pointing at `child` from `parent_rid`, cascading
    /// when the parent becomes empty scaffolding.
    fn remove_proxy_cascading(
        &self,
        parent_rid: Rid,
        child: Rid,
        ctx: &mut OpCtx,
    ) -> TreeResult<()> {
        let mut tree = self.load_current(parent_rid)?;
        let Some(proxy) = find_proxy(&tree, child) else {
            return Err(TreeError::Invariant(format!(
                "record {parent_rid} has no proxy for deleted child {child}"
            )));
        };
        tree.remove_subtree(proxy);
        self.finish_after_removal(parent_rid, tree, ctx)
    }

    /// Frees the record at `rid` and every record reachable through its
    /// proxies.
    fn drop_record_recursive(&self, rid: Rid, ctx: &mut OpCtx) -> TreeResult<()> {
        let tree = self.load_current(rid)?;
        for child in tree.proxies_under(tree.root()) {
            self.drop_record_recursive(child, ctx)?;
        }
        self.delete_record_raw(rid, ctx)
    }

    /// Drops an entire tree by its root record.
    pub fn drop_tree(&self, root: Rid) -> TreeResult<()> {
        let _op = self.versions.begin_write();
        let mut ctx = OpCtx::default();
        self.drop_record_recursive(root, &mut ctx)
    }

    /// Merge extension: absorb proxy children whose records fit inline
    /// while the merged record stays under `merge_fill_max` of capacity.
    fn try_absorb(&self, rid: Rid, tree: &mut RecordTree, ctx: &mut OpCtx) -> TreeResult<()> {
        let capacity = self.net_capacity();
        if tree.record_size() as f64 > capacity as f64 * self.config.merge_threshold {
            return Ok(());
        }
        if tree_is_packed(tree) {
            // Packed records are normalized before structural edits reach
            // them; never merge into one.
            return Ok(());
        }
        let budget = (capacity as f64 * self.config.merge_fill_max) as usize;
        // Absorb one child at a time until the budget stops us.
        let mut rejected: std::collections::HashSet<Rid> = std::collections::HashSet::new();
        loop {
            let mut candidate = None;
            for id in tree.pre_order(tree.root()) {
                if let PContent::Proxy(target) = tree.node(id).content {
                    if rejected.contains(&target) {
                        continue;
                    }
                    candidate = Some((id, target));
                    break;
                }
            }
            let Some((proxy, target)) = candidate else {
                return Ok(());
            };
            let child = self.load_current(target)?;
            if tree_is_packed(&child) {
                // A packed child (piece or split prefix chain) cannot be
                // inlined without breaking its group mapping.
                rejected.insert(target);
                continue;
            }
            let child_body = child.body_len(child.root());
            let inline_growth = if child.node(child.root()).is_scaffolding_aggregate() {
                // Children splice in; the scaffolding root vanishes.
                child_body
            } else {
                crate::model::EMBEDDED_HEADER + child_body
            };
            // Replacing the 14-byte proxy with the inlined subtree.
            let new_size = tree.record_size() - tree.embedded_size(proxy) + inline_growth;
            if new_size > budget {
                return Ok(());
            }
            let mut child = child;
            let pparent = tree
                .node(proxy)
                .parent
                .ok_or_else(|| TreeError::Invariant("detached proxy".into()))?;
            let at = tree
                .children(pparent)
                .iter()
                .position(|&c| c == proxy)
                .ok_or_else(|| {
                    TreeError::Invariant("proxy missing from its parent's child list".into())
                })?;
            tree.remove_subtree(proxy);
            if child.node(child.root()).is_scaffolding_aggregate() {
                let mut i = 0;
                while let Some(&k) = child.children(child.root()).first() {
                    let moved = child.transplant(k, tree);
                    tree.attach(pparent, at + i, moved);
                    i += 1;
                }
            } else {
                let root = child.root();
                let moved = child.transplant(root, tree);
                tree.attach(pparent, at, moved);
            }
            for grand in tree.proxies_under(pparent) {
                ctx.parent_patches.push((grand, rid));
            }
            self.delete_record_raw(target, ctx)?;
        }
    }

    // ==================================================================
    // Depth-aware packing: normalization before structural edits.
    // ==================================================================

    /// Rewrites the depth-aware-packed cluster containing `rid` into plain
    /// records: every continuation group is spliced back into its piece's
    /// levels (late children re-join their facades' child lists in
    /// document order), the group records are deleted, and the merged tree
    /// is re-stored through the ordinary tree-growth machinery (splitting
    /// as needed). Packed *ancestor* records are normalized first,
    /// top-down, so a split's separator always splices into a plain
    /// parent. Returns relocation events for the logical-id map.
    ///
    /// Structural edit entry points surface [`TreeError::PackedRecord`]
    /// when they would touch packed structure; callers normalize and
    /// retry.
    pub fn normalize_packed(&self, rid: Rid) -> TreeResult<OpResult> {
        let _op = self.versions.begin_write();
        let mut ctx = OpCtx::default();
        // Lazy path: when the touched cluster provably merges back into a
        // single record (no split, so no separator ever reaches a packed
        // parent), normalize it alone and leave packed ancestors packed —
        // an edit deep in a packed corpus then rewrites one cluster
        // instead of the whole ancestor chain.
        if self.config.lazy_normalize {
            if let Some(host) = self.lazy_cluster_host(rid)? {
                let mut tree = self.load_current(host)?;
                self.inline_continuations(host, &mut tree, &mut ctx)?;
                self.store_updated(host, tree, &mut ctx)?;
                self.apply_patches(&mut ctx)?;
                return Ok(ctx.finish());
            }
        }
        // Ancestor chain from `rid` upward while parents stay packed.
        let mut chain = vec![rid];
        let mut cur = rid;
        loop {
            let t = self.load_current(cur)?;
            let parent = t.parent_rid;
            if parent.is_invalid() {
                break;
            }
            let pt = self.load_current(parent)?;
            if !tree_is_packed(&pt) {
                break;
            }
            chain.push(parent);
            cur = parent;
        }
        for &rc in chain.iter().rev() {
            if ctx.deleted.contains(&rc) {
                continue; // consumed by an ancestor's normalization
            }
            let tree = self.load_current(rc)?;
            if tree.node(tree.root()).is_prefix() || !tree_is_packed(&tree) {
                // Groups and split-chain pieces are consumed by their
                // holder's normalization; plain records need none.
                continue;
            }
            let mut tree = tree;
            self.inline_continuations(rc, &mut tree, &mut ctx)?;
            self.store_updated(rc, tree, &mut ctx)?;
            // Apply parent patches step by step: a later chain entry's
            // split consults its parent record, which this step may just
            // have restructured.
            self.apply_patches(&mut ctx)?;
        }
        Ok(ctx.finish())
    }

    /// Decides whether the packed cluster containing `rid` can be
    /// normalized lazily: resolves the cluster *host* (walking out of
    /// prefix-rooted group/chain records to the record holding the
    /// continuation placeholder) and sums an upper bound on the merged
    /// record — the host plus every group and chain-piece record its
    /// continuations splice back in. Prefix entries, placeholders and the
    /// merged records' standalone headers all vanish in the merge, so the
    /// raw sum over-counts; if even the over-count fits the net capacity,
    /// the merge cannot split and packed ancestors can stay packed.
    /// Returns the host RID, or `None` when the eager full-chain path
    /// must run (cluster too big, or `rid`'s record is plain).
    fn lazy_cluster_host(&self, rid: Rid) -> TreeResult<Option<Rid>> {
        let mut host = rid;
        let mut tree = self.load_current(host)?;
        while tree.node(tree.root()).is_prefix() {
            let parent = tree.parent_rid;
            if parent.is_invalid() {
                return Ok(None); // orphan piece: let the eager path report
            }
            host = parent;
            tree = self.load_current(host)?;
        }
        if !tree_is_packed(&tree) {
            // The record itself is plain; any packed *ancestors* need the
            // eager top-down walk.
            return Ok(None);
        }
        let budget = self.net_capacity();
        let mut bound = tree.record_size();
        let mut work: Vec<Rid> = spilled_path(&tree).map(|(_, _, g)| g).into_iter().collect();
        while let Some(g) = work.pop() {
            let gt = self.load_current(g)?;
            bound += gt.record_size();
            if bound > budget {
                return Ok(None);
            }
            if let Some((_, _, next)) = spilled_path(&gt) {
                work.push(next);
            }
            // Split prefix chains: lower pieces hang as digest-less
            // proxies under the chain's prefix entries (a labelled proxy
            // is facade-rooted content, never a chain piece — the digest
            // saves the probe read).
            for &p in &prefix_chain(&gt) {
                for &c in gt.children(p) {
                    if let PContent::Proxy(t) = gt.node(c).content {
                        if gt.node(c).label == LABEL_NONE {
                            let ct = self.load_current(t)?;
                            if ct.node(ct.root()).is_prefix() {
                                work.push(t);
                            }
                        }
                    }
                }
            }
        }
        Ok(Some(host))
    }

    /// Splices every continuation group of `tree` (and, transitively, the
    /// groups those groups spilled into) back into the spilled path's
    /// child lists.
    fn inline_continuations(
        &self,
        host_rid: Rid,
        tree: &mut RecordTree,
        ctx: &mut OpCtx,
    ) -> TreeResult<()> {
        while let Some((cont, path, target)) = spilled_path(tree) {
            tree.remove_subtree(cont);
            self.splice_group(host_rid, tree, &path, target, ctx)?;
        }
        Ok(())
    }

    /// Moves the content of continuation group `group_rid` into `tree`:
    /// each prefix entry's children are appended to the path node it
    /// copies, in order; a split prefix chain's lower piece is inlined
    /// under the remaining path; the group record is deleted. The group's
    /// own continuation placeholder (if any) travels into `tree`, where
    /// [`inline_continuations`](Self::inline_continuations) picks it up.
    fn splice_group(
        &self,
        host_rid: Rid,
        tree: &mut RecordTree,
        path: &[PNodeId],
        group_rid: Rid,
        ctx: &mut OpCtx,
    ) -> TreeResult<()> {
        let mut group = self.load_current(group_rid)?;
        let chain = prefix_chain(&group);
        if chain.len() > path.len() {
            return Err(TreeError::Invariant(format!(
                "continuation group {group_rid}: prefix chain longer than the spilled path"
            )));
        }
        for (i, &pnode) in chain.iter().enumerate() {
            loop {
                let next = group
                    .children(pnode)
                    .iter()
                    .copied()
                    .find(|&c| !group.node(c).is_prefix());
                let Some(c) = next else { break };
                if let PContent::Proxy(t) = group.node(c).content {
                    let lower = self.load_current(t)?;
                    if lower.node(lower.root()).is_prefix() {
                        // Lower piece of a split prefix chain: its levels
                        // continue this chain.
                        group.remove_subtree(c);
                        self.splice_group(host_rid, tree, &path[i + 1..], t, ctx)?;
                        continue;
                    }
                }
                // Child records referenced by the moved content re-home to
                // the host (later patches from splits/moves override).
                for r in group.proxies_under(c) {
                    ctx.parent_patches.push((r, host_rid));
                }
                let moved = group.transplant(c, tree);
                let end = tree.children(path[i]).len();
                tree.attach(path[i], end, moved);
            }
        }
        self.delete_record_raw(group_rid, ctx)?;
        Ok(())
    }

    // ==================================================================
    // Reading.
    // ==================================================================

    /// Information about the node at `ptr`.
    pub fn node_info(&self, ptr: NodePtr) -> TreeResult<NodeInfo> {
        let tree = self.load(ptr.rid)?;
        let arena = preorder_to_arena(&tree, ptr.node);
        let n = tree.try_node(arena).ok_or(TreeError::BadNodePtr {
            rid: ptr.rid,
            node: ptr.node,
        })?;
        Ok(NodeInfo {
            label: n.label,
            value: match &n.content {
                PContent::Literal(v) => Some(v.clone()),
                _ => None,
            },
            facade: n.is_facade(),
            physical_children: tree.children(arena).len(),
        })
    }

    /// The logical children of the facade node at `ptr`, crossing proxies
    /// and skipping scaffolding.
    pub fn logical_children(&self, ptr: NodePtr) -> TreeResult<Vec<NodePtr>> {
        Ok(self
            .logical_children_labeled(ptr)?
            .into_iter()
            .map(|(p, _)| p)
            .collect())
    }

    /// [`logical_children`](Self::logical_children) with each child's
    /// label alongside its pointer. Proxy label digests make this cheaper
    /// than `logical_children` + `node_info` per child: a digested proxy
    /// yields `(child root, digest)` with **no page read** — only
    /// digest-less proxies (scaffolding-rooted children, pre-format-2
    /// records) are resolved by loading the child record.
    pub fn logical_children_labeled(&self, ptr: NodePtr) -> TreeResult<Vec<(NodePtr, LabelId)>> {
        let tree = self.load(ptr.rid)?;
        let arena = preorder_to_arena(&tree, ptr.node);
        if tree.try_node(arena).is_none() {
            return Err(TreeError::BadNodePtr {
                rid: ptr.rid,
                node: ptr.node,
            });
        }
        let mut out = Vec::new();
        self.expand_children(ptr.rid, &tree, arena, &mut out)?;
        Ok(out)
    }

    fn expand_children(
        &self,
        rid: Rid,
        tree: &RecordTree,
        node: PNodeId,
        out: &mut Vec<(NodePtr, LabelId)>,
    ) -> TreeResult<()> {
        for &c in tree.children(node) {
            let n = tree.node(c);
            match n.content {
                PContent::Proxy(target) => {
                    if n.label != LABEL_NONE {
                        // Label digest: the child is facade-rooted (a
                        // digest is only ever written for one) with this
                        // label at pre-order index 0 — no page read.
                        out.push((NodePtr::new(target, 0), n.label));
                        continue;
                    }
                    let child = self.load(target)?;
                    let root = child.root();
                    if child.node(root).is_scaffolding_aggregate() {
                        self.expand_children(target, &child, root, out)?;
                    } else if child.node(root).is_prefix() {
                        // The lower half of a split prefix chain: its root
                        // prefix copies *this* node's next spilled level,
                        // so only content of deeper levels hangs here —
                        // none of it is a child of `node`.
                        debug_assert!(tree.node(node).is_prefix());
                    } else {
                        out.push((
                            NodePtr::new(target, preorder_index(&child, root)),
                            child.node(root).label,
                        ));
                    }
                }
                // Deeper levels' late children — not children of `node`.
                PContent::Prefix(_) => {}
                // Late children of this record's spilled path: appended
                // below, from the continuation group's matching prefix.
                PContent::Continuation(_) => {}
                _ => out.push((NodePtr::new(rid, preorder_index(tree, c)), n.label)),
            }
        }
        // Depth-aware packing: when the record has a continuation and
        // `node` sits on its spilled path, the node's child list continues
        // in the group record, under the prefix entry copying it.
        if let Some((_, path, group)) = spilled_path(tree) {
            if let Some(i) = path.iter().position(|&p| p == node) {
                self.expand_group_children(group, i, out)?;
            }
        }
        Ok(())
    }

    /// Appends the logical children stored in continuation group
    /// `group_rid` under prefix-chain index `level` (late children of the
    /// copied ancestor). A chain split across group records (the group
    /// itself spilled inside its prefix chain) is followed through the
    /// prefix-rooted lower piece.
    fn expand_group_children(
        &self,
        group_rid: Rid,
        level: usize,
        out: &mut Vec<(NodePtr, LabelId)>,
    ) -> TreeResult<()> {
        let group = self.load(group_rid)?;
        let chain = prefix_chain(&group);
        if let Some(&pnode) = chain.get(level) {
            return self.expand_children(group_rid, &group, pnode, out);
        }
        // The level's prefix lives in the lower piece of a split chain,
        // proxied from the deepest prefix of this record.
        let Some(&last) = chain.last() else {
            return Ok(());
        };
        for &c in group.children(last) {
            if let PContent::Proxy(target) = group.node(c).content {
                let child = self.load(target)?;
                if child.node(child.root()).is_prefix() {
                    return self.expand_group_children(target, level - chain.len(), out);
                }
            }
        }
        Ok(())
    }

    /// Lazy variant of [`logical_children`](Self::logical_children):
    /// calls `f` for each logical child in order; `f` returning `false`
    /// stops the walk (and no further proxy records are read). Positional
    /// path predicates like `SPEECH[1]` rely on this to avoid loading a
    /// whole scene to find its first speech.
    pub fn for_each_logical_child<F>(&self, ptr: NodePtr, f: &mut F) -> TreeResult<bool>
    where
        F: FnMut(NodePtr) -> TreeResult<bool>,
    {
        let tree = self.load(ptr.rid)?;
        let arena = preorder_to_arena(&tree, ptr.node);
        if tree.try_node(arena).is_none() {
            return Err(TreeError::BadNodePtr {
                rid: ptr.rid,
                node: ptr.node,
            });
        }
        self.expand_children_lazy(ptr.rid, &tree, arena, f)
    }

    fn expand_children_lazy<F>(
        &self,
        rid: Rid,
        tree: &RecordTree,
        node: PNodeId,
        f: &mut F,
    ) -> TreeResult<bool>
    where
        F: FnMut(NodePtr) -> TreeResult<bool>,
    {
        for &c in tree.children(node) {
            match tree.node(c).content {
                PContent::Proxy(target) => {
                    if tree.node(c).label != LABEL_NONE {
                        // Label digest: facade-rooted child, root at
                        // pre-order index 0 — no page read needed.
                        if !f(NodePtr::new(target, 0))? {
                            return Ok(false);
                        }
                        continue;
                    }
                    let child = self.load(target)?;
                    let root = child.root();
                    if child.node(root).is_scaffolding_aggregate() {
                        if !self.expand_children_lazy(target, &child, root, f)? {
                            return Ok(false);
                        }
                    } else if child.node(root).is_prefix() {
                        // Split prefix chain's lower piece: deeper levels
                        // only (see `expand_children`).
                        debug_assert!(tree.node(node).is_prefix());
                    } else if !f(NodePtr::new(target, preorder_index(&child, root)))? {
                        return Ok(false);
                    }
                }
                PContent::Prefix(_) | PContent::Continuation(_) => {}
                _ => {
                    if !f(NodePtr::new(rid, preorder_index(tree, c)))? {
                        return Ok(false);
                    }
                }
            }
        }
        // Late children from the continuation group (depth-aware packing).
        if let Some((_, path, group)) = spilled_path(tree) {
            if let Some(i) = path.iter().position(|&p| p == node) {
                return self.expand_group_children_lazy(group, i, f);
            }
        }
        Ok(true)
    }

    /// Lazy counterpart of [`expand_group_children`](Self::expand_group_children).
    fn expand_group_children_lazy<F>(
        &self,
        group_rid: Rid,
        level: usize,
        f: &mut F,
    ) -> TreeResult<bool>
    where
        F: FnMut(NodePtr) -> TreeResult<bool>,
    {
        let group = self.load(group_rid)?;
        let chain = prefix_chain(&group);
        if let Some(&pnode) = chain.get(level) {
            return self.expand_children_lazy(group_rid, &group, pnode, f);
        }
        let Some(&last) = chain.last() else {
            return Ok(true);
        };
        for &c in group.children(last) {
            if let PContent::Proxy(target) = group.node(c).content {
                let child = self.load(target)?;
                if child.node(child.root()).is_prefix() {
                    return self.expand_group_children_lazy(target, level - chain.len(), f);
                }
            }
        }
        Ok(true)
    }

    /// Scans the subtree of `ptr` **within its own record only**, calling
    /// `f` for every facade node and for every proxy to a child record, in
    /// document (pre-)order. Exactly one record is loaded — and `load`
    /// releases its page pin before `f` ever runs — so the record is a
    /// natural unit of parallel work: concurrent scanners claiming whole
    /// records keep buffer pins short and never read a record twice.
    /// Scaffolding aggregates are descended through silently (they carry
    /// no logical node). `f` returning `false` stops the scan.
    pub fn scan_record_subtree<F>(&self, ptr: NodePtr, f: &mut F) -> TreeResult<bool>
    where
        F: FnMut(&RecordEntry) -> TreeResult<bool>,
    {
        // Scan-hinted load: record-queue scans touch each page once, so
        // their frames enter the buffer pool at cold priority.
        let tree = self.load_hinted(ptr.rid, AccessHint::Scan)?;
        let arena = preorder_to_arena(&tree, ptr.node);
        if tree.try_node(arena).is_none() {
            return Err(TreeError::BadNodePtr {
                rid: ptr.rid,
                node: ptr.node,
            });
        }
        let mut stack = vec![arena];
        while let Some(n) = stack.pop() {
            let node = tree.node(n);
            match &node.content {
                // Child records are reported, never followed: following
                // them here would chain page reads under one task and
                // defeat record-granular work claiming.
                PContent::Proxy(target) => {
                    if !f(&RecordEntry::ChildRecord {
                        ptr: NodePtr::new(*target, 0),
                        label: node.label,
                    })? {
                        return Ok(false);
                    }
                    continue;
                }
                // A continuation group is a child record too — its facades
                // (late children of this record's spilled path) belong to
                // the scanned subtree, and the placeholder's pre-order
                // position is exactly their document-order slot. The group
                // is entered at the prefix matching the scan's start
                // level, so late children of *outer* levels stay out.
                PContent::Continuation(target) => {
                    let entry = self.continuation_entry(&tree, arena, *target)?;
                    if !f(&RecordEntry::ChildRecord {
                        ptr: entry,
                        label: LABEL_NONE,
                    })? {
                        return Ok(false);
                    }
                    continue;
                }
                // Prefix entries are scaffolding: no logical node of their
                // own, but their children (the copied ancestor's late
                // children) are scanned.
                PContent::Prefix(_) => {}
                PContent::Literal(_) => {
                    if node.is_facade()
                        && !f(&RecordEntry::Node {
                            ptr: NodePtr::new(ptr.rid, preorder_index(&tree, n)),
                            label: node.label,
                            literal: true,
                        })?
                    {
                        return Ok(false);
                    }
                }
                PContent::Aggregate(_) => {
                    if node.is_facade()
                        && !f(&RecordEntry::Node {
                            ptr: NodePtr::new(ptr.rid, preorder_index(&tree, n)),
                            label: node.label,
                            literal: false,
                        })?
                    {
                        return Ok(false);
                    }
                }
            }
            for &k in tree.children(n).iter().rev() {
                stack.push(k);
            }
        }
        Ok(true)
    }

    /// Resolves the scan entry point of a continuation group: the prefix
    /// entry matching the scan start's level on the holder's spilled path.
    fn continuation_entry(
        &self,
        tree: &RecordTree,
        start: PNodeId,
        target: Rid,
    ) -> TreeResult<NodePtr> {
        let (_, path, _) = spilled_path(tree).ok_or_else(|| {
            TreeError::Invariant("continuation entry on a record with no continuation".into())
        })?;
        let i0 = path.iter().position(|&p| p == start).ok_or_else(|| {
            TreeError::Invariant("scan start is not on the record's spilled path".into())
        })?;
        let group = self.load_hinted(target, AccessHint::Scan)?;
        let chain = prefix_chain(&group);
        let node = *chain.get(i0).ok_or_else(|| {
            TreeError::Invariant(format!(
                "continuation group {target}: prefix chain shorter than spilled path"
            ))
        })?;
        Ok(NodePtr::new(target, preorder_index(&group, node)))
    }

    /// The logical parent of the facade node at `ptr` (`None` for the tree
    /// root).
    pub fn logical_parent(&self, ptr: NodePtr) -> TreeResult<Option<NodePtr>> {
        let tree = self.load(ptr.rid)?;
        let arena = preorder_to_arena(&tree, ptr.node);
        let parent = tree
            .try_node(arena)
            .ok_or(TreeError::BadNodePtr {
                rid: ptr.rid,
                node: ptr.node,
            })?
            .parent;
        match parent {
            Some(p) => self.logical_parent_from(ptr.rid, p, &tree, false),
            None => {
                let parent_rid = tree.parent_rid;
                if parent_rid.is_invalid() {
                    return Ok(None);
                }
                let ptree = self.load(parent_rid)?;
                let proxy = find_proxy(&ptree, ptr.rid).ok_or_else(|| {
                    TreeError::Invariant(format!(
                        "record {parent_rid} has no proxy for {}",
                        ptr.rid
                    ))
                })?;
                let pp = ptree.node(proxy).parent.ok_or_else(|| {
                    TreeError::Invariant(format!("record {parent_rid}: detached proxy"))
                })?;
                self.logical_parent_from(parent_rid, pp, &ptree, false)
            }
        }
    }

    /// Root-to-node label path of a logical node: the labels of all its
    /// logical ancestors from the document root down, ending with the
    /// node's own label. Feeds path-summary maintenance: an inserted
    /// node's path identifies exactly the summary entry to bump. Cost is
    /// one record load per logical ancestor (record depth, not node
    /// depth, thanks to intra-record parent chains).
    pub fn label_path(&self, ptr: NodePtr) -> TreeResult<Vec<LabelId>> {
        let mut path = vec![self.node_info(ptr)?.label];
        let mut cur = ptr;
        while let Some(parent) = self.logical_parent(cur)? {
            path.push(self.node_info(parent)?.label);
            cur = parent;
        }
        path.reverse();
        Ok(path)
    }
}

/// Placement state of a sequential bulk append: the page currently being
/// filled. See [`TreeStore::append_record`].
#[derive(Debug, Default, Clone, Copy)]
pub struct AppendCursor {
    page: Option<u32>,
}

impl AppendCursor {
    /// A cursor that will allocate its first page on first use.
    pub fn new() -> AppendCursor {
        AppendCursor::default()
    }

    /// The page currently being filled, if any.
    pub fn page(&self) -> Option<u32> {
        self.page
    }
}

/// An insertion site: a record (already loaded), the physical parent node
/// within it, and the child index at which to attach.
struct Site {
    rid: Rid,
    tree: RecordTree,
    parent_node: PNodeId,
    index: usize,
}

/// Maps a pre-order index back to an arena id. For freshly loaded trees
/// these coincide (deserialisation numbers nodes in pre-order).
fn preorder_to_arena(tree: &RecordTree, pre: PNodeId) -> PNodeId {
    // Loaded trees are never mutated before resolution, so this is the
    // identity; kept as a function for clarity and future caching.
    let _ = tree;
    pre
}

/// Pre-order index of an (unmutated, freshly loaded) arena node.
fn preorder_index(tree: &RecordTree, arena: PNodeId) -> PNodeId {
    let _ = tree;
    arena
}

/// Finds the proxy (or continuation) node in `tree` pointing at `child`.
fn find_proxy(tree: &RecordTree, child: Rid) -> Option<PNodeId> {
    tree.pre_order(tree.root()).into_iter().find(|&n| {
        matches!(tree.node(n).content,
            PContent::Proxy(r) | PContent::Continuation(r) if r == child)
    })
}

/// True when the record carries depth-aware-packing structure that
/// in-place structural edits cannot preserve.
pub(crate) fn tree_is_packed(tree: &RecordTree) -> bool {
    tree.has_packed_entries()
}

/// True when `node`'s logical child list is entirely local to this
/// packed record, so an in-place insert cannot disturb the packed
/// structure: the node is not a prefix entry (its local children are
/// only the *late* tail of a child list whose head lives in an earlier
/// piece), and not on the spilled path (whose child lists continue in
/// the continuation group). Anything else inside a packed record — a
/// descendant of a prefix entry, content beside the spilled path — owns
/// its whole child list, and normalization moves such subtrees intact.
pub(crate) fn packed_site_is_plain(tree: &RecordTree, node: PNodeId) -> bool {
    if tree.node(node).is_prefix() {
        return false;
    }
    match spilled_path(tree) {
        Some((_, path, _)) => !path.contains(&node),
        None => true,
    }
}

/// The record's continuation placeholder and its target, if any (at most
/// one per record — enforced by the validator).
pub(crate) fn find_continuation(tree: &RecordTree) -> Option<(PNodeId, Rid)> {
    tree.pre_order(tree.root()).into_iter().find_map(|n| {
        if let PContent::Continuation(target) = tree.node(n).content {
            Some((n, target))
        } else {
            None
        }
    })
}

/// The record's *spilled path* — the chain of nodes from the record root
/// down to the continuation placeholder's parent, root first — plus the
/// placeholder node itself and the continuation-group RID. `None` when
/// the record has no continuation. The group's prefix chain mirrors the
/// path entry for entry; every consumer of the path ↔ chain
/// correspondence goes through this one helper.
pub(crate) fn spilled_path(tree: &RecordTree) -> Option<(PNodeId, Vec<PNodeId>, Rid)> {
    let (cont, target) = find_continuation(tree)?;
    let mut path = Vec::new();
    let mut at = tree.node(cont).parent;
    while let Some(p) = at {
        path.push(p);
        at = tree.node(p).parent;
    }
    path.reverse();
    Some((cont, path, target))
}

/// The prefix chain of a continuation-group record: the record root and
/// its first-child descendants while they are prefix entries, root first.
pub(crate) fn prefix_chain(tree: &RecordTree) -> Vec<PNodeId> {
    let mut chain = Vec::new();
    let mut at = tree.root();
    while tree.node(at).is_prefix() {
        chain.push(at);
        match tree.children(at).first() {
            Some(&first) if tree.node(first).is_prefix() => at = first,
            _ => break,
        }
    }
    chain
}

fn edge_child(tree: &RecordTree, node: PNodeId, first: bool) -> Option<PNodeId> {
    let kids = tree.children(node);
    if first {
        kids.first().copied()
    } else {
        kids.last().copied()
    }
}
