//! Streaming bulkloader — the paper's §4.3 *append* experiment, done right.
//!
//! The evaluation of *Efficient Storage of XML Data* stores documents by
//! driving an XML parser and inserting the tree "in pre-order, to
//! represent a 'bulkload' of or consecutive appends to a textual
//! representation" (§4.3). Routing every one of those appends through the
//! incremental tree-growth procedure (figure 5) costs O(record size) per
//! node: each insert re-loads, re-serialises and re-writes the enclosing
//! record, which is quadratic within a record and dominated by memcpy, not
//! by the clustering decisions the paper is about.
//!
//! [`BulkLoader`] replaces that path for whole-document loads. It consumes
//! the same pre-order event stream but builds records **bottom-up**:
//!
//! * only the **right spine** of the document — the chain of currently
//!   open elements — is held in memory, inside one in-flight
//!   [`RecordTree`];
//! * when the in-flight tree outgrows the net page capacity, maximal runs
//!   of already-**finished** sibling subtrees are packed into records of
//!   their own (grouped under a scaffolding aggregate, exactly like the
//!   split algorithm's helper nodes h1/h2 of figure 8) and replaced by a
//!   proxy;
//! * finished records are flushed through
//!   [`TreeStore::append_record`], which fills pages sequentially via
//!   freshly allocated buffers — no read-modify-write of earlier pages and
//!   no free-space search;
//! * the split matrix (§3.3) is honoured on the way: children whose matrix
//!   entry is *standalone* (0) become records of their own the moment they
//!   finish, children marked *keep-with-parent* (∞) are never packed away
//!   from their parent;
//! * standalone parent pointers (Appendix A) are patched bottom-up: a
//!   child record is written before its parent record exists, so its
//!   parent RID is patched exactly once, when the record holding its proxy
//!   is flushed.
//!
//! # Depth-aware packing
//!
//! When the document is deeper than a page, the open spine itself
//! overflows and no finished subtree can move: the loader then cuts the
//! spine into **pieces** — the upper levels flush as a record, the lower
//! chain stays in flight behind a placeholder *chain proxy*. Two problems
//! follow from depth, and both are solved separator-style (the same idea
//! XRecursive applies to deep documents: store the parent path, keep
//! access shallow):
//!
//! * **Late children.** Content can arrive for a spilled level long after
//!   its piece flushed (the inner chain must close first). Instead of
//!   reserving one placeholder per spilled level (14 bytes each — it was
//!   the dominant per-level cost and made the record tree up to ~2× the
//!   per-node path's height), each piece carries a **single
//!   [`PContent::Continuation`] placeholder** for its whole spilled path,
//!   as the last child of the path's deepest node. Late children of *any*
//!   of the piece's levels re-attach through one **continuation-group
//!   record** whose root is a chain of [`PContent::Prefix`] entries — one
//!   labelled, scaffolding copy per spilled level, deeper levels hanging
//!   first-child. Late children of level *i* attach under prefix *i*,
//!   after its deeper-prefix child: exactly their document-order position,
//!   because level *i* only receives content once level *i + 1* closed.
//! * **Deferred closes.** A prefix entry emits no `Enter` on traversal —
//!   the real facade lives in the piece — but emits the level's deferred
//!   `Leave` once its children are done; facades whose subtree ends in a
//!   continuation skip their own `Leave` (see [`crate::reconstruct`]).
//!   A piece that closes without late children simply has its placeholder
//!   stripped and its facades close themselves.
//!
//! A spilled spine level therefore costs 6 bytes in its piece (the bare
//! embedded header) instead of 20, pieces hold ~3× more levels, and a
//! document of depth *d* yields a record tree whose height tracks the
//! split-matrix fanout rather than *d* — measured well *below* the
//! per-node path's height on every deep corpus (`BENCH_deep_nesting.json`;
//! the ≤1.1× acceptance envelope is enforced in CI). Groups spill like any
//! other in-flight tree: their open prefix chain splits across records
//! (the lower, prefix-rooted half rides behind a chain proxy), and a
//! *closed* chain suffix — final by construction — is cut into a dense
//! record of its own once it is worth one. Setting
//! [`TreeConfig::depth_packing`](crate::config::TreeConfig) to `false`
//! selects the per-level ablation layout (one level per piece, height ∝
//! depth) for A/B measurement.
//!
//! Structural edits cannot preserve the packed layout in place;
//! [`TreeStore::normalize_packed`] splices the groups back into their
//! piece and re-stores it through the ordinary split machinery before an
//! edit proceeds (the document manager drives this on demand).
//!
//! The result obeys every invariant of [`crate::validate::check_tree`] and
//! reconstructs to the identical logical document as the per-node path,
//! which remains in place for incremental edits and serves as the
//! differential-testing oracle. Unlike the per-node path, total work is
//! O(document bytes): each node is serialised once, each page written
//! once (plus an 8-byte in-buffer patch when its parent flushes).

use natix_storage::Rid;
use natix_xml::{LabelId, LiteralValue, LABEL_NONE};

use crate::error::{TreeError, TreeResult};
use crate::matrix::{SplitBehaviour, SplitMatrix};
use crate::model::{
    literal_body_len, PContent, PNodeId, RecordTree, EMBEDDED_HEADER, PROXY_BODY, STANDALONE_HEADER,
};
use crate::store::{AppendCursor, TreeStore};
use crate::version::WriteOp;

/// Compact the in-flight arena before it can exhaust `u16` node ids: the
/// arena only grows (removals tombstone), while live nodes are bounded by
/// the page capacity. Two allocations can happen per event, so any margin
/// below `u16::MAX` works; compacting earlier keeps the copies small.
const COMPACT_THRESHOLD: usize = 48_000;

/// A broken loader invariant, surfaced as an error instead of a panic.
/// Free-standing so `ok_or_else` closures can build it while `self` is
/// mutably borrowed.
fn bulk_invariant(what: &str) -> TreeError {
    TreeError::Invariant(format!("bulkload: {what}"))
}

/// Summary of one bulk load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BulkStats {
    /// RID of the tree's root record.
    pub root_rid: Rid,
    /// Records written.
    pub records: u64,
    /// Facade (logical) nodes stored.
    pub nodes: u64,
}

/// One spilled piece of the open spine: a flushed record whose spilled
/// path (the chain of open elements it carries, plus — for spilled
/// continuation groups — prefix copies of outer levels) may still receive
/// late children. `holder` is the flushed record, `sentinel` the unique
/// invalid RID written into its single continuation placeholder (patched
/// to the continuation-group record once one exists, or stripped when the
/// piece closes without late children).
#[derive(Debug, Clone)]
struct SpilledPiece {
    holder: Rid,
    sentinel: Rid,
    /// Labels of the piece's spilled path nodes, outermost first — the
    /// prefix chain a continuation group for this piece must carry.
    levels: Vec<LabelId>,
    /// Leading levels still open (levels close deepest-first, so
    /// `levels[open..]` are already closed).
    open: usize,
}

/// Streaming bottom-up document builder over a [`TreeStore`].
///
/// Feed it the pre-order event stream of exactly one document —
/// [`start_element`](Self::start_element) /
/// [`literal`](Self::literal) / [`end_element`](Self::end_element),
/// properly nested — then call [`finish`](Self::finish).
pub struct BulkLoader<'s> {
    store: &'s TreeStore,
    /// The whole load is one write operation of the record-version layer:
    /// snapshot readers observe the repository either entirely without or
    /// entirely with this document's records (publish happens when the
    /// loader drops — after `finish` or `abort`).
    _op: WriteOp<'s>,
    /// Snapshot of the split matrix (the store's matrix governs "future
    /// operations"; one load is one operation).
    matrix: SplitMatrix,
    /// Net page capacity — the record-size ceiling.
    capacity: usize,
    /// The in-flight tree: the lower part of the right spine of open
    /// elements plus the finished subtrees not yet packed into records.
    /// `None` before the root element arrives and while *detached* (the
    /// deepest open element lives in an already-flushed record; see
    /// `spilled`).
    cur: Option<RecordTree>,
    /// Arena ids of the open spine inside `cur`, outermost first: the
    /// still-open prefix entries of a continuation group (the first
    /// `prefix_base` entries), then the open elements. `spine[0]` is
    /// `cur.root()`; `spine[i + 1]` is always the *last* child of
    /// `spine[i]` (events arrive in pre-order, appends only — a prefix's
    /// leading deeper-prefix child stops being its last child exactly when
    /// content gets appended after it, at which point the deeper prefix
    /// has left the spine).
    spine: Vec<PNodeId>,
    /// Number of leading `spine` entries that are prefix entries — the
    /// still-open levels of the continuation group (or split-chain piece)
    /// being built. 0 for ordinary pieces.
    prefix_base: usize,
    /// True when flushing `cur` resolves the *top spilled piece's*
    /// continuation placeholder (cur is its continuation group); false
    /// when it resolves a chain placeholder (or nothing, for the root).
    cur_is_group: bool,
    /// The placeholder the eventual flush of `cur` resolves:
    /// `(holder, sentinel)`. `None` for the original root tree.
    cur_resolves: Option<(Rid, Rid)>,
    /// Spilled spine pieces, outermost first; the top entry is the deepest
    /// and closes first. Each carries one continuation placeholder through
    /// which late children of *any* of its levels re-attach.
    spilled: Vec<SpilledPiece>,
    /// Exact serialised size of `cur`, maintained incrementally.
    cur_size: usize,
    /// True once the root element has been closed.
    root_closed: bool,
    cursor: AppendCursor,
    /// RIDs of every record flushed so far, so an aborted load can delete
    /// them instead of leaking unreachable records. Cleared by `finish`.
    flushed: Vec<Rid>,
    /// RID of the record holding the document root (set on its flush).
    stored_root: Option<Rid>,
    /// Continuation placeholders that turned out unused (their piece
    /// closed without late children); stripped from their records by
    /// `finish`.
    unused_slots: Vec<(Rid, Rid)>,
    /// Monotonic counter making placeholder sentinels distinct.
    sentinels: u16,
    records: u64,
    nodes: u64,
}

impl<'s> BulkLoader<'s> {
    /// Creates a loader over `store`.
    pub fn new(store: &'s TreeStore) -> BulkLoader<'s> {
        BulkLoader {
            matrix: store.matrix().clone(),
            capacity: store.net_capacity(),
            _op: store.begin_write(),
            store,
            cur: None,
            spine: Vec::new(),
            prefix_base: 0,
            cur_is_group: false,
            cur_resolves: None,
            spilled: Vec::new(),
            cur_size: 0,
            root_closed: false,
            cursor: AppendCursor::new(),
            flushed: Vec::new(),
            stored_root: None,
            unused_slots: Vec::new(),
            sentinels: 0,
            records: 0,
            nodes: 0,
        }
    }

    /// A fresh placeholder RID: reads as invalid (`page == INVALID_PAGE`)
    /// but is distinguishable from other placeholders in the same record.
    fn new_sentinel(&mut self) -> Rid {
        self.sentinels = self.sentinels.wrapping_add(1);
        Rid::new(natix_storage::INVALID_PAGE, self.sentinels)
    }

    /// Aborts the load, deleting every record flushed so far — a failed or
    /// abandoned bulkload must not leak unreachable records into the
    /// segment. Deletion errors are ignored (best-effort cleanup on a path
    /// that is already failing).
    pub fn abort(mut self) {
        self.abort_in_place();
    }

    fn abort_in_place(&mut self) {
        for rid in self.flushed.drain(..) {
            let _ = self.store.discard_record(rid);
        }
    }

    fn state_err(&self, what: &str) -> TreeError {
        TreeError::Invariant(format!("bulkload: {what}"))
    }

    /// The in-flight tree, shared. Loader state transitions guarantee one
    /// exists on every caller's path; a broken transition surfaces as an
    /// error rather than a panic (tree code runs under the engine's
    /// latching protocols, where unwinding poisons shared state).
    fn cur_ref(&self) -> TreeResult<&RecordTree> {
        self.cur
            .as_ref()
            .ok_or_else(|| bulk_invariant("no in-flight tree"))
    }

    /// The in-flight tree, exclusive. See [`Self::cur_ref`].
    fn cur_mut(&mut self) -> TreeResult<&mut RecordTree> {
        self.cur
            .as_mut()
            .ok_or_else(|| bulk_invariant("no in-flight tree"))
    }

    /// The deepest open spine node.
    fn top(&self) -> TreeResult<PNodeId> {
        self.spine
            .last()
            .copied()
            .ok_or_else(|| bulk_invariant("empty spine"))
    }

    /// Opens an element with `label`.
    pub fn start_element(&mut self, label: LabelId) -> TreeResult<()> {
        if self.root_closed {
            return Err(self.state_err("content after the root element closed"));
        }
        self.nodes += 1;
        if self.cur.is_none() {
            if self.spilled.is_empty() {
                // The document root.
                let tree = RecordTree::new(label, PContent::Aggregate(Vec::new()), Rid::invalid());
                self.spine.push(tree.root());
                self.cur = Some(tree);
                self.prefix_base = 0;
                self.cur_is_group = false;
                self.cur_resolves = None;
                self.cur_size = STANDALONE_HEADER;
                return Ok(());
            }
            // Detached: a late child of a spilled open element — start the
            // deepest spilled piece's continuation group.
            self.open_continuation()?;
        }
        let parent = self.top()?;
        let tree = self.cur_mut()?;
        let node = tree.alloc(label, PContent::Aggregate(Vec::new()));
        let at = tree.children(parent).len();
        tree.attach(parent, at, node);
        self.spine.push(node);
        self.cur_size += EMBEDDED_HEADER;
        self.maybe_compact()?;
        self.spill_until_fits()
    }

    /// Appends a literal under the currently open element.
    pub fn literal(&mut self, label: LabelId, value: LiteralValue) -> TreeResult<()> {
        if self.root_closed {
            return Err(self.state_err("content after the root element closed"));
        }
        if self.cur.is_none() {
            if self.spilled.is_empty() {
                return Err(self.state_err("literal outside the root element"));
            }
            self.open_continuation()?;
        }
        let body = literal_body_len(&value);
        if STANDALONE_HEADER + body > self.capacity {
            // Same bound as the per-node path: a single node larger than
            // the capacity can never be stored (§3.2.2 splits at node
            // granularity); callers chunk long text.
            return Err(TreeError::OversizedNode {
                size: STANDALONE_HEADER + body,
                max: self.capacity,
            });
        }
        self.nodes += 1;
        let parent = self.top()?;
        // Prefix entries carry the copied ancestor's label, so the matrix
        // lookup is uniform across pieces and continuation groups.
        let parent_label = self.cur_ref()?.node(parent).label;
        if self.matrix.get(parent_label, label) == SplitBehaviour::Standalone {
            // §3.3: "x is stored as a standalone node"; the proxy goes into
            // the designated record.
            let child = RecordTree::new(label, PContent::Literal(value), Rid::invalid());
            let rid = self.write_record(&child)?;
            let digest = self.store.proxy_digest(&child);
            let tree = self.cur_mut()?;
            let proxy = tree.alloc(digest, PContent::Proxy(rid));
            let at = tree.children(parent).len();
            tree.attach(parent, at, proxy);
            self.cur_size += EMBEDDED_HEADER + PROXY_BODY;
        } else {
            let tree = self.cur_mut()?;
            let node = tree.alloc(label, PContent::Literal(value));
            let at = tree.children(parent).len();
            tree.attach(parent, at, node);
            self.cur_size += EMBEDDED_HEADER + body;
        }
        self.maybe_compact()?;
        self.spill_until_fits()
    }

    /// Closes the currently open element.
    pub fn end_element(&mut self) -> TreeResult<()> {
        if self.root_closed {
            return Err(self.state_err("end_element without a matching start_element"));
        }
        if self.cur.is_none() {
            // Detached: the event closes the deepest open level of the top
            // spilled piece, which received no late children (a piece with
            // a live continuation group closes through the group below).
            let Some(piece) = self.spilled.last_mut() else {
                return Err(self.state_err("end_element without a matching start_element"));
            };
            debug_assert!(piece.open > 0, "piece with closed levels still stacked");
            piece.open -= 1;
            if piece.open == 0 {
                // The whole piece closed without late children: its
                // continuation placeholder is unused; strip it at finish.
                let piece = self
                    .spilled
                    .pop()
                    .ok_or_else(|| bulk_invariant("closed piece missing from the spill stack"))?;
                self.unused_slots.push((piece.holder, piece.sentinel));
                if self.spilled.is_empty() {
                    self.root_closed = true;
                }
            }
            return Ok(());
        }
        if self.prefix_base > 0 && self.spine.len() == self.prefix_base {
            // The event closes the deepest still-open prefix level of the
            // continuation group (or split-chain piece) being built. The
            // prefix entry stays in the tree — it emits the level's
            // deferred `Leave` — but leaves the spine; late children of
            // the next-outer level now append after it.
            self.spine.pop();
            self.prefix_base -= 1;
            if self.cur_is_group {
                let piece = self.spilled.last_mut().ok_or_else(|| {
                    bulk_invariant("continuation group without its spilled piece")
                })?;
                debug_assert!(piece.open > 0);
                piece.open -= 1;
            }
            if self.prefix_base == 0 {
                // All levels closed: the group (or chain piece) is done.
                let was_group = self.cur_is_group;
                self.flush_cur_piece()?;
                if was_group {
                    self.spilled.pop().ok_or_else(|| {
                        bulk_invariant("continuation group without its spilled piece")
                    })?;
                    if self.spilled.is_empty() {
                        self.root_closed = true;
                    }
                }
            }
            return Ok(());
        }
        let closed = self
            .spine
            .pop()
            .ok_or_else(|| bulk_invariant("end_element with an empty spine"))?;
        if self.spine.is_empty() {
            debug_assert_eq!(self.prefix_base, 0);
            if self.spilled.is_empty() {
                // The document root closed; `finish` flushes the tree.
                self.root_closed = true;
                return Ok(());
            }
            // A chain piece (rooted at a real element) is complete.
            self.flush_cur_piece()?;
            return Ok(());
        }
        let parent = self.top()?;
        let parent_label = self.cur_ref()?.node(parent).label;
        let closed_label = self.cur_ref()?.node(closed).label;
        if self.matrix.get(parent_label, closed_label) == SplitBehaviour::Standalone {
            // The finished subtree becomes a record of its own right away.
            let tree = self.cur_mut()?;
            let at = tree
                .children(parent)
                .iter()
                .position(|&c| c == closed)
                .ok_or_else(|| bulk_invariant("closed element not listed under its parent"))?;
            let sub_size = tree.embedded_size(closed);
            let tree = self.cur_mut()?;
            let child = RecordTree::from_transplant(tree, closed);
            let rid = self.write_record(&child)?;
            let digest = self.store.proxy_digest(&child);
            let tree = self.cur_mut()?;
            let proxy = tree.alloc(digest, PContent::Proxy(rid));
            tree.attach(parent, at, proxy);
            self.cur_size = self.cur_size - sub_size + EMBEDDED_HEADER + PROXY_BODY;
            self.maybe_compact()?;
        }
        self.spill_until_fits()
    }

    /// Flushes the remaining in-flight tree, resolves and strips the
    /// outstanding placeholders, and returns the load summary.
    pub fn finish(mut self) -> TreeResult<BulkStats> {
        if !self.root_closed {
            self.abort_in_place();
            return Err(
                self.state_err(if self.cur.is_none() && self.spilled.is_empty() {
                    "empty document"
                } else {
                    "finish with unclosed elements"
                }),
            );
        }
        if let Some(tree) = self.cur.as_ref() {
            debug_assert_eq!(
                self.cur_size,
                tree.record_size(),
                "size accounting must be exact"
            );
        }
        let result = (|| -> TreeResult<Rid> {
            if self.cur.is_some() {
                self.flush_cur_piece()?;
            }
            // Strip the continuation placeholders that were never used.
            let unused = std::mem::take(&mut self.unused_slots);
            for (holder, sentinel) in unused {
                self.store.remove_placeholder(holder, sentinel)?;
            }
            self.stored_root
                .ok_or_else(|| bulk_invariant("finish without a stored root record"))
        })();
        match result {
            Ok(root_rid) => {
                // The document is complete and reachable from its root
                // record; nothing to clean up any more.
                self.flushed.clear();
                Ok(BulkStats {
                    root_rid,
                    records: self.records,
                    nodes: self.nodes,
                })
            }
            Err(e) => {
                self.abort_in_place();
                Err(e)
            }
        }
    }

    /// Starts the continuation group of the deepest spilled piece: an
    /// in-flight tree whose root is a prefix chain copying *all* of the
    /// piece's spilled-path levels (separator-style — one prefix per
    /// level, deeper levels hanging first-child), with the still-open
    /// levels forming the spine base. Late children of level *i* attach
    /// under prefix *i*, after its deeper-prefix child — exactly their
    /// document-order position, since level *i* only receives content once
    /// level *i + 1* has closed. The group's flush (or spill) resolves the
    /// piece's single continuation placeholder.
    fn open_continuation(&mut self) -> TreeResult<()> {
        let piece = self
            .spilled
            .last()
            .ok_or_else(|| bulk_invariant("continuation without a spilled piece"))?;
        let (holder, sentinel) = (piece.holder, piece.sentinel);
        let levels = piece.levels.clone();
        let open = piece.open;
        debug_assert!(open > 0, "late child for a fully closed piece");
        let mut tree = RecordTree::new(levels[0], PContent::Prefix(Vec::new()), holder);
        self.spine.clear();
        self.spine.push(tree.root());
        let mut prev = tree.root();
        for (i, &lv) in levels.iter().enumerate().skip(1) {
            let p = tree.alloc(lv, PContent::Prefix(Vec::new()));
            tree.attach(prev, 0, p);
            prev = p;
            if i < open {
                self.spine.push(p);
            }
        }
        self.prefix_base = open;
        self.cur_is_group = true;
        self.cur_resolves = Some((holder, sentinel));
        self.cur_size = STANDALONE_HEADER + (levels.len() - 1) * EMBEDDED_HEADER;
        self.cur = Some(tree);
        Ok(())
    }

    /// Flushes `cur` as a complete record and resolves the placeholder it
    /// was created for. Leaves the loader detached.
    fn flush_cur_piece(&mut self) -> TreeResult<()> {
        let tree = self
            .cur
            .take()
            .ok_or_else(|| bulk_invariant("flush without an in-flight piece"))?;
        self.spine.clear();
        self.prefix_base = 0;
        self.cur_is_group = false;
        let rid = self.write_record(&tree)?;
        if tree.parent_rid.is_invalid() {
            debug_assert!(self.stored_root.is_none());
            self.stored_root = Some(rid);
        }
        if let Some((holder, sentinel)) = self.cur_resolves.take() {
            self.store.repoint_proxy(holder, sentinel, rid)?;
        }
        Ok(())
    }

    // ==================================================================
    // Packing.
    // ==================================================================

    fn write_record(&mut self, tree: &RecordTree) -> TreeResult<Rid> {
        let rid = self.store.append_record(tree, &mut self.cursor)?;
        self.flushed.push(rid);
        self.records += 1;
        Ok(rid)
    }

    /// Packs finished subtrees into records until the in-flight tree fits
    /// the net page capacity again.
    fn spill_until_fits(&mut self) -> TreeResult<()> {
        while self.cur_size > self.capacity {
            // Continuation groups first shed their *closed* prefix chain
            // once it is worth a dense record of its own: the chain plus
            // the late children its levels collected is final, and cutting
            // it beats evicting those children one tiny record at a time.
            if self.spill_closed_chain(self.capacity * 3 / 4)? {
                continue;
            }
            // Prefer runs that do not *start* with an already-packed proxy:
            // letting proxies accumulate until they fill a run of their own
            // yields a record tree with logarithmic fan-out, instead of one
            // nested group record per eviction.
            if self.spill_once(false, false)? {
                continue;
            }
            if self.spill_once(false, true)? {
                continue;
            }
            // Everything evictable is pinned by ∞ matrix entries; like the
            // split planner's fallback, "kept as long as possible in the
            // same record" ends where the page does.
            if self.spill_once(true, false)? {
                continue;
            }
            if self.spill_once(true, true)? {
                continue;
            }
            // No finished subtree can move: the open spine itself carries
            // the weight (deeply nested documents). Break the spine across
            // records, upper part first.
            if self.spill_spine()? {
                continue;
            }
            // Last resort for continuation groups: shed the closed prefix
            // chain no matter how small it is.
            if self.spill_closed_chain(0)? {
                continue;
            }
            return Err(TreeError::OversizedNode {
                size: self.cur_size,
                max: self.capacity,
            });
        }
        Ok(())
    }

    /// Flushes the upper part of the open spine as a record of its own,
    /// leaving the lower part in flight — the bulkload analogue of the
    /// incremental path splitting a too-deep chain across records. The
    /// flushed record holds one placeholder proxy for the rest of the
    /// chain (patched when the next piece flushes) and — with depth-aware
    /// packing — a **single** continuation placeholder for the whole
    /// spilled path: late children of any of its levels, arriving after
    /// the inner chain closes, re-attach through one continuation-group
    /// record whose prefix chain mirrors the path (so a document of depth
    /// *d* costs 6 bytes per spilled level instead of 20, and one group
    /// record per piece instead of one per level). With `depth_packing`
    /// off, each spilled level becomes its own single-level piece — the
    /// pre-depth-aware layout, kept for A/B comparison. Returns false when
    /// no spine prefix fits a record.
    fn spill_spine(&mut self) -> TreeResult<bool> {
        if self.spine.len() < 2 {
            return Ok(false);
        }
        // Split-chain pieces and continuation groups always use multi-level
        // pieces: their spilled path may contain prefix entries, whose
        // chain a single-level piece could not carry.
        let packed = self.store.config().depth_packing || self.prefix_base > 0;
        // The upper record is everything except the subtree at spine[k],
        // plus the chain placeholder and the continuation placeholder;
        // embedded_size(spine[k]) shrinks as k grows, so take the largest
        // k that still fits (fullest record, shortest remaining chain).
        // With depth-aware packing disabled, pieces are cut one level at a
        // time (k = 1) — the ablation baseline whose record-tree height
        // tracks the document depth.
        let tree = self.cur_ref()?;
        let mut chosen = None;
        for k in 1..self.spine.len() {
            let upper = self.cur_size - tree.embedded_size(self.spine[k])
                + 2 * (EMBEDDED_HEADER + PROXY_BODY);
            if upper <= self.capacity {
                chosen = Some(k);
            } else {
                break;
            }
            if !packed {
                break; // single-level pieces
            }
        }
        let Some(k) = chosen else { return Ok(false) };
        let split_node = self.spine[k];
        let parent_of_split = self.spine[k - 1];
        let tree = self.cur_mut()?;
        let at = tree
            .children(parent_of_split)
            .iter()
            .position(|&c| c == split_node)
            .ok_or_else(|| bulk_invariant("spine child not listed under its parent"))?;
        let mut lower = RecordTree::from_transplant(tree, split_node);
        // Chain placeholder where the lower chain used to hang.
        let chain_sentinel = self.new_sentinel();
        let tree = self.cur_mut()?;
        let proxy = tree.alloc(LABEL_NONE, PContent::Proxy(chain_sentinel));
        tree.attach(parent_of_split, at, proxy);
        // One continuation placeholder for the whole spilled path, as the
        // last child of its deepest node (right after the chain proxy).
        let piece = {
            let sentinel = self.new_sentinel();
            let levels: Vec<LabelId> = {
                let tree = self.cur_ref()?;
                self.spine[..k]
                    .iter()
                    .map(|&n| tree.node(n).label)
                    .collect()
            };
            let tree = self.cur_mut()?;
            let p = tree.alloc(LABEL_NONE, PContent::Continuation(sentinel));
            let end = tree.children(parent_of_split).len();
            tree.attach(parent_of_split, end, p);
            SpilledPiece {
                holder: Rid::invalid(), // patched to upper_rid below
                sentinel,
                levels,
                open: k,
            }
        };
        let upper = self
            .cur
            .take()
            .ok_or_else(|| bulk_invariant("spine spill without an in-flight tree"))?;
        let was_group = self.cur_is_group;
        let resolves = self.cur_resolves.take();
        let remaining_depth = self.spine.len() - k;
        let lower_prefixes = self.prefix_base.saturating_sub(k);
        self.spine.clear();
        self.prefix_base = 0;
        self.cur_is_group = false;
        let upper_rid = self.write_record(&upper)?;
        if upper.parent_rid.is_invalid() {
            // This record holds the document root: it is the tree root.
            debug_assert!(self.stored_root.is_none());
            self.stored_root = Some(upper_rid);
        }
        if let Some((holder, sentinel)) = resolves {
            // The upper piece is the record its placeholder was waiting
            // for (a chain piece's predecessor or a continuation group).
            self.store.repoint_proxy(holder, sentinel, upper_rid)?;
        }
        // Register the spilled piece. A spilled continuation group
        // *replaces* the piece it was resolving (its still-open levels are
        // now tracked by the flushed group record); everything else stacks
        // a new piece.
        {
            let mut piece = piece;
            piece.holder = upper_rid;
            if was_group {
                *self.spilled.last_mut().ok_or_else(|| {
                    bulk_invariant("continuation group without its spilled piece")
                })? = piece;
            } else {
                self.spilled.push(piece);
            }
        }
        // The lower chain continues in flight, parented on the record that
        // now holds its (placeholder) proxy.
        lower.parent_rid = upper_rid;
        self.cur_size = lower.record_size();
        self.cur_resolves = Some((upper_rid, chain_sentinel));
        // The spine below the split survives as the chain of last children
        // from the new root (no placeholders were added below the split);
        // leading prefix entries below the split stay prefix spine.
        self.prefix_base = lower_prefixes;
        let mut node = lower.root();
        self.spine.push(node);
        for _ in 1..remaining_depth {
            node = *lower
                .children(node)
                .last()
                .ok_or_else(|| bulk_invariant("spine level with no children"))?;
            self.spine.push(node);
        }
        self.cur = Some(lower);
        Ok(true)
    }

    /// Flushes the closed part of a continuation group's prefix chain —
    /// the first-child prefix subtree below the deepest *open* prefix —
    /// as a complete record of its own, leaving a chain proxy in its
    /// place. Closed levels receive no further content, so the subtree
    /// (deferred `Leave`s plus the late children those levels collected
    /// while open) is final; the reassembly machinery already follows
    /// proxied prefix-rooted records as split chains. Returns false when
    /// there is no closed chain, it is smaller than `min_bytes` (as a
    /// standalone record), or cutting it would not shrink the record.
    fn spill_closed_chain(&mut self, min_bytes: usize) -> TreeResult<bool> {
        if self.prefix_base == 0 {
            return Ok(false);
        }
        let bottom = self.spine[self.prefix_base - 1];
        let tree = self.cur_ref()?;
        let Some(&first) = tree.children(bottom).first() else {
            return Ok(false);
        };
        if !tree.node(first).is_prefix() {
            return Ok(false);
        }
        if tree.standalone_size(first) < min_bytes {
            return Ok(false);
        }
        // Cut as high as a record can take: descend the first-child chain
        // while the subtree would overflow a record of its own.
        let mut head = first;
        while tree.standalone_size(head) > self.capacity {
            match tree.children(head).first() {
                Some(&next) if tree.node(next).is_prefix() => head = next,
                _ => return Ok(false),
            }
        }
        let cut = tree.embedded_size(head);
        if cut <= EMBEDDED_HEADER + PROXY_BODY {
            return Ok(false);
        }
        let bottom = tree
            .node(head)
            .parent
            .ok_or_else(|| bulk_invariant("closed chain head without a parent"))?;
        let tree = self.cur_mut()?;
        let piece = RecordTree::from_transplant(tree, head);
        // Parent pointer: patched automatically when the holder flushes
        // (append_record re-homes every record its proxies reference).
        let rid = self.write_record(&piece)?;
        let tree = self.cur_mut()?;
        let proxy = tree.alloc(LABEL_NONE, PContent::Proxy(rid));
        tree.attach(bottom, 0, proxy);
        self.cur_size = self.cur_size - cut + EMBEDDED_HEADER + PROXY_BODY;
        self.maybe_compact()?;
        Ok(true)
    }

    /// Packs the first maximal run of finished, evictable sibling subtrees
    /// into one record. Returns false when no such run exists.
    fn spill_once(&mut self, ignore_matrix: bool, allow_proxy_start: bool) -> TreeResult<bool> {
        // Sweep the spine top-down: upper levels hold the oldest finished
        // subtrees (titles, earlier acts), which pack into records first —
        // the same front-to-back order in which the incremental path splits
        // them off, and the order that keeps pages filling sequentially.
        for level in 0..self.spine.len() {
            let parent = self.spine[level];
            let spine_child = self.spine.get(level + 1).copied();
            if let Some((start, count, bytes)) =
                self.find_run(parent, spine_child, ignore_matrix, allow_proxy_start)
            {
                self.flush_run(parent, start, count, bytes)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Finds the first run of consecutive evictable finished children of
    /// `parent`: at most `capacity`-sized, skipping the open (spine) child
    /// and — unless `ignore_matrix` — children pinned by ∞ entries. Unless
    /// `allow_proxy_start`, a proxy cannot *start* a run (packing the
    /// previous group record into every new group would chain records
    /// linearly). Returns `(start index, count, embedded bytes)`.
    fn find_run(
        &self,
        parent: PNodeId,
        spine_child: Option<PNodeId>,
        ignore_matrix: bool,
        allow_proxy_start: bool,
    ) -> Option<(usize, usize, usize)> {
        let tree = self.cur.as_ref()?;
        let parent_label = tree.node(parent).label;
        let kids = tree.children(parent);
        // Budget for the children's embedded bodies inside a group record:
        // the scaffolding root costs a standalone header.
        let budget = self.capacity - STANDALONE_HEADER;
        let mut start = 0usize;
        let mut count = 0usize;
        let mut bytes = 0usize;
        for (i, &k) in kids.iter().enumerate() {
            let node = tree.node(k);
            // Prefix entries (and the deeper chain under them) are
            // structure, not content: evicting one would sever the spilled
            // path ↔ prefix chain correspondence. The matrix pins
            // structural children unconditionally — `ignore_matrix` (the
            // all-pinned fallback) never overrides that — and facade
            // children per its entries.
            let structural = node.is_prefix() || node.is_continuation();
            let behaviour = self
                .matrix
                .packing_behaviour(parent_label, node.label, structural);
            let pinned = behaviour == SplitBehaviour::KeepWithParent
                && (structural || (!ignore_matrix && node.is_facade()));
            let evictable = Some(k) != spine_child
                && !pinned
                && (allow_proxy_start || count > 0 || !node.is_proxy());
            if evictable {
                let sz = tree.embedded_size(k);
                if count > 0 && bytes + sz > budget {
                    break; // run full — pack what we have
                }
                if sz > budget {
                    // A single finished subtree close to a whole page:
                    // record of its own (no scaffolding wrapper would fit).
                    // Cannot happen for freshly finished subtrees (they
                    // spill while open), only via pathological matrices.
                    continue;
                }
                if count == 0 {
                    start = i;
                }
                count += 1;
                bytes += sz;
            } else if count > 0 {
                break;
            }
        }
        // A run must shrink the record: replacing it with a proxy costs
        // EMBEDDED_HEADER + PROXY_BODY bytes.
        (count > 0 && bytes > EMBEDDED_HEADER + PROXY_BODY).then_some((start, count, bytes))
    }

    /// Extracts children `[start, start + count)` of `parent` into a new
    /// record (scaffolding-rooted for sibling groups, facade-rooted for a
    /// single subtree) and splices a proxy in their place.
    fn flush_run(
        &mut self,
        parent: PNodeId,
        start: usize,
        count: usize,
        bytes: usize,
    ) -> TreeResult<()> {
        let tree = self.cur_mut()?;
        let record = if count == 1 {
            let child = tree.children(parent)[start];
            RecordTree::from_transplant(tree, child)
        } else {
            // Sibling group under a scaffolding aggregate — the helper
            // objects h1/h2 of the paper's figures 3 and 8.
            let mut group =
                RecordTree::new(LABEL_NONE, PContent::Aggregate(Vec::new()), Rid::invalid());
            for i in 0..count {
                let child = tree.children(parent)[start];
                let moved = tree.transplant(child, &mut group);
                group.attach(group.root(), i, moved);
            }
            group
        };
        let rid = self.write_record(&record)?;
        // Single-subtree runs are facade-rooted: their proxy carries the
        // label digest. Sibling groups (scaffolding-rooted) stay "must
        // read".
        let digest = self.store.proxy_digest(&record);
        let tree = self.cur_mut()?;
        let proxy = tree.alloc(digest, PContent::Proxy(rid));
        tree.attach(parent, start, proxy);
        self.cur_size = self.cur_size - bytes + EMBEDDED_HEADER + PROXY_BODY;
        self.maybe_compact()?;
        Ok(())
    }

    /// Rebuilds the in-flight arena when tombstones (from packed-away
    /// subtrees) approach the `u16` id space. Live nodes are bounded by
    /// the page capacity, so this copies little and happens rarely.
    fn maybe_compact(&mut self) -> TreeResult<()> {
        let Some(mut old) = self.cur.take_if(|t| t.arena_len() >= COMPACT_THRESHOLD) else {
            return Ok(());
        };
        let root = old.root();
        let mut fresh = RecordTree::from_transplant(&mut old, root);
        // from_transplant starts a parentless tree — carry the parent
        // pointer over, or compacting a chain piece / continuation group
        // (parented on an earlier chain record) would silently turn it
        // into a second "root" record.
        fresh.parent_rid = old.parent_rid;
        // The spine is exactly the chain of last children from the root
        // (appends only happen at the spine), so it rebuilds by walking
        // down `depth` levels.
        let depth = self.spine.len();
        self.spine.clear();
        if depth > 0 {
            let mut at = fresh.root();
            self.spine.push(at);
            for _ in 1..depth {
                at = *fresh
                    .children(at)
                    .last()
                    .ok_or_else(|| bulk_invariant("spine level with no children"))?;
                self.spine.push(at);
            }
        }
        self.cur = Some(fresh);
        Ok(())
    }
}

/// Convenience: bulk-load a logical [`natix_xml::Document`] into `store`,
/// chunking long string literals into consecutive sibling literals of at
/// most `chunk_limit` bytes (serialisation-identical for XML character
/// data; `None` disables chunking). Returns the load summary.
pub fn bulkload_document(
    store: &TreeStore,
    doc: &natix_xml::Document,
    chunk_limit: Option<usize>,
) -> TreeResult<BulkStats> {
    let mut loader = BulkLoader::new(store);
    match feed_document(&mut loader, doc, chunk_limit) {
        Ok(()) => loader.finish(),
        Err(e) => {
            // Never leak the records flushed before the failure.
            loader.abort();
            Err(e)
        }
    }
}

fn feed_document(
    loader: &mut BulkLoader<'_>,
    doc: &natix_xml::Document,
    chunk_limit: Option<usize>,
) -> TreeResult<()> {
    use natix_xml::NodeData;
    // Pre-order with explicit close events.
    let mut stack: Vec<(natix_xml::NodeIdx, bool)> = vec![(doc.root(), false)];
    while let Some((n, closing)) = stack.pop() {
        if closing {
            loader.end_element()?;
            continue;
        }
        match doc.data(n) {
            NodeData::Element(label) => {
                loader.start_element(*label)?;
                stack.push((n, true));
                for &c in doc.children(n).iter().rev() {
                    stack.push((c, false));
                }
            }
            NodeData::Literal { label, value } => match (chunk_limit, value) {
                // Only character data may be split into sibling literals
                // (serialisation-identical for XML text). Attribute values
                // and other labelled literals must stay whole — splitting
                // them would duplicate the attribute — so an oversized one
                // surfaces as `OversizedNode` instead of silent truncation.
                (Some(limit), LiteralValue::String(s))
                    if s.len() > limit && *label == natix_xml::LABEL_TEXT =>
                {
                    for chunk in natix_xml::chunk_str(s, limit) {
                        loader.literal(*label, LiteralValue::String(chunk.to_owned()))?;
                    }
                }
                _ => loader.literal(*label, value.clone())?,
            },
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TreeConfig;
    use crate::validate::check_tree;
    use natix_storage::{BufferManager, EvictionPolicy, IoStats, MemStorage, StorageManager};
    use natix_xml::LABEL_TEXT;
    use std::sync::Arc;

    fn store(page_size: usize, matrix: SplitMatrix) -> TreeStore {
        let backend = Arc::new(MemStorage::new(page_size).unwrap());
        let bm = Arc::new(BufferManager::new(
            backend,
            256,
            EvictionPolicy::Lru,
            IoStats::new_shared(),
        ));
        let sm = Arc::new(StorageManager::create(bm).unwrap());
        let seg = sm.create_segment("docs").unwrap();
        TreeStore::new(sm, seg, TreeConfig::paper(), matrix).unwrap()
    }

    fn text(s: &str) -> LiteralValue {
        LiteralValue::String(s.to_string())
    }

    #[test]
    fn single_record_document() {
        let st = store(2048, SplitMatrix::all_other());
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        l.start_element(11).unwrap();
        l.literal(LABEL_TEXT, text("OTHELLO")).unwrap();
        l.end_element().unwrap();
        l.end_element().unwrap();
        let stats = l.finish().unwrap();
        assert_eq!(stats.records, 1);
        assert_eq!(stats.nodes, 3);
        let s = check_tree(&st, stats.root_rid).unwrap();
        assert_eq!(s.records, 1);
        assert_eq!(s.facade_nodes, 3);
    }

    #[test]
    fn overflowing_document_packs_groups() {
        let st = store(512, SplitMatrix::all_other());
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        for i in 0..40 {
            l.start_element(11).unwrap();
            l.literal(
                LABEL_TEXT,
                text(&format!("payload number {i} {}", "x".repeat(i % 30))),
            )
            .unwrap();
            l.end_element().unwrap();
        }
        l.end_element().unwrap();
        let stats = l.finish().unwrap();
        assert!(stats.records > 1, "must have packed multiple records");
        let s = check_tree(&st, stats.root_rid).unwrap();
        assert_eq!(s.records as u64, stats.records);
        assert_eq!(s.facade_nodes, 81);
        assert!(s.scaffolding_aggregates > 0, "groups use helper aggregates");
    }

    #[test]
    fn standalone_matrix_entries_make_standalone_records() {
        let mut m = SplitMatrix::all_other();
        m.set(10, 11, SplitBehaviour::Standalone);
        let st = store(2048, m);
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        for _ in 0..3 {
            l.start_element(11).unwrap();
            l.literal(LABEL_TEXT, text("a")).unwrap();
            l.end_element().unwrap();
        }
        l.end_element().unwrap();
        let stats = l.finish().unwrap();
        assert_eq!(stats.records, 4, "root + three standalone children");
        check_tree(&st, stats.root_rid).unwrap();
    }

    #[test]
    fn keep_with_parent_is_never_packed_away() {
        let mut m = SplitMatrix::all_other();
        m.set(10, 12, SplitBehaviour::KeepWithParent);
        let st = store(512, m);
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        // One pinned child among many evictable ones.
        l.start_element(12).unwrap();
        l.literal(LABEL_TEXT, text("pinned")).unwrap();
        l.end_element().unwrap();
        for i in 0..40 {
            l.start_element(11).unwrap();
            l.literal(LABEL_TEXT, text(&format!("filler {i} {}", "y".repeat(20))))
                .unwrap();
            l.end_element().unwrap();
        }
        l.end_element().unwrap();
        let stats = l.finish().unwrap();
        check_tree(&st, stats.root_rid).unwrap();
        // The pinned subtree lives in the root record.
        let root = st.load(stats.root_rid).unwrap();
        let labels: Vec<LabelId> = root
            .pre_order(root.root())
            .iter()
            .map(|&n| root.node(n).label)
            .collect();
        assert!(
            labels.contains(&12),
            "∞-child must stay in the root record: {labels:?}"
        );
    }

    #[test]
    fn all_pinned_falls_back_to_ignoring_the_matrix() {
        let mut m = SplitMatrix::all_other();
        m.set(10, 11, SplitBehaviour::KeepWithParent);
        let st = store(512, m);
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        for i in 0..40 {
            l.start_element(11).unwrap();
            l.literal(
                LABEL_TEXT,
                text(&format!("long payload {i} {}", "z".repeat(25))),
            )
            .unwrap();
            l.end_element().unwrap();
        }
        l.end_element().unwrap();
        let stats = l.finish().unwrap();
        assert!(stats.records > 1);
        check_tree(&st, stats.root_rid).unwrap();
    }

    #[test]
    fn deep_documents_compact_the_arena() {
        let st = store(1024, SplitMatrix::all_other());
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        // Enough churn to trigger compaction several times.
        for i in 0..COMPACT_THRESHOLD + 5_000 {
            l.start_element(11).unwrap();
            if i % 3 == 0 {
                l.literal(LABEL_TEXT, text("body")).unwrap();
            }
            l.end_element().unwrap();
        }
        l.end_element().unwrap();
        let stats = l.finish().unwrap();
        let s = check_tree(&st, stats.root_rid).unwrap();
        assert_eq!(s.records as u64, stats.records);
    }

    #[test]
    fn deep_chains_split_the_spine_across_records() {
        // A purely nested document whose open spine alone exceeds the net
        // page capacity: the loader must chain records top-down instead of
        // failing (per-node insertion handles this via separator splits).
        for page_size in [512usize, 2048] {
            let st = store(page_size, SplitMatrix::all_other());
            let depth = 3_000;
            let mut l = BulkLoader::new(&st);
            for _ in 0..depth {
                l.start_element(10).unwrap();
            }
            l.literal(LABEL_TEXT, text("bottom")).unwrap();
            for _ in 0..depth {
                l.end_element().unwrap();
            }
            let stats = l.finish().unwrap();
            assert!(stats.records > 1, "page {page_size}: chain must split");
            let s = check_tree(&st, stats.root_rid).unwrap();
            assert_eq!(s.facade_nodes, depth + 1, "page {page_size}");
            assert_eq!(s.records as u64, stats.records, "page {page_size}");
        }
    }

    #[test]
    fn late_children_after_a_deep_chain_reattach() {
        // The hard case for spine spilling: a deep chain closes, then MORE
        // content arrives for ancestors that were already flushed — it must
        // re-attach through their continuation placeholders.
        for page_size in [512usize, 1024] {
            let st = store(page_size, SplitMatrix::all_other());
            let depth: usize = 600;
            let mut l = BulkLoader::new(&st);
            // <a> * depth, then close the inner 2/3 of the chain...
            for _ in 0..depth {
                l.start_element(10).unwrap();
            }
            for _ in 0..(depth * 2 / 3) {
                l.end_element().unwrap();
            }
            // ...then late content at the now-deepest open ancestor, with
            // its own nested structure...
            for i in 0..30 {
                l.start_element(11).unwrap();
                l.literal(LABEL_TEXT, text(&format!("late {i}"))).unwrap();
                l.end_element().unwrap();
            }
            // ...close a few more levels, appending stragglers on the way
            // up so several distinct spilled levels get continuations.
            for j in 0..(depth / 3) {
                l.end_element().unwrap();
                if j % 17 == 0 {
                    l.start_element(12).unwrap();
                    l.literal(LABEL_TEXT, text("straggler")).unwrap();
                    l.end_element().unwrap();
                }
            }
            let stats = l.finish().unwrap();
            let s = check_tree(&st, stats.root_rid).unwrap();
            let expected_nodes = depth + 60 + 2 * (depth / 3).div_ceil(17);
            assert_eq!(s.facade_nodes, expected_nodes, "page {page_size}");
            assert_eq!(s.records as u64, stats.records, "page {page_size}");
        }
    }

    #[test]
    fn deep_chain_with_payload_at_every_level() {
        let st = store(512, SplitMatrix::all_other());
        let depth = 400;
        let mut l = BulkLoader::new(&st);
        for i in 0..depth {
            l.start_element(10).unwrap();
            l.literal(LABEL_TEXT, text(&format!("level {i}"))).unwrap();
        }
        for _ in 0..depth {
            l.end_element().unwrap();
        }
        let stats = l.finish().unwrap();
        let s = check_tree(&st, stats.root_rid).unwrap();
        assert_eq!(s.facade_nodes, 2 * depth);
        assert_eq!(s.records as u64, stats.records);
    }

    #[test]
    fn compaction_of_a_chain_piece_keeps_its_parent_pointer() {
        // Regression: a deep wrapper forces a spine spill (the in-flight
        // piece is then parented on the flushed upper record); a large
        // flat body below pushes the arena past COMPACT_THRESHOLD, and
        // compaction must not reset that parent pointer.
        let st = store(512, SplitMatrix::all_other());
        let depth = 600;
        let mut l = BulkLoader::new(&st);
        for _ in 0..depth {
            l.start_element(10).unwrap();
        }
        for _ in 0..COMPACT_THRESHOLD / 2 + 5_000 {
            l.start_element(11).unwrap();
            l.literal(LABEL_TEXT, text("b")).unwrap();
            l.end_element().unwrap();
        }
        for _ in 0..depth {
            l.end_element().unwrap();
        }
        let stats = l.finish().unwrap();
        let s = check_tree(&st, stats.root_rid).unwrap();
        assert_eq!(s.records as u64, stats.records);
    }

    #[test]
    fn unbalanced_streams_are_rejected() {
        let st = store(1024, SplitMatrix::all_other());
        let mut l = BulkLoader::new(&st);
        assert!(l.end_element().is_err(), "close before open");
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        assert!(l.finish().is_err(), "finish with open elements");
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        l.end_element().unwrap();
        assert!(l.start_element(11).is_err(), "second root");
        let l = BulkLoader::new(&st);
        assert!(l.finish().is_err(), "empty document");
    }

    #[test]
    fn oversized_literal_rejected() {
        let st = store(512, SplitMatrix::all_other());
        let mut l = BulkLoader::new(&st);
        l.start_element(10).unwrap();
        let huge = "h".repeat(600);
        assert!(matches!(
            l.literal(LABEL_TEXT, text(&huge)),
            Err(TreeError::OversizedNode { .. })
        ));
    }
}
