//! Reconstruction and streaming traversal of stored trees.
//!
//! §2.3.3: "Substituting all proxies by their respective subtrees
//! reconstructs the original data tree." [`reconstruct_document`] does
//! exactly that, producing an in-memory logical [`Document`];
//! [`traverse`] streams the same information without materialising the
//! tree (what the paper's "full tree traversal" and query experiments do);
//! [`serialize_xml`] recreates the textual representation straight from
//! the records (Query 2: "recreates the textual representation of the
//! complete first speech in every scene").

use natix_storage::Rid;
use natix_xml::escape::{escape_attr, escape_text};
use natix_xml::{
    Document, LabelKind, LiteralValue, NodeData, SymbolTable, LABEL_COMMENT, LABEL_PI, LABEL_TEXT,
};

use crate::error::{TreeError, TreeResult};
use crate::model::{NodePtr, PContent, PNodeId, RecordTree};
use crate::store::TreeStore;

/// Streaming traversal events for facade nodes, in document order.
#[derive(Debug, Clone, PartialEq)]
pub enum VisitEvent<'a> {
    /// Entering a facade aggregate.
    Enter {
        label: natix_xml::LabelId,
        ptr: NodePtr,
    },
    /// A facade literal.
    Literal {
        label: natix_xml::LabelId,
        value: &'a LiteralValue,
        ptr: NodePtr,
    },
    /// Leaving a facade aggregate.
    Leave { label: natix_xml::LabelId },
}

/// Pre-order traversal of the whole stored tree under `ptr`, invoking
/// `visit` for every facade node; scaffolding is skipped transparently and
/// proxies are followed. `visit` returning `false` aborts the walk early
/// (the remaining events are skipped, not an error).
pub fn traverse<F>(store: &TreeStore, ptr: NodePtr, visit: &mut F) -> TreeResult<bool>
where
    F: FnMut(VisitEvent<'_>) -> bool,
{
    let tree = store.load(ptr.rid)?;
    if tree.try_node(ptr.node).is_none() {
        return Err(TreeError::BadNodePtr {
            rid: ptr.rid,
            node: ptr.node,
        });
    }
    walk(store, ptr.rid, &tree, ptr.node, visit)
}

fn walk<F>(
    store: &TreeStore,
    rid: Rid,
    tree: &RecordTree,
    node: PNodeId,
    visit: &mut F,
) -> TreeResult<bool>
where
    F: FnMut(VisitEvent<'_>) -> bool,
{
    let n = tree.node(node);
    match &n.content {
        PContent::Proxy(target) => {
            let child = store.load(*target)?;
            walk(store, *target, &child, child.root(), visit)
        }
        PContent::Literal(v) => {
            if n.is_facade() {
                Ok(visit(VisitEvent::Literal {
                    label: n.label,
                    value: v,
                    ptr: NodePtr::new(rid, node),
                }))
            } else {
                Ok(true)
            }
        }
        PContent::Aggregate(kids) => {
            let facade = n.is_facade();
            if facade
                && !visit(VisitEvent::Enter {
                    label: n.label,
                    ptr: NodePtr::new(rid, node),
                })
            {
                return Ok(false);
            }
            for &k in kids {
                if !walk(store, rid, tree, k, visit)? {
                    return Ok(false);
                }
            }
            if facade {
                return Ok(visit(VisitEvent::Leave { label: n.label }));
            }
            Ok(true)
        }
    }
}

/// Rebuilds the logical document rooted at record `root`.
pub fn reconstruct_document(store: &TreeStore, root: Rid) -> TreeResult<Document> {
    let tree = store.load(root)?;
    let root_node = tree.root();
    if !tree.node(root_node).is_facade() {
        return Err(TreeError::Invariant(format!(
            "record {root} is not a facade-rooted tree root"
        )));
    }
    let mut doc: Option<Document> = None;
    let mut stack: Vec<natix_xml::NodeIdx> = Vec::new();
    traverse(store, NodePtr::new(root, root_node), &mut |ev| {
        match ev {
            VisitEvent::Enter { label, .. } => match (&mut doc, stack.last()) {
                (None, _) => {
                    doc = Some(Document::new(NodeData::Element(label)));
                    stack.push(0);
                }
                (Some(d), Some(&parent)) => {
                    let idx = d.add_child(parent, NodeData::Element(label));
                    stack.push(idx);
                }
                (Some(_), None) => unreachable!("single root"),
            },
            VisitEvent::Literal { label, value, .. } => match (&mut doc, stack.last()) {
                (Some(d), Some(&parent)) => {
                    d.add_child(
                        parent,
                        NodeData::Literal {
                            label,
                            value: value.clone(),
                        },
                    );
                }
                _ => {
                    // A standalone literal root: represent as a document
                    // with a single literal node.
                    doc = Some(Document::new(NodeData::Literal {
                        label,
                        value: value.clone(),
                    }));
                }
            },
            VisitEvent::Leave { .. } => {
                stack.pop();
            }
        }
        true
    })?;
    doc.ok_or_else(|| TreeError::Invariant("empty tree".into()))
}

/// Serialises the stored subtree at `ptr` to XML text without building a
/// DOM (streaming, record by record).
pub fn serialize_xml(store: &TreeStore, ptr: NodePtr, symbols: &SymbolTable) -> TreeResult<String> {
    let mut out = String::new();
    // Elements whose start tag is still open (awaiting attrs/content).
    let mut open_tag = false;
    traverse(store, ptr, &mut |ev| {
        match ev {
            VisitEvent::Enter { label, .. } => {
                if open_tag {
                    out.push('>');
                }
                out.push('<');
                out.push_str(symbols.name(label));
                open_tag = true;
            }
            VisitEvent::Literal { label, value, .. } => {
                if symbols.kind(label) == LabelKind::Attribute && open_tag {
                    out.push(' ');
                    out.push_str(symbols.name(label));
                    out.push_str("=\"");
                    out.push_str(&escape_attr(&value.to_text()));
                    out.push('"');
                } else {
                    if open_tag {
                        out.push('>');
                        open_tag = false;
                    }
                    match label {
                        LABEL_COMMENT => {
                            out.push_str("<!--");
                            out.push_str(&value.to_text());
                            out.push_str("-->");
                        }
                        LABEL_PI => {
                            out.push_str("<?");
                            out.push_str(&value.to_text());
                            out.push_str("?>");
                        }
                        _ => out.push_str(&escape_text(&value.to_text())),
                    }
                }
            }
            VisitEvent::Leave { label } => {
                if open_tag {
                    out.push_str("/>");
                    open_tag = false;
                } else {
                    out.push_str("</");
                    out.push_str(symbols.name(label));
                    out.push('>');
                }
            }
        }
        true
    })?;
    Ok(out)
}

/// Concatenated `#text` content of the stored subtree at `ptr`.
pub fn subtree_text(store: &TreeStore, ptr: NodePtr) -> TreeResult<String> {
    let mut out = String::new();
    traverse(store, ptr, &mut |ev| {
        if let VisitEvent::Literal {
            label: LABEL_TEXT,
            value,
            ..
        } = ev
        {
            out.push_str(&value.to_text());
        }
        true
    })?;
    Ok(out)
}
