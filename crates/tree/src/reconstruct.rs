//! Reconstruction and streaming traversal of stored trees.
//!
//! §2.3.3: "Substituting all proxies by their respective subtrees
//! reconstructs the original data tree." [`reconstruct_document`] does
//! exactly that, producing an in-memory logical [`Document`];
//! [`traverse`] streams the same information without materialising the
//! tree (what the paper's "full tree traversal" and query experiments do);
//! [`serialize_xml`] recreates the textual representation straight from
//! the records (Query 2: "recreates the textual representation of the
//! complete first speech in every scene").

use natix_storage::Rid;
use natix_xml::escape::{escape_attr, escape_text};
use natix_xml::{
    Document, LabelKind, LiteralValue, NodeData, SymbolTable, LABEL_COMMENT, LABEL_PI, LABEL_TEXT,
};

use crate::error::{TreeError, TreeResult};
use crate::model::{NodePtr, PContent, PNodeId, RecordTree};
use crate::store::TreeStore;

/// Streaming traversal events for facade nodes, in document order.
#[derive(Debug, Clone, PartialEq)]
pub enum VisitEvent<'a> {
    /// Entering a facade aggregate.
    Enter {
        label: natix_xml::LabelId,
        ptr: NodePtr,
    },
    /// A facade literal.
    Literal {
        label: natix_xml::LabelId,
        value: &'a LiteralValue,
        ptr: NodePtr,
    },
    /// Leaving a facade aggregate.
    Leave { label: natix_xml::LabelId },
}

/// Outcome of walking one physical node (depth-aware packing aware).
///
/// `Open` means the node's subtree consumed a [`PContent::Continuation`]
/// as its last event: the `Leave` events of every facade on the path from
/// the continuation up to (and including) this node were emitted by the
/// continuation group's prefix entries, so the enclosing facades must not
/// emit their own. The flag propagates *within* a record only — a whole
/// record reached through an ordinary proxy is always complete from the
/// outside, because its continuation chain hangs inside its own subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// The visitor aborted the walk.
    Stop,
    /// Subtree complete; all `Leave`s emitted.
    Done,
    /// Subtree ended in a continuation: the holder's `Leave` was delegated.
    Open,
}

/// Pre-order traversal of the whole stored tree under `ptr`, invoking
/// `visit` for every facade node; scaffolding is skipped transparently,
/// proxies are followed, and continuation groups splice their late
/// children and deferred `Leave` events in at the right stream positions.
/// `visit` returning `false` aborts the walk early (the remaining events
/// are skipped, not an error).
pub fn traverse<F>(store: &TreeStore, ptr: NodePtr, visit: &mut F) -> TreeResult<bool>
where
    F: FnMut(VisitEvent<'_>) -> bool,
{
    let tree = store.load(ptr.rid)?;
    if tree.try_node(ptr.node).is_none() {
        return Err(TreeError::BadNodePtr {
            rid: ptr.rid,
            node: ptr.node,
        });
    }
    Ok(walk(store, ptr.rid, &tree, ptr.node, ptr.node, visit)? != Flow::Stop)
}

/// Iterative engine of [`traverse`]: an explicit heap stack instead of
/// call-stack recursion, because the logical nesting depth of a stored
/// document (and, for the per-level ablation layout, its record-chain
/// length) is unbounded while thread stacks are not.
///
/// `record_start` of a frame is the node the walk of *its* record began
/// at: when the walk hits the record's continuation placeholder, only the
/// group content belonging to levels at or below `record_start` on the
/// spilled path is in scope, so the group is entered at its matching
/// prefix entry.
fn walk<F>(
    store: &TreeStore,
    rid: Rid,
    tree: &RecordTree,
    node: PNodeId,
    record_start: PNodeId,
    visit: &mut F,
) -> TreeResult<Flow>
where
    F: FnMut(VisitEvent<'_>) -> bool,
{
    use std::rc::Rc;

    /// One in-progress aggregate/prefix node (leaves are handled inline).
    struct Frame {
        rid: Rid,
        tree: Rc<RecordTree>,
        node: PNodeId,
        /// The node this record's walk began at (continuation scoping).
        record_start: PNodeId,
        /// Next child index to process.
        next: usize,
        /// Flow of the most recently completed child.
        last: Flow,
        /// What this frame reports upward when it completes, overriding
        /// its own flow: `Done` for a record entered through a proxy
        /// (complete from the outside), `Open` for a continuation group
        /// (the holder's `Leave`s were delegated). `None` for in-record
        /// frames, which report their own flow.
        report: Option<Flow>,
    }

    /// Pushes a frame for `node` in `tree`, emitting its `Enter`/literal
    /// event; literals and empty aggregates complete immediately and
    /// return their flow instead of pushing.
    fn open_frame<F>(
        stack: &mut Vec<Frame>,
        rid: Rid,
        tree: &Rc<RecordTree>,
        node: PNodeId,
        record_start: PNodeId,
        report: Option<Flow>,
        visit: &mut F,
    ) -> TreeResult<Option<Flow>>
    where
        F: FnMut(VisitEvent<'_>) -> bool,
    {
        let n = tree.node(node);
        match &n.content {
            PContent::Literal(v) => {
                if n.is_facade()
                    && !visit(VisitEvent::Literal {
                        label: n.label,
                        value: v,
                        ptr: NodePtr::new(rid, node),
                    })
                {
                    return Ok(Some(Flow::Stop));
                }
                Ok(Some(report.unwrap_or(Flow::Done)))
            }
            PContent::Aggregate(_) | PContent::Prefix(_) => {
                if n.is_facade()
                    && !visit(VisitEvent::Enter {
                        label: n.label,
                        ptr: NodePtr::new(rid, node),
                    })
                {
                    return Ok(Some(Flow::Stop));
                }
                stack.push(Frame {
                    rid,
                    tree: Rc::clone(tree),
                    node,
                    record_start,
                    next: 0,
                    last: Flow::Done,
                    report,
                });
                Ok(None)
            }
            // Proxies/continuations are record hops, resolved by the
            // caller (`step`) so the target record is loaded exactly once.
            PContent::Proxy(_) | PContent::Continuation(_) => {
                unreachable!("record hops are opened via hop_frame")
            }
        }
    }

    let mut stack: Vec<Frame> = Vec::new();
    let root_tree = Rc::new(tree.clone());
    if let Some(flow) = open_frame(&mut stack, rid, &root_tree, node, record_start, None, visit)? {
        return Ok(flow);
    }
    let mut completed: Option<Flow> = None;
    while let Some(frame) = stack.last_mut() {
        if let Some(flow) = completed.take() {
            if flow == Flow::Stop {
                return Ok(Flow::Stop);
            }
            frame.last = flow;
        }
        let kids = frame.tree.children(frame.node);
        if frame.next < kids.len() {
            let child = kids[frame.next];
            frame.next += 1;
            let (frid, ftree, fstart) = (frame.rid, Rc::clone(&frame.tree), frame.record_start);
            let n = ftree.node(child);
            match &n.content {
                PContent::Proxy(target) => {
                    // A proxied record is complete from the outside: its
                    // own continuation chain (if any) hangs inside its
                    // subtree, so any `Open` it reports concerns only
                    // facades within it.
                    let t = *target;
                    let sub = Rc::new(store.load(t)?);
                    let root = sub.root();
                    if let Some(flow) =
                        open_frame(&mut stack, t, &sub, root, root, Some(Flow::Done), visit)?
                    {
                        completed = Some(flow);
                    }
                }
                PContent::Continuation(target) => {
                    // The group's prefix entries emit the deferred
                    // `Leave`s of the spilled path; report `Open` so the
                    // holder's facades skip their own. The group is
                    // entered at the prefix matching the walk's start
                    // level — content of outer levels is outside the
                    // walked subtree.
                    let t = *target;
                    let (_, path, _) = crate::store::spilled_path(&ftree).ok_or_else(|| {
                        TreeError::Invariant(format!(
                            "record {frid}: continuation without a spilled path"
                        ))
                    })?;
                    let i0 = path.iter().position(|&p| p == fstart).ok_or_else(|| {
                        TreeError::Invariant(format!(
                            "record {frid}: walk start is not on the spilled path"
                        ))
                    })?;
                    let sub = Rc::new(store.load(t)?);
                    let entry = *crate::store::prefix_chain(&sub).get(i0).ok_or_else(|| {
                        TreeError::Invariant(format!(
                            "continuation group {t}: prefix chain shorter than spilled path"
                        ))
                    })?;
                    if let Some(flow) =
                        open_frame(&mut stack, t, &sub, entry, entry, Some(Flow::Open), visit)?
                    {
                        completed = Some(flow);
                    }
                }
                _ => {
                    if let Some(flow) =
                        open_frame(&mut stack, frid, &ftree, child, fstart, None, visit)?
                    {
                        completed = Some(flow);
                    }
                }
            }
            continue;
        }
        // All children done: close this node.
        let flow = if frame.last == Flow::Open {
            // The subtree ended in a continuation: this node's `Leave`
            // was emitted by the group's matching prefix (and an
            // enclosing prefix delegates again to the *next* group).
            Flow::Open
        } else {
            let n = frame.tree.node(frame.node);
            let emit_leave = n.is_facade() || n.is_prefix();
            if emit_leave && !visit(VisitEvent::Leave { label: n.label }) {
                return Ok(Flow::Stop);
            }
            Flow::Done
        };
        let report = frame.report.unwrap_or(flow);
        stack.pop();
        completed = Some(report);
    }
    Ok(completed.unwrap_or(Flow::Done))
}

/// Rebuilds the logical document rooted at record `root`.
pub fn reconstruct_document(store: &TreeStore, root: Rid) -> TreeResult<Document> {
    let tree = store.load(root)?;
    let root_node = tree.root();
    if !tree.node(root_node).is_facade() {
        return Err(TreeError::Invariant(format!(
            "record {root} is not a facade-rooted tree root"
        )));
    }
    let mut doc: Option<Document> = None;
    let mut stack: Vec<natix_xml::NodeIdx> = Vec::new();
    traverse(store, NodePtr::new(root, root_node), &mut |ev| {
        match ev {
            VisitEvent::Enter { label, .. } => match (&mut doc, stack.last()) {
                (None, _) => {
                    doc = Some(Document::new(NodeData::Element(label)));
                    stack.push(0);
                }
                (Some(d), Some(&parent)) => {
                    let idx = d.add_child(parent, NodeData::Element(label));
                    stack.push(idx);
                }
                (Some(_), None) => unreachable!("single root"),
            },
            VisitEvent::Literal { label, value, .. } => match (&mut doc, stack.last()) {
                (Some(d), Some(&parent)) => {
                    d.add_child(
                        parent,
                        NodeData::Literal {
                            label,
                            value: value.clone(),
                        },
                    );
                }
                _ => {
                    // A standalone literal root: represent as a document
                    // with a single literal node.
                    doc = Some(Document::new(NodeData::Literal {
                        label,
                        value: value.clone(),
                    }));
                }
            },
            VisitEvent::Leave { .. } => {
                stack.pop();
            }
        }
        true
    })?;
    doc.ok_or_else(|| TreeError::Invariant("empty tree".into()))
}

/// Serialises the stored subtree at `ptr` to XML text without building a
/// DOM (streaming, record by record).
pub fn serialize_xml(store: &TreeStore, ptr: NodePtr, symbols: &SymbolTable) -> TreeResult<String> {
    let mut out = String::new();
    // Elements whose start tag is still open (awaiting attrs/content).
    let mut open_tag = false;
    traverse(store, ptr, &mut |ev| {
        match ev {
            VisitEvent::Enter { label, .. } => {
                if open_tag {
                    out.push('>');
                }
                out.push('<');
                out.push_str(symbols.name(label));
                open_tag = true;
            }
            VisitEvent::Literal { label, value, .. } => {
                if symbols.kind(label) == LabelKind::Attribute && open_tag {
                    out.push(' ');
                    out.push_str(symbols.name(label));
                    out.push_str("=\"");
                    out.push_str(&escape_attr(&value.to_text()));
                    out.push('"');
                } else {
                    if open_tag {
                        out.push('>');
                        open_tag = false;
                    }
                    match label {
                        LABEL_COMMENT => {
                            out.push_str("<!--");
                            out.push_str(&value.to_text());
                            out.push_str("-->");
                        }
                        LABEL_PI => {
                            out.push_str("<?");
                            out.push_str(&value.to_text());
                            out.push_str("?>");
                        }
                        _ => out.push_str(&escape_text(&value.to_text())),
                    }
                }
            }
            VisitEvent::Leave { label } => {
                if open_tag {
                    out.push_str("/>");
                    open_tag = false;
                } else {
                    out.push_str("</");
                    out.push_str(symbols.name(label));
                    out.push('>');
                }
            }
        }
        true
    })?;
    Ok(out)
}

/// Concatenated `#text` content of the stored subtree at `ptr`.
pub fn subtree_text(store: &TreeStore, ptr: NodePtr) -> TreeResult<String> {
    let mut out = String::new();
    traverse(store, ptr, &mut |ev| {
        if let VisitEvent::Literal {
            label: LABEL_TEXT,
            value,
            ..
        } = ev
        {
            out.push_str(&value.to_text());
        }
        true
    })?;
    Ok(out)
}
