//! DOM-style navigation over stored trees.
//!
//! The NATIX document manager "allows application access to documents on
//! node and document granularity" (§2.1). [`Cursor`] provides that node
//! granularity: first-child / next-sibling / parent moves over *logical*
//! nodes, transparently crossing proxies and skipping scaffolding. It
//! caches the current record's parse so that local navigation (the common
//! case — the whole point of clustering is that neighbours share a record)
//! does not re-read pages.

use natix_storage::Rid;
use natix_xml::{LabelId, LiteralValue};

use crate::error::{TreeError, TreeResult};
use crate::model::{NodePtr, PContent, PNodeId, RecordTree};
use crate::store::TreeStore;

/// A navigable position on a facade node of a stored tree.
pub struct Cursor<'a> {
    store: &'a TreeStore,
    rid: Rid,
    tree: RecordTree,
    node: PNodeId,
    /// Whether `tree` holds depth-aware-packing structure — computed once
    /// per record load, so per-move checks stay O(1).
    packed: bool,
}

impl<'a> Cursor<'a> {
    /// Opens a cursor at the root of the tree stored under `root`.
    pub fn at_root(store: &'a TreeStore, root: Rid) -> TreeResult<Cursor<'a>> {
        let tree = store.load(root)?;
        let node = tree.root();
        let packed = tree.has_packed_entries();
        let mut c = Cursor {
            store,
            rid: root,
            tree,
            node,
            packed,
        };
        if !c.current().is_facade() {
            // A scaffolding-rooted record cannot be a tree root, but be
            // permissive: descend to the first facade.
            if !c.descend_to_first_facade()? {
                return Err(TreeError::Invariant("tree has no facade nodes".into()));
            }
        }
        Ok(c)
    }

    /// Opens a cursor at an arbitrary node pointer.
    pub fn at(store: &'a TreeStore, ptr: NodePtr) -> TreeResult<Cursor<'a>> {
        let tree = store.load(ptr.rid)?;
        if tree.try_node(ptr.node).is_none() {
            return Err(TreeError::BadNodePtr {
                rid: ptr.rid,
                node: ptr.node,
            });
        }
        let packed = tree.has_packed_entries();
        Ok(Cursor {
            store,
            rid: ptr.rid,
            tree,
            node: ptr.node,
            packed,
        })
    }

    fn current(&self) -> &crate::model::PNode {
        self.tree.node(self.node)
    }

    /// The current node's address.
    pub fn ptr(&self) -> NodePtr {
        NodePtr::new(self.rid, self.node)
    }

    /// The current node's label.
    pub fn label(&self) -> LabelId {
        self.current().label
    }

    /// The current literal's value (`None` on aggregates).
    pub fn value(&self) -> Option<&LiteralValue> {
        match &self.current().content {
            PContent::Literal(v) => Some(v),
            _ => None,
        }
    }

    /// True when the current node is an element (aggregate).
    pub fn is_element(&self) -> bool {
        matches!(self.current().content, PContent::Aggregate(_))
    }

    fn jump(&mut self, rid: Rid, node: PNodeId) -> TreeResult<()> {
        if rid != self.rid {
            self.tree = self.store.load(rid)?;
            self.rid = rid;
            self.packed = self.tree.has_packed_entries();
        }
        self.node = node;
        Ok(())
    }

    /// Moves into a proxy/scaffolding chain until a facade node is found
    /// (pre-order first). Returns false when the subtree has none.
    fn descend_to_first_facade(&mut self) -> TreeResult<bool> {
        loop {
            let n = self.tree.node(self.node);
            if n.is_facade() {
                return Ok(true);
            }
            match &n.content {
                PContent::Proxy(target) | PContent::Continuation(target) => {
                    let t = *target;
                    self.tree = self.store.load(t)?;
                    self.rid = t;
                    self.packed = self.tree.has_packed_entries();
                    self.node = self.tree.root();
                }
                PContent::Aggregate(kids) | PContent::Prefix(kids) => {
                    let Some(&first) = kids.first() else {
                        return Ok(false);
                    };
                    self.node = first;
                }
                PContent::Literal(_) => return Ok(false),
            }
        }
    }

    /// Moves to the first logical child. Returns false (without moving)
    /// when there is none. On a record with depth-aware-packing structure
    /// (cached `packed` flag) the logical child list may continue in a
    /// continuation-group record, so local structural navigation is
    /// insufficient and the cursor falls back to the store-level logical
    /// walk.
    pub fn first_child(&mut self) -> TreeResult<bool> {
        if self.packed {
            let kids = self.store.logical_children(self.ptr())?;
            let Some(&first) = kids.first() else {
                return Ok(false);
            };
            self.jump(first.rid, first.node)?;
            return Ok(true);
        }
        let (save_rid, save_node, save_packed) = (self.rid, self.node, self.packed);
        let save_tree = self.tree.clone();
        let kids: Vec<PNodeId> = self.tree.children(self.node).to_vec();
        for k in kids {
            self.node = k;
            if self.descend_to_first_facade()? {
                return Ok(true);
            }
            // Empty scaffolding chain: restore and try the next child.
            self.rid = save_rid;
            self.tree = save_tree.clone();
            self.node = save_node;
            self.packed = save_packed;
            // (Only possible for degenerate empty helpers.)
        }
        self.rid = save_rid;
        self.tree = save_tree;
        self.node = save_node;
        self.packed = save_packed;
        Ok(false)
    }

    /// Moves to the next logical sibling by position within the parent's
    /// logical child list — the safe path when depth-aware packing splits
    /// the list across a piece record and its continuation groups.
    fn next_sibling_logical(&mut self) -> TreeResult<bool> {
        let Some(parent) = self.store.logical_parent(self.ptr())? else {
            return Ok(false);
        };
        let sibs = self.store.logical_children(parent)?;
        let me = self.ptr();
        let Some(at) = sibs.iter().position(|&p| p == me) else {
            return Err(TreeError::Invariant(
                "cursor node missing from its parent's child list".into(),
            ));
        };
        match sibs.get(at + 1) {
            Some(&next) => {
                self.jump(next.rid, next.node)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Moves to the next logical sibling, crossing record seams. Returns
    /// false (without moving) at the end of the sibling list.
    pub fn next_sibling(&mut self) -> TreeResult<bool> {
        if self.packed {
            return self.next_sibling_logical();
        }
        let (save_rid, save_node, save_packed) = (self.rid, self.node, self.packed);
        let save_tree = self.tree.clone();
        loop {
            let n = self.tree.node(self.node);
            match n.parent {
                Some(p) => {
                    let kids: Vec<PNodeId> = self.tree.children(p).to_vec();
                    let Some(my) = kids.iter().position(|&c| c == self.node) else {
                        return Err(TreeError::Invariant(
                            "cursor node missing from its parent's child list".into(),
                        ));
                    };
                    for &k in &kids[my + 1..] {
                        self.node = k;
                        if self.descend_to_first_facade()? {
                            return Ok(true);
                        }
                    }
                    // Exhausted this record level. If p is the scaffolding
                    // root, the sibling list continues in the parent record
                    // after our proxy.
                    if self.tree.node(p).is_scaffolding_aggregate()
                        && self.tree.node(p).parent.is_none()
                    {
                        let parent_rid = self.tree.parent_rid;
                        if parent_rid.is_invalid() {
                            break;
                        }
                        let my_rid = self.rid;
                        self.jump(parent_rid, 0)?;
                        if self.packed {
                            // Packed parent: the sibling list may continue
                            // in a continuation group.
                            self.rid = save_rid;
                            self.tree = save_tree.clone();
                            self.node = save_node;
                            self.packed = save_packed;
                            return self.next_sibling_logical();
                        }
                        let Some(proxy) = find_proxy(&self.tree, my_rid) else {
                            break;
                        };
                        self.node = proxy;
                        continue; // retry: siblings after the proxy
                    }
                    break;
                }
                None => {
                    // Record root: continue after our proxy in the parent.
                    let parent_rid = self.tree.parent_rid;
                    if parent_rid.is_invalid() {
                        break;
                    }
                    let my_rid = self.rid;
                    self.jump(parent_rid, 0)?;
                    if self.packed {
                        self.rid = save_rid;
                        self.tree = save_tree.clone();
                        self.node = save_node;
                        self.packed = save_packed;
                        return self.next_sibling_logical();
                    }
                    let Some(proxy) = find_proxy(&self.tree, my_rid) else {
                        break;
                    };
                    self.node = proxy;
                    continue;
                }
            }
        }
        self.rid = save_rid;
        self.tree = save_tree;
        self.node = save_node;
        self.packed = save_packed;
        Ok(false)
    }

    /// Moves to the logical parent. Returns false (without moving) at the
    /// tree root.
    pub fn parent(&mut self) -> TreeResult<bool> {
        match self.store.logical_parent(self.ptr())? {
            Some(p) => {
                self.jump(p.rid, p.node)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Collects the labels of all logical children (convenience).
    pub fn child_labels(&self) -> TreeResult<Vec<LabelId>> {
        let kids = self.store.logical_children(self.ptr())?;
        let mut out = Vec::with_capacity(kids.len());
        for k in kids {
            out.push(self.store.node_info(k)?.label);
        }
        Ok(out)
    }
}

fn find_proxy(tree: &RecordTree, child: Rid) -> Option<PNodeId> {
    tree.pre_order(tree.root())
        .into_iter()
        .find(|&n| matches!(tree.node(n).content, PContent::Proxy(r) if r == child))
}
