//! The split matrix (§3.3).
//!
//! > The Split Matrix S consists of elements s_ij, i, j ∈ ΣDTD. The
//! > elements express the desired clustering behaviour of a node x with
//! > label j as children of a node y with label i:
//! >
//! > * **0** — x is always kept as a standalone record and never clustered
//! >   with y;
//! > * **∞** — x is kept as long as possible in the same record with y;
//! > * **other** — the algorithm may decide.
//!
//! The paper's two measured configurations are instances: the "1:1"
//! emulation of record-per-node systems (POET, Excelon, LORE) sets every
//! element to 0; the native "1:n" configuration sets every element to
//! *other* (§4.2, §5). HyperStorM corresponds to a matrix of only 0 and ∞
//! entries.

use std::collections::HashMap;

use natix_xml::LabelId;

/// One matrix element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitBehaviour {
    /// `0`: always a standalone record, never clustered with the parent.
    Standalone,
    /// `∞`: kept in the parent's record as long as possible; moved with
    /// the separator on splits.
    KeepWithParent,
    /// `other`: the split algorithm decides freely.
    #[default]
    Other,
}

/// The split matrix: a default value plus sparse per-(parent, child)
/// overrides. Indexed by `(parent label, child label)`.
#[derive(Debug, Clone)]
pub struct SplitMatrix {
    default: SplitBehaviour,
    entries: HashMap<(LabelId, LabelId), SplitBehaviour>,
}

impl SplitMatrix {
    /// The native 1:n configuration: every element is *other*. This is the
    /// paper's default ("The 'default' split matrix used when nothing else
    /// has been specified is the one with all entries set to the value
    /// other").
    pub fn all_other() -> SplitMatrix {
        SplitMatrix {
            default: SplitBehaviour::Other,
            entries: HashMap::new(),
        }
    }

    /// The 1:1 configuration: every element is 0, emulating one record per
    /// tree node (§4.2).
    pub fn all_standalone() -> SplitMatrix {
        SplitMatrix {
            default: SplitBehaviour::Standalone,
            entries: HashMap::new(),
        }
    }

    /// A matrix with an arbitrary default.
    pub fn with_default(default: SplitBehaviour) -> SplitMatrix {
        SplitMatrix {
            default,
            entries: HashMap::new(),
        }
    }

    /// The default element value.
    pub fn default_behaviour(&self) -> SplitBehaviour {
        self.default
    }

    /// Sets s_ij for parent label `i` and child label `j`.
    pub fn set(&mut self, parent: LabelId, child: LabelId, value: SplitBehaviour) {
        if value == self.default {
            self.entries.remove(&(parent, child));
        } else {
            self.entries.insert((parent, child), value);
        }
    }

    /// Reads s_ij.
    pub fn get(&self, parent: LabelId, child: LabelId) -> SplitBehaviour {
        self.entries
            .get(&(parent, child))
            .copied()
            .unwrap_or(self.default)
    }

    /// Packing-time behaviour of a child under a parent, structure-aware:
    /// *structural* children — path-prefix entries, continuation
    /// placeholders and the deeper-prefix chains under them — are pinned
    /// to their record regardless of any matrix entry (evicting one would
    /// sever the spilled-path ↔ prefix-chain correspondence depth-aware
    /// packing relies on); facade children follow the matrix.
    pub fn packing_behaviour(
        &self,
        parent: LabelId,
        child: LabelId,
        child_is_structural: bool,
    ) -> SplitBehaviour {
        if child_is_structural {
            SplitBehaviour::KeepWithParent
        } else {
            self.get(parent, child)
        }
    }

    /// Number of non-default overrides.
    pub fn override_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates the non-default entries (catalog persistence).
    pub fn overrides(&self) -> impl Iterator<Item = (LabelId, LabelId, SplitBehaviour)> + '_ {
        self.entries.iter().map(|(&(p, c), &b)| (p, c, b))
    }
}

impl Default for SplitMatrix {
    fn default() -> Self {
        SplitMatrix::all_other()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let m = SplitMatrix::all_other();
        assert_eq!(m.get(1, 2), SplitBehaviour::Other);
        let m = SplitMatrix::all_standalone();
        assert_eq!(m.get(1, 2), SplitBehaviour::Standalone);
    }

    #[test]
    fn overrides_and_reset() {
        let mut m = SplitMatrix::all_other();
        m.set(5, 6, SplitBehaviour::KeepWithParent);
        m.set(5, 7, SplitBehaviour::Standalone);
        assert_eq!(m.get(5, 6), SplitBehaviour::KeepWithParent);
        assert_eq!(m.get(5, 7), SplitBehaviour::Standalone);
        assert_eq!(m.get(6, 5), SplitBehaviour::Other);
        assert_eq!(m.override_count(), 2);
        // Setting back to the default removes the override.
        m.set(5, 6, SplitBehaviour::Other);
        assert_eq!(m.override_count(), 1);
    }

    #[test]
    fn hyperstorm_shape() {
        // §5: HyperStorM ≙ a matrix of only 0 and ∞ entries.
        let mut m = SplitMatrix::with_default(SplitBehaviour::Standalone);
        m.set(1, 2, SplitBehaviour::KeepWithParent);
        assert_eq!(m.get(1, 2), SplitBehaviour::KeepWithParent);
        assert_eq!(m.get(1, 3), SplitBehaviour::Standalone);
    }
}
