//! The tree-structured split algorithm (§3.2.2).
//!
//! When a record outgrows its page's net capacity, its subtree is
//! partitioned. Unlike a B-tree, whose separator is a single key, the
//! separator here is **tree-structured**: "our algorithm slices a small
//! subtree off the old record's root. This small subtree then serves as a
//! separator. The remaining forest of subtrees is the data that has to be
//! distributed onto the new records."
//!
//! [`plan_split`] is a pure function from an (oversized) [`RecordTree`] to
//! a [`SplitPlan`]; all I/O (allocating partition records, the recursive
//! separator insertion of §3.2.2 step (c), parent-pointer patching) lives
//! in [`crate::store`]. Keeping the planner pure makes the trickiest part
//! of the paper unit- and property-testable in isolation.
//!
//! The implementation generalises the paper's left/right description to
//! *runs*: walking a separator-level's children in order, each maximal run
//! of children not routed to the separator becomes one partition (wrapped
//! in a scaffolding aggregate when it has more than one root — the helper
//! nodes h1/h2 of figure 8). The separator node *d* forces a run boundary,
//! which yields exactly the paper's L/R partitioning when no split-matrix
//! overrides are present; ∞-children stay with the separator ("considered
//! part of the separator... and thus moved to the parent") and 0-children
//! become standalone records with a proxy directly in the separator, which
//! also covers special case 1 ("if a partition record would consist of
//! just one proxy, the record is not created and the proxy is inserted
//! directly into the separator").

use natix_storage::Rid;
use natix_xml::LABEL_NONE;

use crate::config::TreeConfig;
use crate::error::{TreeError, TreeResult};
use crate::matrix::{SplitBehaviour, SplitMatrix};
use crate::model::{PContent, PNodeId, RecordTree, STANDALONE_HEADER};

/// Where a proxy that *moved* during the split ended up — the store must
/// update the standalone parent pointer of the record it references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyHome {
    /// The proxy now lives in the separator.
    Separator,
    /// The proxy now lives in partition `i`.
    Partition(usize),
}

/// Result of planning a split.
#[derive(Debug)]
pub struct SplitPlan {
    /// The separator: replaces the old record (root split) or is spliced
    /// into the parent record in place of the old proxy (§3.2.2 step (c)).
    /// Proxies referring to partitions carry placeholder RIDs; their arena
    /// ids are listed in `partition_proxies`.
    pub separator: RecordTree,
    /// New partition records, in document order.
    pub partitions: Vec<RecordTree>,
    /// `(separator node, partition index)` for each placeholder proxy.
    pub partition_proxies: Vec<(PNodeId, usize)>,
    /// Pre-existing proxies that moved, with their new home.
    pub moved_proxies: Vec<(Rid, ProxyHome)>,
}

/// Finds the separator-determining node *d* (§3.2.2, "Determining the
/// separator"): descend from the root into the child whose subtree
/// contains the configured byte position, stopping at a leaf or when the
/// subtree about to be entered is smaller than the split tolerance.
/// Returns the path `root..=parent(d)` and `d`.
pub fn find_separator(
    tree: &RecordTree,
    cfg: &TreeConfig,
    page_size: usize,
) -> TreeResult<(Vec<PNodeId>, PNodeId)> {
    let tolerance = cfg.tolerance_bytes(page_size).max(1);
    let total = tree.record_size();
    let target = (total as f64 * cfg.split_target) as usize;
    let mut cur = tree.root();
    let mut path = Vec::new();
    // Byte offset where `cur`'s body starts within the record.
    let mut body_at = STANDALONE_HEADER;
    loop {
        let kids = tree.children(cur);
        if kids.is_empty() {
            // The root itself is a leaf or childless: nothing to split.
            return Err(TreeError::OversizedNode {
                size: total,
                max: cfg.net_capacity(page_size),
            });
        }
        path.push(cur);
        let mut pos = body_at;
        let mut found = None;
        for &k in kids {
            let sz = tree.embedded_size(k);
            if target < pos + sz {
                found = Some((k, pos));
                break;
            }
            pos += sz;
        }
        let (chosen, chosen_pos) = match (found, kids.last()) {
            (Some(f), _) => f,
            // Target beyond the last child (standalone-header slack): the
            // physical middle lies in the last child.
            (None, Some(&last)) => (last, pos - tree.embedded_size(last)),
            (None, None) => {
                return Err(TreeError::Invariant("split level with no children".into()));
            }
        };
        let chosen_size = tree.embedded_size(chosen);
        let is_leaf = tree.children(chosen).is_empty();
        if is_leaf || chosen_size < tolerance {
            // Degenerate-split guard: if d were the first child at this
            // level (and the whole path above has no left siblings), the
            // left partition would be empty and the right partition could
            // equal the entire record — no progress. Shift d one sibling
            // to the right so L is non-empty.
            let mut d = chosen;
            if kids.first() == Some(&chosen) && kids.len() > 1 {
                d = kids[1];
            }
            return Ok((path, d));
        }
        body_at = chosen_pos + crate::model::EMBEDDED_HEADER;
        cur = chosen;
    }
}

/// Plans the split of `tree` (which should exceed the net page capacity,
/// though the planner works on any tree with ≥ 2 nodes).
///
/// When every child is pinned to the separator by ∞ matrix entries, no
/// partitions would be produced and the record could not shrink; the plan
/// is then recomputed ignoring the matrix — "kept **as long as possible**
/// in the same record" (§3.3) ends where the page does.
pub fn plan_split(
    tree: RecordTree,
    cfg: &TreeConfig,
    matrix: &SplitMatrix,
    page_size: usize,
) -> TreeResult<SplitPlan> {
    // Depth-aware packing: prefix entries and continuation placeholders
    // are position-dependent structure (the group mapping is by spilled
    // path), which a separator split cannot preserve — such records are
    // normalized back into plain form before any structural edit reaches
    // the split path (`TreeStore::normalize_packed`). A prefix here is
    // non-evictable by definition; reaching this point is a logic error.
    if tree
        .pre_order(tree.root())
        .iter()
        .any(|&n| tree.node(n).is_prefix() || tree.node(n).is_continuation())
    {
        return Err(TreeError::Invariant(
            "cannot split a packed-prefix record; normalize the cluster first".into(),
        ));
    }
    let fallback = tree.clone();
    let plan = plan_split_inner(tree, cfg, matrix, page_size)?;
    if plan.partitions.is_empty() {
        // Everything stayed with the separator: the record cannot shrink.
        return plan_split_inner(fallback, cfg, &SplitMatrix::all_other(), page_size);
    }
    Ok(plan)
}

fn plan_split_inner(
    mut tree: RecordTree,
    cfg: &TreeConfig,
    matrix: &SplitMatrix,
    page_size: usize,
) -> TreeResult<SplitPlan> {
    let (path, d) = find_separator(&tree, cfg, page_size)?;

    let mut separator = RecordTree::new(
        tree.node(path[0]).label,
        PContent::Aggregate(Vec::new()),
        tree.parent_rid,
    );
    separator.node_mut(separator.root()).orig = tree.node(path[0]).orig;

    let mut partitions: Vec<RecordTree> = Vec::new();
    let mut partition_proxies: Vec<(PNodeId, usize)> = Vec::new();
    let mut moved_proxies: Vec<(Rid, ProxyHome)> = Vec::new();

    let mut sep_parent = separator.root();
    for level in 0..path.len() {
        let s = path[level];
        let s_label = tree.node(s).label;
        let next_path = path.get(level + 1).copied();
        let kids: Vec<PNodeId> = tree.children(s).to_vec();

        let mut run: Vec<PNodeId> = Vec::new();
        let mut next_sep_parent = sep_parent;
        let mut attach_at = separator.children(sep_parent).len();

        // Helper: close the current run into a partition + proxy.
        macro_rules! flush_run {
            () => {
                if !run.is_empty() {
                    flush_run_into(
                        &mut tree,
                        &mut run,
                        &mut separator,
                        sep_parent,
                        &mut attach_at,
                        &mut partitions,
                        &mut partition_proxies,
                        &mut moved_proxies,
                        cfg.proxy_digests,
                    );
                }
            };
        }

        for k in kids {
            if Some(k) == next_path {
                // The next separator-path node: copy it into the separator
                // and recurse into it on the next level.
                flush_run!();
                let copy = separator.alloc(tree.node(k).label, PContent::Aggregate(Vec::new()));
                separator.node_mut(copy).orig = tree.node(k).orig;
                separator.attach(sep_parent, attach_at, copy);
                attach_at += 1;
                next_sep_parent = copy;
                continue;
            }
            if k == d {
                // d starts the right partition (§3.2.2: "The subtree below
                // d, the subtrees of d's right siblings ... comprise the
                // right partition").
                flush_run!();
            }
            let behaviour = if tree.node(k).is_facade() {
                matrix.get(s_label, tree.node(k).label)
            } else {
                SplitBehaviour::Other
            };
            match behaviour {
                SplitBehaviour::KeepWithParent => {
                    // ∞: "considered part of the separator, and thus moved
                    // to the parent".
                    flush_run!();
                    for rid in tree.proxies_under(k) {
                        moved_proxies.push((rid, ProxyHome::Separator));
                    }
                    let moved = tree.transplant(k, &mut separator);
                    separator.attach(sep_parent, attach_at, moved);
                    attach_at += 1;
                }
                SplitBehaviour::Standalone => {
                    // 0: always its own record, proxy directly in the
                    // separator.
                    flush_run!();
                    run.push(k);
                    flush_run!();
                }
                SplitBehaviour::Other => run.push(k),
            }
        }
        flush_run!();
        sep_parent = next_sep_parent;
    }

    Ok(SplitPlan {
        separator,
        partitions,
        partition_proxies,
        moved_proxies,
    })
}

/// Closes a run of sibling subtrees into a partition record (or, for a
/// single proxy, splices the proxy directly into the separator — special
/// case 1).
#[allow(clippy::too_many_arguments)]
fn flush_run_into(
    tree: &mut RecordTree,
    run: &mut Vec<PNodeId>,
    separator: &mut RecordTree,
    sep_parent: PNodeId,
    attach_at: &mut usize,
    partitions: &mut Vec<RecordTree>,
    partition_proxies: &mut Vec<(PNodeId, usize)>,
    moved_proxies: &mut Vec<(Rid, ProxyHome)>,
    digests: bool,
) {
    debug_assert!(!run.is_empty());
    if run.len() == 1 && tree.node(run[0]).is_proxy() {
        // Special case 1: the partition would be a single proxy.
        let moved = tree.transplant(run[0], separator);
        if let PContent::Proxy(rid) = separator.node(moved).content {
            moved_proxies.push((rid, ProxyHome::Separator));
        }
        separator.attach(sep_parent, *attach_at, moved);
        *attach_at += 1;
        run.clear();
        return;
    }
    let part_idx = partitions.len();
    let partition = if run.len() == 1 {
        RecordTree::from_transplant(tree, run[0])
    } else {
        // Multiple roots: group them under a scaffolding aggregate — the
        // helper objects h1/h2 of figures 3 and 8.
        let mut p = RecordTree::new(LABEL_NONE, PContent::Aggregate(Vec::new()), Rid::invalid());
        for (i, &n) in run.iter().enumerate() {
            let moved = tree.transplant(n, &mut p);
            p.attach(p.root(), i, moved);
        }
        p
    };
    for rid in partition.proxies_under(partition.root()) {
        moved_proxies.push((rid, ProxyHome::Partition(part_idx)));
    }
    // Proxy label digest: a facade-rooted partition's root label rides on
    // the placeholder proxy (the RID is patched in later, the digest is
    // final now); scaffolding-rooted partitions stay "must read".
    let digest = if digests && partition.node(partition.root()).is_facade() {
        partition.node(partition.root()).label
    } else {
        LABEL_NONE
    };
    partitions.push(partition);
    let proxy = separator.alloc(digest, PContent::Proxy(Rid::invalid()));
    separator.attach(sep_parent, *attach_at, proxy);
    *attach_at += 1;
    partition_proxies.push((proxy, part_idx));
    run.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use natix_xml::{LiteralValue, LABEL_TEXT};

    /// A record shaped like the paper's figure 7: a root f1 with children,
    /// one of which (f6) has many children itself. Text payloads make byte
    /// sizes meaningful.
    fn figure7(pay: usize) -> RecordTree {
        let text = |t: &mut RecordTree, parent: PNodeId, i: usize| {
            let lit = t.alloc(
                LABEL_TEXT,
                PContent::Literal(LiteralValue::String("x".repeat(pay))),
            );
            t.attach(parent, i, lit);
        };
        let mut t = RecordTree::new(1, PContent::Aggregate(vec![]), Rid::invalid());
        // f2..f5 under the root.
        for i in 0..4 {
            let f = t.alloc(2, PContent::Aggregate(vec![]));
            t.attach(t.root(), i, f);
            text(&mut t, f, 0);
        }
        // f6 with children f7..f13.
        let f6 = t.alloc(6, PContent::Aggregate(vec![]));
        t.attach(t.root(), 4, f6);
        for i in 0..7 {
            let f = t.alloc(7, PContent::Aggregate(vec![]));
            t.attach(f6, i, f);
            text(&mut t, f, 0);
        }
        // f14 to the right of f6.
        let f14 = t.alloc(14, PContent::Aggregate(vec![]));
        t.attach(t.root(), 5, f14);
        text(&mut t, f14, 0);
        t
    }

    fn cfg() -> TreeConfig {
        TreeConfig::paper()
    }

    #[test]
    fn find_separator_descends_to_middle() {
        let t = figure7(40);
        // Tolerance 10% of 2048 = 204 bytes; each f-child subtree is
        // ~6+6+40=52 bytes so descent into f6 (7×52 ≈ 364) continues, and d
        // is one of f6's children.
        let (path, d) = find_separator(&t, &cfg(), 2048).unwrap();
        assert_eq!(path.len(), 2, "path = [f1, f6]");
        assert_eq!(t.node(path[0]).label, 1);
        assert_eq!(t.node(path[1]).label, 6);
        assert_eq!(t.node(d).label, 7, "d is a child of f6");
    }

    #[test]
    fn tolerance_stops_descent() {
        let t = figure7(40);
        let mut c = cfg();
        c.split_tolerance = 0.5; // 1024 bytes: f6's subtree (~370) is below
        let (path, d) = find_separator(&t, &c, 2048).unwrap();
        assert_eq!(path.len(), 1, "path = [f1] only");
        assert_eq!(t.node(d).label, 6, "d = f6, moved whole into a partition");
    }

    #[test]
    fn plan_matches_paper_partitioning() {
        let t = figure7(40);
        let total = t.record_size();
        let plan = plan_split(t, &cfg(), &SplitMatrix::all_other(), 2048).unwrap();
        // Separator holds copies of f1 and f6 plus proxies.
        let sep = &plan.separator;
        assert_eq!(sep.node(sep.root()).label, 1);
        // Each partition is smaller than the original and they cover ~all
        // of the payload.
        assert!(!plan.partitions.is_empty());
        let part_total: usize = plan.partitions.iter().map(|p| p.record_size()).sum();
        for p in &plan.partitions {
            assert!(p.record_size() < total);
        }
        // Each partition costs a fresh standalone header (and possibly a
        // helper aggregate), so allow that overhead on top of the payload.
        assert!(part_total < total + 16 * plan.partitions.len());
        assert!(
            part_total + sep.record_size() >= total,
            "partitions + separator cover the data (plus new headers)"
        );
        // The split target ½ gives a reasonably balanced first/last split.
        let left = plan.partitions.first().unwrap().record_size();
        let right: usize = plan
            .partitions
            .iter()
            .skip(1)
            .map(|p| p.record_size())
            .sum();
        let ratio = left as f64 / (left + right) as f64;
        assert!(
            (0.2..=0.8).contains(&ratio),
            "L/R ratio {ratio} wildly unbalanced"
        );
    }

    #[test]
    fn multi_root_partitions_get_scaffolding_aggregates() {
        let t = figure7(40);
        let plan = plan_split(t, &cfg(), &SplitMatrix::all_other(), 2048).unwrap();
        let with_helpers = plan
            .partitions
            .iter()
            .filter(|p| p.node(p.root()).is_scaffolding_aggregate())
            .count();
        assert!(
            with_helpers >= 1,
            "sibling groups need helper aggregates (h1/h2)"
        );
        // Every proxy in the separator refers to a partition placeholder.
        assert_eq!(
            plan.partition_proxies.len(),
            plan.partitions.len(),
            "one placeholder proxy per partition"
        );
    }

    #[test]
    fn separator_preserves_path_orig_markers() {
        let mut t = figure7(40);
        // Simulate a tree loaded from disk: assign orig markers.
        let src = Rid::new(9, 9);
        for (i, id) in t.pre_order(t.root()).into_iter().enumerate() {
            t.node_mut(id).orig = Some(crate::model::NodePtr::new(src, i as PNodeId));
        }
        let plan = plan_split(t, &cfg(), &SplitMatrix::all_other(), 2048).unwrap();
        assert_eq!(
            plan.separator.node(plan.separator.root()).orig,
            Some(crate::model::NodePtr::new(src, 0))
        );
        // Partition nodes keep their markers too.
        let any_marked = plan.partitions.iter().any(|p| {
            p.pre_order(p.root())
                .iter()
                .any(|&n| p.node(n).orig.is_some())
        });
        assert!(any_marked);
    }

    #[test]
    fn keep_with_parent_stays_in_separator() {
        let t = figure7(40);
        let mut m = SplitMatrix::all_other();
        // f14 (label 14) under f1 (label 1) must stay with the parent.
        m.set(1, 14, SplitBehaviour::KeepWithParent);
        let plan = plan_split(t, &cfg(), &m, 2048).unwrap();
        let sep = &plan.separator;
        let sep_labels: Vec<u16> = sep
            .pre_order(sep.root())
            .iter()
            .map(|&n| sep.node(n).label)
            .collect();
        assert!(
            sep_labels.contains(&14),
            "f14 moved into the separator: {sep_labels:?}"
        );
        for p in &plan.partitions {
            let labels: Vec<u16> = p
                .pre_order(p.root())
                .iter()
                .map(|&n| p.node(n).label)
                .collect();
            assert!(!labels.contains(&14), "f14 must not be in a partition");
        }
    }

    #[test]
    fn standalone_children_become_their_own_partitions() {
        let t = figure7(40);
        let mut m = SplitMatrix::all_other();
        m.set(1, 2, SplitBehaviour::Standalone); // every f2..f5
        let plan = plan_split(t, &cfg(), &m, 2048).unwrap();
        // The four label-2 children each get a single-root partition with a
        // facade root.
        let single_label2 = plan
            .partitions
            .iter()
            .filter(|p| p.node(p.root()).label == 2)
            .count();
        assert_eq!(single_label2, 4);
    }

    #[test]
    fn single_proxy_run_collapses_into_separator() {
        // Root with [big subtree, proxy, big subtree]: if the proxy ends up
        // alone in a run, no partition record is created for it.
        let mut t = RecordTree::new(1, PContent::Aggregate(vec![]), Rid::invalid());
        for i in [0usize, 2] {
            let f = t.alloc(2, PContent::Aggregate(vec![]));
            t.attach(t.root(), i.min(t.children(t.root()).len()), f);
            let lit = t.alloc(
                LABEL_TEXT,
                PContent::Literal(LiteralValue::String("y".repeat(300))),
            );
            t.attach(f, 0, lit);
        }
        let p = t.alloc(LABEL_NONE, PContent::Proxy(Rid::new(42, 1)));
        t.attach(t.root(), 1, p);
        let mut c = cfg();
        c.split_tolerance = 0.2; // coarse: d = a whole child subtree
        let plan = plan_split(t, &c, &SplitMatrix::all_other(), 2048).unwrap();
        // The pre-existing proxy must survive somewhere, still pointing at
        // (42,1), and is reported as moved.
        let in_sep = plan
            .separator
            .proxies_under(plan.separator.root())
            .contains(&Rid::new(42, 1));
        let in_part = plan
            .partitions
            .iter()
            .any(|pt| pt.proxies_under(pt.root()).contains(&Rid::new(42, 1)));
        assert!(in_sep || in_part);
        assert!(plan
            .moved_proxies
            .iter()
            .any(|&(r, _)| r == Rid::new(42, 1)));
    }

    #[test]
    fn childless_root_cannot_split() {
        let t = RecordTree::new(
            LABEL_TEXT,
            PContent::Literal(LiteralValue::String("huge".into())),
            Rid::invalid(),
        );
        assert!(matches!(
            find_separator(&t, &cfg(), 2048),
            Err(TreeError::OversizedNode { .. })
        ));
    }

    #[test]
    fn all_content_is_preserved_across_split() {
        let t = figure7(25);
        let count_before: usize = t.pre_order(t.root()).len();
        let payload_before: usize = t.record_size();
        let plan = plan_split(t, &cfg(), &SplitMatrix::all_other(), 2048).unwrap();
        // Facade nodes after = separator facades + partition facades;
        // scaffolding (helpers/proxies) may be added, never removed facades.
        let facades = |rt: &RecordTree| {
            rt.pre_order(rt.root())
                .iter()
                .filter(|&&n| rt.node(n).is_facade())
                .count()
        };
        let after: usize =
            facades(&plan.separator) + plan.partitions.iter().map(facades).sum::<usize>();
        // figure7 has 1 + 4*2 + 1 + 7*2 + 1 + 1 = 26 facade nodes.
        assert_eq!(after, 26);
        assert!(after <= count_before + plan.partitions.len());
        // No bytes lost: total serialised size ≥ original (headers added).
        let total_after: usize = plan.separator.record_size()
            + plan
                .partitions
                .iter()
                .map(|p| p.record_size())
                .sum::<usize>();
        assert!(total_after + 100 >= payload_before);
    }
}
