//! Record serialisation — the storage format of Appendix A.
//!
//! One record holds one subtree. The standalone (root) object has a
//! 10-byte header: the parent record's RID (8 bytes) plus a 2-byte type
//! index; its size is the record length known from the slot. Embedded
//! objects have 6-byte headers: type index, parent offset, and size (all
//! `u16` — pages are at most 32K, so intra-record offsets fit). Nodes are
//! stored *within* their parent aggregate's body, so the byte image of a
//! subtree is contiguous and — because parent pointers are record-relative
//! offsets — location-independent.
//!
//! ```text
//! record      := parent_rid(8) root_type(2) body(root)
//! embedded    := type(2) parent_off(2) size(2) body        size = 6+|body|
//! body(aggr)  := embedded*            body(proxy) := rid(8)
//! body(lit)   := typed payload (string/uri: raw; ints/float: fixed width)
//! ```
//!
//! Serialisation assigns every node its **pre-order index**; that index is
//! the node half of a [`crate::store::NodePtr`]. The mapping from arena
//! slots to pre-order indices is returned so the store can emit relocation
//! events for nodes whose index changed.

use natix_storage::Rid;
use natix_xml::LiteralValue;

use crate::error::{TreeError, TreeResult};
use crate::model::{
    NodePtr, PContent, PNode, PNodeId, RecordTree, EMBEDDED_HEADER, STANDALONE_HEADER,
};
use crate::typetable::{ContentKind, TypeTable};

/// The content kind a node serialises as.
pub fn content_kind(content: &PContent) -> ContentKind {
    match content {
        PContent::Aggregate(_) => ContentKind::Aggregate,
        PContent::Proxy(_) => ContentKind::Proxy,
        PContent::Prefix(_) => ContentKind::Prefix,
        PContent::Continuation(_) => ContentKind::Continuation,
        PContent::Literal(v) => match v {
            LiteralValue::String(_) => ContentKind::LitString,
            LiteralValue::I8(_) => ContentKind::LitI8,
            LiteralValue::I16(_) => ContentKind::LitI16,
            LiteralValue::I32(_) => ContentKind::LitI32,
            LiteralValue::I64(_) => ContentKind::LitI64,
            LiteralValue::F64(_) => ContentKind::LitF64,
            LiteralValue::Uri(_) => ContentKind::LitUri,
        },
    }
}

/// All `(kind, label)` pairs the record needs in a page's type table.
pub fn collect_types(tree: &RecordTree) -> Vec<(ContentKind, natix_xml::LabelId)> {
    tree.pre_order(tree.root())
        .into_iter()
        .map(|id| {
            let n = tree.node(id);
            (content_kind(&n.content), n.label)
        })
        .collect()
}

/// Serialises `tree`, interning types into `table` (the caller persists the
/// table if it grew). Returns the record bytes and the arena→pre-order
/// index mapping.
pub fn serialize(tree: &RecordTree, table: &mut TypeTable) -> (Vec<u8>, Vec<(PNodeId, PNodeId)>) {
    let mut out = Vec::with_capacity(tree.record_size());
    let mut mapping = Vec::with_capacity(tree.live_count());
    let mut next_serial: PNodeId = 0;

    let root = tree.root();
    tree.parent_rid.encode_to(&mut out);
    let rn = tree.node(root);
    let (root_type, _) = table.intern(content_kind(&rn.content), rn.label);
    out.extend_from_slice(&root_type.to_le_bytes());
    mapping.push((root, next_serial));
    next_serial += 1;
    write_body(
        tree,
        root,
        0,
        table,
        &mut out,
        &mut mapping,
        &mut next_serial,
    );
    debug_assert_eq!(
        out.len(),
        tree.record_size(),
        "size accounting must be exact"
    );
    (out, mapping)
}

fn write_body(
    tree: &RecordTree,
    id: PNodeId,
    my_header_off: usize,
    table: &mut TypeTable,
    out: &mut Vec<u8>,
    mapping: &mut Vec<(PNodeId, PNodeId)>,
    next_serial: &mut PNodeId,
) {
    match &tree.node(id).content {
        PContent::Literal(v) => write_literal(v, out),
        PContent::Proxy(rid) | PContent::Continuation(rid) => rid.encode_to(out),
        PContent::Aggregate(kids) | PContent::Prefix(kids) => {
            for &child in kids {
                let header_off = out.len();
                let cn = tree.node(child);
                let (type_idx, _) = table.intern(content_kind(&cn.content), cn.label);
                let size = tree.embedded_size(child);
                out.extend_from_slice(&type_idx.to_le_bytes());
                out.extend_from_slice(&(my_header_off as u16).to_le_bytes());
                out.extend_from_slice(&(size as u16).to_le_bytes());
                mapping.push((child, *next_serial));
                *next_serial += 1;
                write_body(tree, child, header_off, table, out, mapping, next_serial);
            }
        }
    }
}

fn write_literal(v: &LiteralValue, out: &mut Vec<u8>) {
    match v {
        LiteralValue::String(s) | LiteralValue::Uri(s) => out.extend_from_slice(s.as_bytes()),
        LiteralValue::I8(x) => out.push(*x as u8),
        LiteralValue::I16(x) => out.extend_from_slice(&x.to_le_bytes()),
        LiteralValue::I32(x) => out.extend_from_slice(&x.to_le_bytes()),
        LiteralValue::I64(x) => out.extend_from_slice(&x.to_le_bytes()),
        LiteralValue::F64(x) => out.extend_from_slice(&x.to_le_bytes()),
    }
}

/// Parses record bytes back into a [`RecordTree`]. Node arena slots equal
/// pre-order indices, and `orig` markers are set accordingly.
pub fn deserialize(bytes: &[u8], table: &TypeTable, rid: Rid) -> TreeResult<RecordTree> {
    let corrupt = |m: String| TreeError::CorruptRecord { rid, message: m };
    if bytes.len() < STANDALONE_HEADER {
        return Err(corrupt(format!(
            "record of {} bytes has no standalone header",
            bytes.len()
        )));
    }
    let parent_rid = Rid::decode(&bytes[0..8]);
    let root_type = u16::from_le_bytes([bytes[8], bytes[9]]);
    let (kind, label) = table.get(root_type)?;
    let mut nodes: Vec<Option<PNode>> = Vec::new();
    nodes.push(Some(PNode {
        label,
        content: placeholder(kind),
        parent: None,
        orig: Some(NodePtr::new(rid, 0)),
    }));
    let body = &bytes[STANDALONE_HEADER..];
    parse_body(
        bytes,
        STANDALONE_HEADER,
        body.len(),
        0,
        0,
        kind,
        table,
        &mut nodes,
        rid,
    )?;
    Ok(RecordTree::from_parts(nodes, 0, parent_rid))
}

fn placeholder(kind: ContentKind) -> PContent {
    match kind {
        ContentKind::Aggregate => PContent::Aggregate(Vec::new()),
        ContentKind::Prefix => PContent::Prefix(Vec::new()),
        ContentKind::Proxy => PContent::Proxy(Rid::invalid()),
        ContentKind::Continuation => PContent::Continuation(Rid::invalid()),
        _ => PContent::Literal(LiteralValue::String(String::new())),
    }
}

/// Mutable access to a parsed node's arena slot. The parser itself hands
/// out every index, so a missing or tombstoned slot means the record bytes
/// drove it off the rails — a corrupt-record error, not a panic.
fn node_slot(nodes: &mut [Option<PNode>], id: PNodeId, rid: Rid) -> TreeResult<&mut PNode> {
    nodes
        .get_mut(id as usize)
        .and_then(|n| n.as_mut())
        .ok_or_else(|| TreeError::CorruptRecord {
            rid,
            message: format!("parsed node {id} lost its arena slot"),
        })
}

/// Parses the body of node `me` (arena index) located at
/// `[body_at, body_at+body_len)`; `my_header_off` is where `me`'s header
/// starts (0 for the root).
#[allow(clippy::too_many_arguments)]
fn parse_body(
    bytes: &[u8],
    body_at: usize,
    body_len: usize,
    my_header_off: usize,
    me: PNodeId,
    kind: ContentKind,
    table: &TypeTable,
    nodes: &mut Vec<Option<PNode>>,
    rid: Rid,
) -> TreeResult<()> {
    let corrupt = |m: String| TreeError::CorruptRecord { rid, message: m };
    let body = bytes
        .get(body_at..body_at + body_len)
        .ok_or_else(|| corrupt("body extends past record end".into()))?;
    match kind {
        ContentKind::Proxy | ContentKind::Continuation => {
            if body_len != 8 {
                return Err(corrupt(format!("proxy body of {body_len} bytes")));
            }
            let target = Rid::decode(body);
            node_slot(nodes, me, rid)?.content = if kind == ContentKind::Proxy {
                PContent::Proxy(target)
            } else {
                PContent::Continuation(target)
            };
        }
        ContentKind::Aggregate | ContentKind::Prefix => {
            let mut at = 0;
            let mut kids = Vec::new();
            while at < body_len {
                if body_len - at < EMBEDDED_HEADER {
                    return Err(corrupt("truncated embedded header".into()));
                }
                let h = body_at + at;
                let type_idx = u16::from_le_bytes([bytes[h], bytes[h + 1]]);
                let parent_off = u16::from_le_bytes([bytes[h + 2], bytes[h + 3]]) as usize;
                let size = u16::from_le_bytes([bytes[h + 4], bytes[h + 5]]) as usize;
                if parent_off != my_header_off {
                    return Err(corrupt(format!(
                        "embedded object at {h}: parent offset {parent_off} != {my_header_off}"
                    )));
                }
                if size < EMBEDDED_HEADER || at + size > body_len {
                    return Err(corrupt(format!("embedded object at {h}: bad size {size}")));
                }
                let (ckind, clabel) = table.get(type_idx)?;
                let child = nodes.len() as PNodeId;
                nodes.push(Some(PNode {
                    label: clabel,
                    content: placeholder(ckind),
                    parent: Some(me),
                    orig: Some(NodePtr::new(rid, child)),
                }));
                kids.push(child);
                parse_body(
                    bytes,
                    h + EMBEDDED_HEADER,
                    size - EMBEDDED_HEADER,
                    h,
                    child,
                    ckind,
                    table,
                    nodes,
                    rid,
                )?;
                at += size;
            }
            node_slot(nodes, me, rid)?.content = if kind == ContentKind::Aggregate {
                PContent::Aggregate(kids)
            } else {
                PContent::Prefix(kids)
            };
        }
        lit => {
            let value = decode_literal(lit, body)
                .ok_or_else(|| corrupt(format!("bad literal body for {lit:?}")))?;
            node_slot(nodes, me, rid)?.content = PContent::Literal(value);
        }
    }
    Ok(())
}

fn decode_literal(kind: ContentKind, body: &[u8]) -> Option<LiteralValue> {
    Some(match kind {
        ContentKind::LitString => LiteralValue::String(std::str::from_utf8(body).ok()?.into()),
        ContentKind::LitUri => LiteralValue::Uri(std::str::from_utf8(body).ok()?.into()),
        ContentKind::LitI8 => LiteralValue::I8(*body.first()? as i8),
        ContentKind::LitI16 => LiteralValue::I16(i16::from_le_bytes(body.try_into().ok()?)),
        ContentKind::LitI32 => LiteralValue::I32(i32::from_le_bytes(body.try_into().ok()?)),
        ContentKind::LitI64 => LiteralValue::I64(i64::from_le_bytes(body.try_into().ok()?)),
        ContentKind::LitF64 => LiteralValue::F64(f64::from_le_bytes(body.try_into().ok()?)),
        ContentKind::Aggregate
        | ContentKind::Proxy
        | ContentKind::Prefix
        | ContentKind::Continuation => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use natix_xml::{LABEL_NONE, LABEL_TEXT};

    fn sample() -> RecordTree {
        let mut t = RecordTree::new(10, PContent::Aggregate(vec![]), Rid::new(4, 2));
        let speaker = t.alloc(11, PContent::Aggregate(vec![]));
        t.attach(t.root(), 0, speaker);
        let txt = t.alloc(
            LABEL_TEXT,
            PContent::Literal(LiteralValue::String("OTHELLO".into())),
        );
        t.attach(speaker, 0, txt);
        let proxy = t.alloc(LABEL_NONE, PContent::Proxy(Rid::new(77, 3)));
        t.attach(t.root(), 1, proxy);
        let num = t.alloc(LABEL_TEXT, PContent::Literal(LiteralValue::I32(-5)));
        t.attach(t.root(), 2, num);
        t
    }

    fn tree_eq(a: &RecordTree, an: PNodeId, b: &RecordTree, bn: PNodeId) -> bool {
        let (na, nb) = (a.node(an), b.node(bn));
        if na.label != nb.label {
            return false;
        }
        match (&na.content, &nb.content) {
            (PContent::Aggregate(ka), PContent::Aggregate(kb)) => {
                ka.len() == kb.len() && ka.iter().zip(kb).all(|(&x, &y)| tree_eq(a, x, b, y))
            }
            (x, y) => x == y,
        }
    }

    #[test]
    fn roundtrip_preserves_structure_and_parent_rid() {
        let t = sample();
        let mut table = TypeTable::new();
        let (bytes, mapping) = serialize(&t, &mut table);
        assert_eq!(bytes.len(), t.record_size());
        assert_eq!(mapping.len(), 5);
        let back = deserialize(&bytes, &table, Rid::new(1, 1)).unwrap();
        assert!(tree_eq(&t, t.root(), &back, back.root()));
        assert_eq!(back.parent_rid, Rid::new(4, 2));
    }

    #[test]
    fn preorder_indices_are_dense_and_ordered() {
        let t = sample();
        let mut table = TypeTable::new();
        let (bytes, mapping) = serialize(&t, &mut table);
        // Serial ids 0..n in pre-order: root, speaker, text, proxy, i32.
        let serials: Vec<PNodeId> = mapping.iter().map(|&(_, s)| s).collect();
        assert_eq!(serials, vec![0, 1, 2, 3, 4]);
        let back = deserialize(&bytes, &table, Rid::new(1, 1)).unwrap();
        // Deserialised arena slots equal pre-order indices.
        assert_eq!(back.node(0).label, 10);
        assert_eq!(back.node(1).label, 11);
        assert!(matches!(back.node(3).content, PContent::Proxy(r) if r == Rid::new(77, 3)));
        assert!(matches!(
            back.node(4).content,
            PContent::Literal(LiteralValue::I32(-5))
        ));
        assert_eq!(back.node(4).orig, Some(NodePtr::new(Rid::new(1, 1), 4)));
    }

    #[test]
    fn type_table_shared_across_records() {
        let t = sample();
        let mut table = TypeTable::new();
        let (b1, _) = serialize(&t, &mut table);
        let grown = table.len();
        let (b2, _) = serialize(&t, &mut table);
        assert_eq!(table.len(), grown, "second record reuses entries");
        assert_eq!(b1, b2);
    }

    #[test]
    fn all_literal_types_roundtrip() {
        let values = [
            LiteralValue::String("héllo <&>".into()),
            LiteralValue::Uri("http://example.com/x".into()),
            LiteralValue::I8(-8),
            LiteralValue::I16(-1600),
            LiteralValue::I32(2_000_000),
            LiteralValue::I64(-9e15 as i64),
            LiteralValue::F64(3.25),
        ];
        let mut t = RecordTree::new(9, PContent::Aggregate(vec![]), Rid::invalid());
        for (i, v) in values.iter().enumerate() {
            let n = t.alloc(LABEL_TEXT, PContent::Literal(v.clone()));
            t.attach(t.root(), i, n);
        }
        let mut table = TypeTable::new();
        let (bytes, _) = serialize(&t, &mut table);
        let back = deserialize(&bytes, &table, Rid::new(0, 0)).unwrap();
        for (i, v) in values.iter().enumerate() {
            let child = back.children(back.root())[i];
            assert!(matches!(&back.node(child).content,
                PContent::Literal(got) if got == v));
        }
    }

    #[test]
    fn single_literal_record() {
        let t = RecordTree::new(
            LABEL_TEXT,
            PContent::Literal(LiteralValue::String("standalone text".into())),
            Rid::new(1, 0),
        );
        let mut table = TypeTable::new();
        let (bytes, _) = serialize(&t, &mut table);
        assert_eq!(bytes.len(), STANDALONE_HEADER + 15);
        let back = deserialize(&bytes, &table, Rid::new(0, 0)).unwrap();
        assert!(matches!(&back.node(back.root()).content,
            PContent::Literal(LiteralValue::String(s)) if s == "standalone text"));
    }

    #[test]
    fn corrupt_bytes_rejected() {
        let t = sample();
        let mut table = TypeTable::new();
        let (bytes, _) = serialize(&t, &mut table);
        // Too short.
        assert!(deserialize(&bytes[..5], &table, Rid::new(0, 0)).is_err());
        // Bad type index in an embedded header.
        let mut bad = bytes.clone();
        bad[STANDALONE_HEADER] = 0xFF;
        bad[STANDALONE_HEADER + 1] = 0xFF;
        assert!(deserialize(&bad, &table, Rid::new(0, 0)).is_err());
        // Corrupted size field.
        let mut bad = bytes.clone();
        bad[STANDALONE_HEADER + 4] = 0xFF;
        bad[STANDALONE_HEADER + 5] = 0x7F;
        assert!(deserialize(&bad, &table, Rid::new(0, 0)).is_err());
        // Wrong parent offset.
        let mut bad = bytes;
        bad[STANDALONE_HEADER + 2] = 0x09;
        assert!(deserialize(&bad, &table, Rid::new(0, 0)).is_err());
    }

    #[test]
    fn empty_aggregate_roundtrip() {
        let t = RecordTree::new(5, PContent::Aggregate(vec![]), Rid::invalid());
        let mut table = TypeTable::new();
        let (bytes, _) = serialize(&t, &mut table);
        assert_eq!(bytes.len(), STANDALONE_HEADER);
        let back = deserialize(&bytes, &table, Rid::new(0, 0)).unwrap();
        assert!(back.children(back.root()).is_empty());
    }

    #[test]
    fn vanilla_markup_comparison_from_appendix() {
        // Appendix A: "storing vanilla XML markup with only a 1-character
        // tag name already needs 7 bytes (<x>...</x>)" vs our 6-byte
        // embedded header.
        let mut t = RecordTree::new(10, PContent::Aggregate(vec![]), Rid::invalid());
        let child = t.alloc(11, PContent::Aggregate(vec![]));
        t.attach(t.root(), 0, child);
        assert_eq!(t.embedded_size(child), 6);
    }
}
