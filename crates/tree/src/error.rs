//! Error type for the tree storage manager.

use std::fmt;

use natix_storage::{Rid, StorageError};

use crate::model::PNodeId;

/// Errors raised by the tree storage manager.
#[derive(Debug)]
pub enum TreeError {
    /// Propagated record-manager failure.
    Storage(StorageError),
    /// A stored record's bytes could not be parsed.
    CorruptRecord { rid: Rid, message: String },
    /// A node pointer did not resolve (stale after a relocation, or wrong).
    BadNodePtr { rid: Rid, node: PNodeId },
    /// A single node is too large to ever fit in a record (the split
    /// algorithm cannot divide below node granularity; the document layer
    /// chunks long literals to avoid this).
    OversizedNode { size: usize, max: usize },
    /// Attempted an operation that needs an aggregate on a leaf node.
    NotAnAggregate { rid: Rid, node: PNodeId },
    /// Attempted a literal operation on a non-literal node.
    NotALiteral { rid: Rid, node: PNodeId },
    /// The record carries depth-aware-packing structure (path-prefix
    /// entries or a continuation placeholder) that in-place structural
    /// edits cannot preserve; the caller must normalize the cluster
    /// ([`crate::store::TreeStore::normalize_packed`]) and retry.
    PackedRecord(Rid),
    /// Invariant violation detected by the validator.
    Invariant(String),
}

/// Convenience alias used throughout the tree crate.
pub type TreeResult<T> = Result<T, TreeError>;

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Storage(e) => write!(f, "storage error: {e}"),
            TreeError::CorruptRecord { rid, message } => {
                write!(f, "corrupt record {rid}: {message}")
            }
            TreeError::BadNodePtr { rid, node } => {
                write!(f, "node pointer {rid}/{node} does not resolve")
            }
            TreeError::OversizedNode { size, max } => {
                write!(
                    f,
                    "single node of {size} bytes exceeds record capacity {max}"
                )
            }
            TreeError::NotAnAggregate { rid, node } => {
                write!(f, "node {rid}/{node} is not an aggregate")
            }
            TreeError::NotALiteral { rid, node } => {
                write!(f, "node {rid}/{node} is not a literal")
            }
            TreeError::PackedRecord(rid) => {
                write!(
                    f,
                    "record {rid} holds packed-prefix structure; normalize before editing"
                )
            }
            TreeError::Invariant(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

impl std::error::Error for TreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TreeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for TreeError {
    fn from(e: StorageError) -> Self {
        TreeError::Storage(e)
    }
}
