//! Repository-level error type.

use std::fmt;

/// Errors surfaced by the repository API.
#[derive(Debug)]
pub enum NatixError {
    /// Record-manager failure.
    Storage(natix_storage::StorageError),
    /// Tree-storage-manager failure.
    Tree(natix_tree::TreeError),
    /// XML parsing/serialisation failure.
    Xml(natix_xml::XmlError),
    /// No document with that name.
    NoSuchDocument(String),
    /// A document with that name already exists.
    DocumentExists(String),
    /// A logical node id did not resolve.
    NoSuchNode(u64),
    /// Invalid path-query syntax.
    BadQuery(String),
    /// Schema (DTD) validation failure.
    Validation(String),
    /// Catalog corruption on open.
    Catalog(String),
    /// A forced plan shape cannot execute the given query (e.g. forcing
    /// the summary-only plan for a query that must touch records, or an
    /// index-seeded plan with no attached index). Only surfaced when the
    /// caller forces a shape; the planner itself never picks an
    /// inapplicable plan.
    PlanUnsupported(String),
    /// A read pinned at an older epoch tried to bind logical node ids for
    /// physical addresses a concurrent structural edit has already
    /// superseded — binding them would poison the id map with historical
    /// addresses. Retry the read (a fresh call pins a fresh epoch), or use
    /// the snapshot-consistent `query_content` family, which never binds.
    SnapshotRace(String),
}

/// Convenience alias for repository results.
pub type NatixResult<T> = Result<T, NatixError>;

impl fmt::Display for NatixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NatixError::Storage(e) => write!(f, "storage: {e}"),
            NatixError::Tree(e) => write!(f, "tree store: {e}"),
            NatixError::Xml(e) => write!(f, "xml: {e}"),
            NatixError::NoSuchDocument(n) => write!(f, "no document named '{n}'"),
            NatixError::DocumentExists(n) => write!(f, "document '{n}' already exists"),
            NatixError::NoSuchNode(id) => write!(f, "logical node {id} does not resolve"),
            NatixError::BadQuery(m) => write!(f, "bad path query: {m}"),
            NatixError::Validation(m) => write!(f, "validation failed: {m}"),
            NatixError::Catalog(m) => write!(f, "catalog: {m}"),
            NatixError::PlanUnsupported(m) => write!(f, "plan not applicable: {m}"),
            NatixError::SnapshotRace(n) => write!(
                f,
                "document '{n}': snapshot superseded by a concurrent edit before \
                 its results could be bound; retry the read"
            ),
        }
    }
}

impl std::error::Error for NatixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NatixError::Storage(e) => Some(e),
            NatixError::Tree(e) => Some(e),
            NatixError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<natix_storage::StorageError> for NatixError {
    fn from(e: natix_storage::StorageError) -> Self {
        NatixError::Storage(e)
    }
}

impl From<natix_tree::TreeError> for NatixError {
    fn from(e: natix_tree::TreeError) -> Self {
        NatixError::Tree(e)
    }
}

impl From<natix_xml::XmlError> for NatixError {
    fn from(e: natix_xml::XmlError) -> Self {
        NatixError::Xml(e)
    }
}
