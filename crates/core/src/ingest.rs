//! Concurrent multi-document ingestion.
//!
//! The paper's storage manager serves multiple users; loading a corpus one
//! document at a time leaves the machine idle whenever the single writer
//! stalls on disk. [`Repository::put_documents_parallel`] runs N streaming
//! bulkloads on worker threads **into distinct segments** simultaneously:
//!
//! * each worker owns a [`TreeStore`] over an ingestion segment from a
//!   lazily created pool (`ingest0`, `ingest1`, …), so page allocation and
//!   free-space bookkeeping of different writers never contend on one
//!   segment inventory, and each document's pages stay clustered;
//! * labels are interned through the symbol table's read-locked fast path
//!   — parsers run concurrently, escalating to the write lock only for a
//!   genuinely new tag or attribute name;
//! * names are registered through the atomic claim-name-then-publish
//!   protocol: of two racing loads of the same name exactly one proceeds,
//!   the loser fails with [`crate::NatixError::DocumentExists`] before
//!   writing a single record, and a load failing mid-stream rolls back
//!   every record it flushed and releases its claim;
//! * record RIDs are global (a page id addresses the whole repository), so
//!   documents ingested into any segment are read, queried, edited and
//!   checkpointed exactly like documents in the main segment.
//!
//! The buffer manager performs all disk I/O outside its pool mutex and the
//! storage manager's allocator lock is never held across page I/O, so one
//! writer's eviction write-back overlaps the other writers' parsing and
//! page fills — this is what the thread-scaling benchmark
//! (`BENCH_concurrent_ingest.json`) measures.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use natix_tree::TreeStore;

use crate::document::{DocId, DocState};
use crate::error::{NatixError, NatixResult};
use crate::repository::Repository;

/// Upper bound on the ingestion-segment pool. Segments are a scarce
/// directory resource (the header page holds the whole segment directory),
/// and more than this many concurrent writers share segments round-robin —
/// sharing is safe, the pool only exists for clustering and to keep
/// free-space inventories from contending.
const MAX_INGEST_SEGMENTS: usize = 8;

impl Repository {
    /// Stores many XML documents concurrently with up to `writers` worker
    /// threads, each running the streaming bulkloader into its own
    /// ingestion segment. Returns one result per input document, in input
    /// order. Takes `&self`: ingestion runs against a shared repository
    /// reference, concurrently with readers of already-stored documents.
    ///
    /// Failure of one document never affects the others: its records are
    /// rolled back, its name claim is released, and its slot in the result
    /// carries the error.
    pub fn put_documents_parallel(
        &self,
        docs: &[(String, String)],
        writers: usize,
    ) -> Vec<NatixResult<DocId>> {
        let writers = writers.max(1).min(docs.len().max(1));
        if docs.is_empty() {
            return Vec::new();
        }
        // Create the segment pool up front, serially: the pool is shared
        // by all workers and `create_segment` persists the directory.
        let slots = writers.min(MAX_INGEST_SEGMENTS);
        let mut stores = Vec::with_capacity(slots);
        for slot in 0..slots {
            match self.ingest_store(slot) {
                Ok(store) => stores.push(store),
                Err(e) => {
                    // Could not set up segments (e.g. directory full):
                    // every document fails the same way.
                    let msg = e.to_string();
                    return docs
                        .iter()
                        .map(|_| Err(NatixError::Catalog(msg.clone())))
                        .collect();
                }
            }
        }
        let stores: Vec<Arc<TreeStore>> = stores.into_iter().map(Arc::new).collect();
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<NatixResult<DocId>>>> = docs
            .iter()
            .map(|_| Mutex::with_rank(&parking_lot::rank::RESULT_SLOT, None))
            .collect();
        std::thread::scope(|scope| {
            for w in 0..writers {
                let store = Arc::clone(&stores[w % slots]);
                let next = &next;
                let results = &results;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((name, xml)) = docs.get(i) else {
                        break;
                    };
                    *results[i].lock() = Some(self.ingest_one(&store, name, xml));
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.into_inner().expect("every job produced a result"))
            .collect()
    }

    /// Claims `name`, streams `xml` through a bulkloader over `store`, and
    /// publishes the document — the per-job body of one ingestion worker,
    /// and (over the main tree store) the body of
    /// [`put_xml_streaming`](Repository::put_xml_streaming).
    pub(crate) fn ingest_one(
        &self,
        store: &TreeStore,
        name: &str,
        xml: &str,
    ) -> NatixResult<DocId> {
        self.claim_name(name)?;
        match self.stream_load(store, xml) {
            Ok((stats, summary)) => {
                // The load's write operation has published and logged by
                // now; register the name, then gate on log durability.
                let id = self.register(DocState::new(name.to_string(), stats.root_rid));
                self.summaries.install(id, std::sync::Arc::new(summary), 0);
                self.durable_gate()?;
                Ok(id)
            }
            Err(e) => {
                // stream_load already rolled back every flushed record.
                self.abandon_claim(name);
                Err(e)
            }
        }
    }

    /// The ingestion [`TreeStore`] for pool slot `slot`, creating (or, on
    /// a reopened repository, finding) its segment on first use. The store
    /// snapshots the main tree's current split matrix — matrix changes
    /// affect future loads, exactly as for the single-writer path.
    fn ingest_store(&self, slot: usize) -> NatixResult<TreeStore> {
        let mut pool = self.ingest_segs.lock();
        let seg = match pool.get(&slot) {
            Some(&seg) => seg,
            None => {
                let name = format!("ingest{slot}");
                let seg = match self.sm.segment_by_name(&name) {
                    Some(seg) => seg,
                    None => self.sm.create_segment(&name)?,
                };
                pool.insert(slot, seg);
                seg
            }
        };
        drop(pool);
        Ok(TreeStore::new(
            Arc::clone(&self.sm),
            seg,
            self.options.tree_config,
            self.tree.matrix().clone(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;

    fn repo() -> Repository {
        Repository::create_in_memory(RepositoryOptions {
            page_size: 1024,
            ..RepositoryOptions::default()
        })
        .unwrap()
    }

    fn doc(i: usize) -> (String, String) {
        let body: String = (0..20)
            .map(|j| format!("<item n=\"{j}\">payload {i}-{j} {}</item>", "x".repeat(j)))
            .collect();
        (format!("doc{i}"), format!("<batch>{body}</batch>"))
    }

    #[test]
    fn parallel_ingest_stores_all_documents() {
        let r = repo();
        let docs: Vec<_> = (0..12).map(doc).collect();
        let results = r.put_documents_parallel(&docs, 4);
        assert_eq!(results.len(), 12);
        for ((name, xml), res) in docs.iter().zip(&results) {
            res.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&r.get_xml(name).unwrap(), xml);
            r.physical_stats(name).unwrap();
        }
        assert_eq!(r.document_names().len(), 12);
    }

    #[test]
    fn parallel_ingest_with_one_writer_matches_sequential() {
        let a = repo();
        let b = repo();
        let docs: Vec<_> = (0..4).map(doc).collect();
        for res in a.put_documents_parallel(&docs, 1) {
            res.unwrap();
        }
        for (name, xml) in &docs {
            b.put_xml_streaming(name, xml).unwrap();
        }
        for (name, _) in &docs {
            assert_eq!(a.get_xml(name).unwrap(), b.get_xml(name).unwrap());
        }
    }

    #[test]
    fn duplicate_names_in_one_batch_have_one_winner() {
        let r = repo();
        let docs = vec![
            ("same".to_string(), "<a>first</a>".to_string()),
            ("same".to_string(), "<a>second</a>".to_string()),
            ("other".to_string(), "<b/>".to_string()),
        ];
        let results = r.put_documents_parallel(&docs, 3);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(ok, 2, "one 'same' + 'other'");
        let dup = results
            .iter()
            .filter(|r| matches!(r, Err(NatixError::DocumentExists(_))))
            .count();
        assert_eq!(dup, 1, "the losing duplicate gets a clean error");
        // The stored document is one of the two inputs, intact.
        let stored = r.get_xml("same").unwrap();
        assert!(stored == "<a>first</a>" || stored == "<a>second</a>");
        r.physical_stats("same").unwrap();
    }

    #[test]
    fn failed_documents_roll_back_and_succeed_later() {
        let r = repo();
        let docs = vec![
            ("good".to_string(), "<g>fine</g>".to_string()),
            (
                "bad".to_string(),
                format!("<r>{}<oops></r>", "<x>y</x>".repeat(200)),
            ),
        ];
        let results = r.put_documents_parallel(&docs, 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        // The failed name is free again and the records were rolled back.
        let results = r.put_documents_parallel(&[("bad".to_string(), "<r/>".to_string())], 1);
        results[0].as_ref().unwrap();
        assert_eq!(r.get_xml("bad").unwrap(), "<r/>");
    }
}
