//! Parallel path-query execution.
//!
//! PR 2 made the repository `Sync` and moved read-only traversal onto
//! `&self`; this module turns that into query throughput. Two axes of
//! parallelism, both returning results **bit-identical to the sequential
//! evaluator** ([`Repository::query_parsed`]):
//!
//! * **Multi-document fan-out** — [`Repository::query_documents`] /
//!   [`Repository::query_all`] run one worker per document over the
//!   shared buffer pool (documents live in disjoint records, so workers
//!   never contend on record content, only on buffer frames) and merge
//!   the per-document result lists in input order.
//!
//! * **Intra-document parallel descendant scans** —
//!   [`Repository::query_parallel`] evaluates descendant (`//`) steps by
//!   splitting the walk at **record boundaries**, the paper's natural
//!   unit of clustering: each record holds a connected subtree, so one
//!   record is one cache-friendly unit of scan work. Workers claim whole
//!   records from a shared work queue
//!   ([`TreeStore::scan_record_subtree`] loads a record, releases its
//!   page pin, then matches in memory — pins stay short), and every
//!   record is reached through exactly one proxy, so no record is
//!   scanned twice. Child (`/`) steps fan their context nodes out across
//!   workers instead: each context's lazy child walk is independent
//!   (positional predicates count per parent).
//!
//! ## Determinism
//!
//! The sequential evaluator enumerates matches in document order within
//! each context, contexts in order. The parallel scan reproduces that
//! order without coordination: every unit of work carries an *order key*
//! — the path of pre-order positions from its context to its record —
//! and every match appends its position within the record. Sorting hits
//! by `(context, key)` lexicographically *is* the sequential enumeration
//! order, so positional predicates (`//X[n]`) select the same node and
//! the merged result is identical regardless of scheduling.
//!
//! ## Sequential fallback
//!
//! Spawning workers for a three-record document costs more than the
//! scan. The descendant scan therefore starts inline and only goes
//! parallel once its queue has accumulated
//! [`ParallelQueryOptions::parallel_record_threshold`] pending records —
//! small subtrees complete entirely sequentially, and the threshold
//! doubles as the knob benchmarks use to force either mode.
//!
//! [`TreeStore::scan_record_subtree`]: natix_tree::TreeStore::scan_record_subtree

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::{Condvar, Mutex};

use natix_tree::{NodePtr, RecordEntry};
use natix_xml::{LabelId, LABEL_TEXT};

use crate::document::{DocId, NodeId};
use crate::error::{NatixError, NatixResult};
use crate::index::LabelIndex;
use crate::query::{PathQuery, Step, Test};
use crate::repository::Repository;

/// Tuning knobs for parallel query execution.
#[derive(Debug, Clone)]
pub struct ParallelQueryOptions {
    /// Worker threads (including the calling thread). 1 disables
    /// parallelism entirely.
    pub threads: usize,
    /// A descendant scan goes parallel only once its work queue holds at
    /// least this many pending records; below that it runs to completion
    /// on the calling thread.
    pub parallel_record_threshold: usize,
    /// Read-ahead window per scan worker: after claiming a record, the
    /// worker issues a best-effort batched prefetch for the pages of up
    /// to this many *queued* records (plus the claimed one), so the
    /// buffer pool overlaps their reads with the current record's scan.
    /// 0 disables prefetch. The prefetch runs outside the scan-queue
    /// lock (it is an I/O region) and enters frames at scan priority,
    /// so it cannot displace the point-access working set.
    pub prefetch_window: usize,
}

impl Default for ParallelQueryOptions {
    fn default() -> Self {
        ParallelQueryOptions {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            parallel_record_threshold: 16,
            prefetch_window: 4,
        }
    }
}

/// Child (`/`) steps fan contexts across workers only above this many
/// context nodes — below it, thread startup dominates the step.
const CHILD_FANOUT_MIN: usize = 32;

/// Pre-order position path from a context node down to a match; ordering
/// keys compare lexicographically as document order.
type OrderKey = Vec<u32>;

/// One claimed unit of scan work: a subtree within a single record.
struct ScanTask {
    /// Index of the context node this work descends from.
    ctx: u32,
    /// Order-key prefix of this record (position path from the context).
    key: OrderKey,
    /// First node of the subtree to scan (the context node itself, or a
    /// child record's root).
    start: NodePtr,
    /// True only for the seed task that starts at the context node —
    /// descendant-or-self treats that first node specially.
    is_ctx: bool,
}

/// A matched node with its deterministic merge position.
struct ScanHit {
    ctx: u32,
    key: OrderKey,
    ptr: NodePtr,
}

/// The shared work queue of one parallel descendant scan.
struct ScanQueue {
    state: Mutex<ScanQueueState>,
    work: Condvar,
}

struct ScanQueueState {
    tasks: VecDeque<ScanTask>,
    /// Tasks currently being scanned by some worker; the scan is done
    /// when the queue is empty *and* nothing is active (an active task
    /// may still spawn child records).
    active: usize,
    /// Set on the first worker error: the scan aborts, remaining workers
    /// drain out, the error is returned to the caller.
    failed: bool,
}

impl Repository {
    /// Evaluates a path query against one document with intra-document
    /// parallelism; results are identical to [`Repository::query`].
    pub fn query_parallel(
        &self,
        doc: DocId,
        q: &PathQuery,
        opts: &ParallelQueryOptions,
    ) -> NatixResult<Vec<NodeId>> {
        let state = self.state(doc)?;
        // One record-version snapshot for the whole evaluation; scan
        // workers adopt its epoch, so every record — across all workers —
        // is read as of the same instant even while writers edit or
        // ingest this very document.
        let _pin = self.tree.begin_read();
        let root = self.snapshot_root(&state)?;
        let current = self.eval_parallel_ptrs(doc, NodePtr::new(root, 0), q, opts, None)?;
        self.bind_snapshot(&state, current)
    }

    /// [`query_parallel`](Self::query_parallel) with a [`LabelIndex`]:
    /// when the query starts with a descendant name (or `text()`) step
    /// and the index is current for `doc`, the index's document-order
    /// entries *are* the step's matches — the scan (warm-up walk
    /// included) is skipped entirely and later steps start from the
    /// seeded context set. Falls back to the plain scan whenever the
    /// index cannot answer (stale, wildcard step, unknown label).
    pub fn query_parallel_indexed(
        &self,
        doc: DocId,
        q: &PathQuery,
        opts: &ParallelQueryOptions,
        index: &LabelIndex,
    ) -> NatixResult<Vec<NodeId>> {
        let state = self.state(doc)?;
        let _pin = self.tree.begin_read();
        let root = self.snapshot_root(&state)?;
        let current = self.eval_parallel_ptrs(doc, NodePtr::new(root, 0), q, opts, Some(index))?;
        self.bind_snapshot(&state, current)
    }

    /// Snapshot-consistent content query with parallel evaluation: like
    /// [`Repository::query_content`], but the physical phase runs through
    /// the parallel evaluator (positional descendant predicates dispatch
    /// to the lazy walk, as in
    /// [`query_sequential`](Self::query_sequential)).
    pub fn query_content_opts(
        &self,
        doc: DocId,
        q: &PathQuery,
        opts: &ParallelQueryOptions,
    ) -> NatixResult<Vec<(String, String)>> {
        let state = self.state(doc)?;
        let _pin = self.tree.begin_read();
        let root = NodePtr::new(self.snapshot_root(&state)?, 0);
        let ptrs = if q.steps.iter().any(|s| s.descendant && s.position.is_some()) {
            self.eval_lazy_ptrs(root, q)?
        } else {
            self.eval_parallel_ptrs(doc, root, q, opts, None)?
        };
        self.resolve_content(&ptrs)
    }

    /// The parallel evaluator at physical-pointer level. The caller owns
    /// the snapshot pin; workers spawned here adopt its epoch. Crate-wide
    /// so the planner ([`crate::query`]) can drive the scan and
    /// index-seeded plan shapes directly.
    pub(crate) fn eval_parallel_ptrs(
        &self,
        doc: DocId,
        root: NodePtr,
        q: &PathQuery,
        opts: &ParallelQueryOptions,
        index: Option<&LabelIndex>,
    ) -> NatixResult<Vec<NodePtr>> {
        let steps = self.resolve_steps(q);
        let (first, first_label) = steps[0];
        let mut current: Vec<NodePtr> = Vec::new();
        if first.descendant {
            current = match self.index_seed(index, doc, first, first_label)? {
                Some(seeded) => seeded,
                None => self.descendant_scan(&[root], first, first_label, opts)?,
            };
        } else if self.step_matches(root, first, first_label)? && first.position.unwrap_or(1) == 1 {
            current.push(root);
        }
        for &(step, label) in &steps[1..] {
            if current.is_empty() {
                break;
            }
            current = if step.descendant {
                self.descendant_scan(&current, step, label, opts)?
            } else if opts.threads > 1 && current.len() >= CHILD_FANOUT_MIN.max(2 * opts.threads) {
                self.parallel_child_step(&current, step, label, opts.threads)?
            } else {
                let mut next = Vec::new();
                for &ctx in &current {
                    self.collect_children(ctx, step, label, &mut next)?;
                }
                next
            };
        }
        Ok(current)
    }

    /// Seeds a leading descendant step straight from the label index: the
    /// index stores one entry per facade node in document (traversal)
    /// order, so its per-label range for this document *is* the step's
    /// match list — no record is scanned at all. `None` when the index
    /// cannot answer (not provided, stale for `doc`, wildcard test, or a
    /// name the alphabet has never seen — which would also be an empty
    /// scan, but the scan is the conservative default).
    fn index_seed(
        &self,
        index: Option<&LabelIndex>,
        doc: DocId,
        step: &Step,
        label: Option<LabelId>,
    ) -> NatixResult<Option<Vec<NodePtr>>> {
        let Some(idx) = index else { return Ok(None) };
        if !idx.is_current(doc) {
            return Ok(None);
        }
        let label = match (&step.test, label) {
            (Test::Name(_), Some(l)) => l,
            (Test::Text, _) => LABEL_TEXT,
            _ => return Ok(None),
        };
        let mut ptrs = idx.lookup_ptrs(self, doc, label)?;
        if let Some(n) = step.position {
            // `//x[n]` from the document root: the n-th match in document
            // order, exactly as the scan's deterministic merge selects.
            ptrs = ptrs
                .get(n - 1)
                .map(|&p| vec![p])
                .into_iter()
                .flatten()
                .collect();
        }
        Ok(Some(ptrs))
    }

    /// The record-granular evaluator run to completion on the calling
    /// thread: descendant steps load and match each record **once**,
    /// instead of re-parsing the enclosing record for every visited node
    /// as the lazy reference walk ([`Repository::query_parsed`]) does.
    /// Identical results; far less CPU on scan-heavy queries.
    ///
    /// Queries with a *positional* descendant predicate (`//X[n]`) are
    /// dispatched to the lazy walk instead: it stops at the n-th match
    /// after reading a handful of records, where an eager scan would read
    /// the whole subtree only to discard all but one hit.
    pub fn query_sequential(&self, doc: DocId, q: &PathQuery) -> NatixResult<Vec<NodeId>> {
        if q.steps.iter().any(|s| s.descendant && s.position.is_some()) {
            return self.query_parsed(doc, q);
        }
        self.query_parallel(
            doc,
            q,
            &ParallelQueryOptions {
                threads: 1,
                parallel_record_threshold: usize::MAX,
                ..Default::default()
            },
        )
    }

    /// Evaluates one pre-parsed query against many documents, one worker
    /// per document (up to the default thread count), over the shared
    /// buffer pool. Each worker runs the record-granular evaluator
    /// ([`query_sequential`](Self::query_sequential)) on its document, so
    /// fan-out scales by overlapping the workers' page-read stalls.
    /// Results come back in input order, one slot per document; a failing
    /// document never affects the others.
    pub fn query_documents(&self, docs: &[DocId], q: &PathQuery) -> Vec<NatixResult<Vec<NodeId>>> {
        self.query_documents_opts(docs, q, &ParallelQueryOptions::default())
    }

    /// [`query_documents`](Self::query_documents) with explicit options.
    pub fn query_documents_opts(
        &self,
        docs: &[DocId],
        q: &PathQuery,
        opts: &ParallelQueryOptions,
    ) -> Vec<NatixResult<Vec<NodeId>>> {
        let workers = opts.threads.max(1).min(docs.len().max(1));
        if workers <= 1 {
            return docs.iter().map(|&d| self.query_sequential(d, q)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<NatixResult<Vec<NodeId>>>>> = docs
            .iter()
            .map(|_| Mutex::with_rank(&parking_lot::rank::RESULT_SLOT, None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&doc) = docs.get(i) else {
                        break;
                    };
                    *results[i].lock() = Some(self.query_sequential(doc, q));
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.into_inner().expect("every document produced a result"))
            .collect()
    }

    /// Evaluates a path expression against **every** stored document in
    /// parallel, returning `(name, matches)` pairs in document-id
    /// (insertion) order — the deterministic merge of the fan-out.
    pub fn query_all(&self, path: &str) -> NatixResult<Vec<(String, Vec<NodeId>)>> {
        self.query_all_opts(path, &ParallelQueryOptions::default())
    }

    /// [`query_all`](Self::query_all) with explicit options.
    pub fn query_all_opts(
        &self,
        path: &str,
        opts: &ParallelQueryOptions,
    ) -> NatixResult<Vec<(String, Vec<NodeId>)>> {
        let q = PathQuery::parse(path)?;
        let entries = self.doc_entries();
        let ids: Vec<DocId> = entries.iter().map(|&(_, id, _)| id).collect();
        let results = self.query_documents_opts(&ids, &q, opts);
        entries
            .into_iter()
            .zip(results)
            .map(|((name, _, _), r)| r.map(|hits| (name, hits)))
            .collect()
    }

    /// The descendant-or-self axis over all `contexts`, split at record
    /// boundaries. Mirrors the sequential `collect_descendants` exactly,
    /// positional predicate included.
    fn descendant_scan(
        &self,
        contexts: &[NodePtr],
        step: &Step,
        label: Option<LabelId>,
        opts: &ParallelQueryOptions,
    ) -> NatixResult<Vec<NodePtr>> {
        let mut queue: VecDeque<ScanTask> = contexts
            .iter()
            .enumerate()
            .map(|(i, &c)| ScanTask {
                ctx: i as u32,
                key: OrderKey::new(),
                start: c,
                is_ctx: true,
            })
            .collect();
        let mut hits: Vec<ScanHit> = Vec::new();
        // Inline warm-up: scan on the calling thread until the queue
        // proves there is at least a threshold's worth of parallel work.
        // Small subtrees finish right here — the sequential fallback.
        let mut spawned = Vec::new();
        while let Some(task) = queue.pop_front() {
            self.scan_task(&task, step, label, &mut hits, &mut spawned)?;
            queue.extend(spawned.drain(..));
            if opts.threads > 1 && queue.len() >= opts.parallel_record_threshold.max(1) {
                break;
            }
        }
        if !queue.is_empty() {
            let shared = ScanQueue {
                state: Mutex::with_rank(
                    &parking_lot::rank::SCAN_QUEUE,
                    ScanQueueState {
                        tasks: queue,
                        active: 0,
                        failed: false,
                    },
                ),
                work: Condvar::new(),
            };
            // The calling thread drains alongside `threads - 1` helpers.
            // Helpers adopt the coordinator's snapshot epoch, so all
            // workers read records as of the same instant.
            let epoch = self.tree.ambient_read_epoch();
            let helpers = opts.threads - 1;
            let mut worker_hits = std::thread::scope(|scope| -> NatixResult<Vec<Vec<ScanHit>>> {
                let handles: Vec<_> = (0..helpers)
                    .map(|w| {
                        let shared = &shared;
                        scope.spawn(move || {
                            let _pin = epoch.map(|e| self.tree.adopt_read(e));
                            self.drain_scan_queue(shared, step, label, opts.prefetch_window, w + 1)
                        })
                    })
                    .collect();
                let mine = self.drain_scan_queue(&shared, step, label, opts.prefetch_window, 0);
                let mut all = Vec::with_capacity(helpers + 1);
                let mut first_err = None;
                for res in handles
                    .into_iter()
                    .map(|h| h.join().expect("scan worker panicked"))
                    .chain(std::iter::once(mine))
                {
                    match res {
                        Ok(h) => all.push(h),
                        Err(e) => first_err = first_err.or(Some(e)),
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(all),
                }
            })?;
            for h in &mut worker_hits {
                hits.append(h);
            }
        }
        // Deterministic merge: (context, key) lexicographic order *is*
        // the sequential enumeration order.
        hits.sort_unstable_by(|a, b| a.ctx.cmp(&b.ctx).then_with(|| a.key.cmp(&b.key)));
        if let Some(n) = step.position {
            // `//x[n]`: the n-th match in document order under each
            // context, as in the sequential walk.
            let mut out = Vec::new();
            let mut cur_ctx = None;
            let mut seen = 0usize;
            for h in &hits {
                if cur_ctx != Some(h.ctx) {
                    cur_ctx = Some(h.ctx);
                    seen = 0;
                }
                seen += 1;
                if seen == n {
                    out.push(h.ptr);
                }
            }
            Ok(out)
        } else {
            Ok(hits.into_iter().map(|h| h.ptr).collect())
        }
    }

    /// Worker loop of the parallel drain: claim a record, scan it, feed
    /// discovered child records back, until the queue is empty with no
    /// active scanners (or a worker failed).
    ///
    /// With a non-zero `prefetch_window` the worker keeps a small
    /// read-ahead in flight: on each claim it snapshots the pages of the
    /// next queued records *under* the queue lock, then — with the lock
    /// dropped, since the read is an I/O region — hands them to the
    /// buffer pool as one batched, scan-priority prefetch together with
    /// the claimed record's own page. A demand pin racing the prefetch
    /// coalesces on the pool's in-flight set, so no page is read twice.
    ///
    /// Each worker's window is offset by `worker * prefetch_window`
    /// *distinct* pages into the queue, so concurrent workers keep
    /// disjoint batches in flight. Without the stride every worker would
    /// snapshot the same head-of-queue pages, the pool's in-flight set
    /// would collapse the batches into one, and the scan would serialize
    /// on a single reader instead of overlapping batched reads.
    fn drain_scan_queue(
        &self,
        shared: &ScanQueue,
        step: &Step,
        label: Option<LabelId>,
        prefetch_window: usize,
        worker: usize,
    ) -> NatixResult<Vec<ScanHit>> {
        let mut hits = Vec::new();
        let mut spawned = Vec::new();
        let mut ahead: Vec<natix_storage::PageId> = Vec::new();
        loop {
            let task = {
                let mut st = shared.state.lock();
                let t = loop {
                    if st.failed {
                        return Ok(hits);
                    }
                    if let Some(t) = st.tasks.pop_front() {
                        st.active += 1;
                        break t;
                    }
                    if st.active == 0 {
                        return Ok(hits);
                    }
                    st = shared.work.wait(st);
                };
                if prefetch_window > 0 {
                    ahead.clear();
                    ahead.push(t.start.rid.page);
                    // Records are dense on pages, so counting *tasks*
                    // would collapse the window to a page or two; count
                    // distinct pages instead, skipping this worker's
                    // stride offset. The queue walk is bounded so a deep
                    // queue can't stretch the lock hold time.
                    let skip = worker * prefetch_window;
                    let mut seen: Vec<natix_storage::PageId> = Vec::new();
                    for queued in st.tasks.iter().take((skip + prefetch_window) * 64) {
                        if ahead.len() > prefetch_window {
                            break;
                        }
                        let page = queued.start.rid.page;
                        if page == t.start.rid.page || seen.contains(&page) {
                            continue;
                        }
                        seen.push(page);
                        if seen.len() > skip {
                            ahead.push(page);
                        }
                    }
                }
                t
            };
            if !ahead.is_empty() {
                // Advisory: a prefetch failure is not a query failure —
                // the demand read below surfaces any persistent error.
                let _ = self.tree.prefetch_pages(&ahead);
                ahead.clear();
            }
            // A panicking scan must not strand the queue: `active` was
            // incremented above, and a sibling (or the caller) waiting on
            // the condvar would sleep forever if this task silently
            // vanished. The guard marks the scan failed on unwind so
            // every drainer exits and the panic propagates through the
            // scope join instead of deadlocking.
            struct PanicGuard<'a> {
                shared: &'a ScanQueue,
                armed: bool,
            }
            impl Drop for PanicGuard<'_> {
                fn drop(&mut self) {
                    if self.armed {
                        let mut st = self.shared.state.lock();
                        st.active -= 1;
                        st.failed = true;
                        drop(st);
                        self.shared.work.notify_all();
                    }
                }
            }
            let mut guard = PanicGuard {
                shared,
                armed: true,
            };
            let res = self.scan_task(&task, step, label, &mut hits, &mut spawned);
            guard.armed = false;
            let mut st = shared.state.lock();
            st.active -= 1;
            match res {
                Ok(()) => st.tasks.extend(spawned.drain(..)),
                Err(e) => {
                    st.failed = true;
                    drop(st);
                    shared.work.notify_all();
                    return Err(e);
                }
            }
            drop(st);
            // New tasks may be claimable, or the scan may just have gone
            // idle — either way the sleepers must re-check.
            shared.work.notify_all();
        }
    }

    /// Scans one record subtree: matching facade nodes go to `hits` with
    /// their order key, child records to `spawned` with the key prefix
    /// that keeps their subtree's hits in document order.
    fn scan_task(
        &self,
        task: &ScanTask,
        step: &Step,
        label: Option<LabelId>,
        hits: &mut Vec<ScanHit>,
        spawned: &mut Vec<ScanTask>,
    ) -> NatixResult<()> {
        let mut seq: u32 = 0;
        let mut first = true;
        self.tree.scan_record_subtree(task.start, &mut |entry| {
            match *entry {
                RecordEntry::Node {
                    ptr,
                    label: l,
                    literal,
                } => {
                    let matches = match &step.test {
                        Test::Any => !literal,
                        Test::Text => l == LABEL_TEXT,
                        Test::Name(_) => !literal && label.is_some_and(|id| l == id),
                    };
                    // Descendant-or-self: the context node itself
                    // participates, except for a `text()` test — exactly
                    // the sequential walk's rule.
                    if matches && !(first && task.is_ctx && step.test == Test::Text) {
                        let mut key = task.key.clone();
                        key.push(seq);
                        hits.push(ScanHit {
                            ctx: task.ctx,
                            key,
                            ptr,
                        });
                    }
                }
                RecordEntry::ChildRecord { ptr, .. } => {
                    let mut key = task.key.clone();
                    key.push(seq);
                    spawned.push(ScanTask {
                        ctx: task.ctx,
                        key,
                        start: ptr,
                        is_ctx: false,
                    });
                }
            }
            seq += 1;
            first = false;
            Ok(true)
        })?;
        Ok(())
    }

    /// A child (`/`) step with many contexts: contexts are claimed from a
    /// shared counter and each worker runs the lazy per-context child
    /// walk; per-context result slots make the concatenation order
    /// independent of scheduling.
    fn parallel_child_step(
        &self,
        contexts: &[NodePtr],
        step: &Step,
        label: Option<LabelId>,
        threads: usize,
    ) -> NatixResult<Vec<NodePtr>> {
        let slots: Vec<Mutex<Vec<NodePtr>>> = contexts
            .iter()
            .map(|_| Mutex::with_rank(&parking_lot::rank::RESULT_SLOT, Vec::new()))
            .collect();
        let next = AtomicUsize::new(0);
        let failed: Mutex<Option<NatixError>> =
            Mutex::with_rank(&parking_lot::rank::RESULT_SLOT, None);
        let epoch = self.tree.ambient_read_epoch();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let _pin = epoch.map(|e| self.tree.adopt_read(e));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&ctx) = contexts.get(i) else {
                            break;
                        };
                        if failed.lock().is_some() {
                            break;
                        }
                        let mut out = Vec::new();
                        match self.collect_children(ctx, step, label, &mut out) {
                            Ok(()) => *slots[i].lock() = out,
                            Err(e) => {
                                let mut f = failed.lock();
                                if f.is_none() {
                                    *f = Some(e);
                                }
                                break;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = failed.into_inner() {
            return Err(e);
        }
        Ok(slots.into_iter().flat_map(Mutex::into_inner).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;

    fn opts(threads: usize, threshold: usize) -> ParallelQueryOptions {
        ParallelQueryOptions {
            threads,
            parallel_record_threshold: threshold,
            ..Default::default()
        }
    }

    /// A repository whose documents span many records (small pages).
    fn multi_record_repo(docs: usize) -> (Repository, Vec<String>) {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 512,
            ..RepositoryOptions::default()
        })
        .unwrap();
        let mut names = Vec::new();
        for d in 0..docs {
            let body: String = (0..40)
                .map(|i| {
                    format!(
                        "<SPEECH><SPEAKER>S{i}</SPEAKER><LINE>line {i} of doc {d}</LINE>\
                         <LINE>second {i}</LINE></SPEECH>"
                    )
                })
                .collect();
            let name = format!("play{d}");
            repo.put_xml_streaming(
                &name,
                &format!("<PLAY><ACT><SCENE>{body}</SCENE></ACT></PLAY>"),
            )
            .unwrap();
            names.push(name);
        }
        (repo, names)
    }

    #[test]
    fn parallel_equals_sequential_across_thread_counts() {
        let (repo, names) = multi_record_repo(1);
        let doc = repo.doc_id(&names[0]).unwrap();
        for path in [
            "//SPEAKER",
            "/PLAY/ACT/SCENE/SPEECH/LINE",
            "//SPEECH[7]",
            "//LINE/text()",
            "/PLAY//SPEECH[3]/SPEAKER",
            "//*",
            "//NOPE",
        ] {
            let q = PathQuery::parse(path).unwrap();
            let seq = repo.query_parsed(doc, &q).unwrap();
            for threads in [1, 2, 4] {
                // Threshold 1 forces the parallel machinery even on this
                // small document.
                let par = repo.query_parallel(doc, &q, &opts(threads, 1)).unwrap();
                assert_eq!(par, seq, "{path} with {threads} threads");
            }
            // Default (high) threshold: sequential fallback, same result.
            let fallback = repo
                .query_parallel(doc, &q, &ParallelQueryOptions::default())
                .unwrap();
            assert_eq!(fallback, seq, "{path} via fallback");
        }
    }

    #[test]
    fn query_documents_matches_per_document_sequential() {
        let (repo, names) = multi_record_repo(6);
        let q = PathQuery::parse("//SPEAKER").unwrap();
        let ids: Vec<DocId> = names.iter().map(|n| repo.doc_id(n).unwrap()).collect();
        let seq: Vec<Vec<NodeId>> = ids
            .iter()
            .map(|&d| repo.query_parsed(d, &q).unwrap())
            .collect();
        for threads in [1, 3, 8] {
            let par = repo.query_documents_opts(&ids, &q, &opts(threads, 16));
            let par: Vec<Vec<NodeId>> = par.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(par, seq, "{threads} threads");
        }
    }

    #[test]
    fn query_all_returns_documents_in_id_order() {
        let (repo, names) = multi_record_repo(5);
        let all = repo.query_all("/PLAY/ACT/SCENE/SPEECH[1]/SPEAKER").unwrap();
        assert_eq!(
            all.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            names.iter().map(String::as_str).collect::<Vec<_>>()
        );
        for (name, hits) in &all {
            assert_eq!(hits.len(), 1, "{name}");
        }
    }

    #[test]
    fn index_seeded_descendant_scan_matches_plain_scan() {
        let (repo, names) = multi_record_repo(1);
        let doc = repo.doc_id(&names[0]).unwrap();
        let mut idx = crate::index::LabelIndex::create(&repo).unwrap();
        idx.index_document(&repo, &names[0]).unwrap();
        for path in [
            "//SPEAKER",                // seeded: leading descendant name step
            "//SPEECH[7]",              // seeded with a positional predicate
            "//LINE/text()",            // seeded, then a child step
            "//SPEECH/LINE",            // seeded context set feeds a child step
            "//*",                      // wildcard: falls back to the scan
            "//NOPE",                   // unknown label: empty either way
            "/PLAY//SPEECH[3]/SPEAKER", // not a leading descendant step
        ] {
            let q = PathQuery::parse(path).unwrap();
            let plain = repo.query_parallel(doc, &q, &opts(3, 1)).unwrap();
            let seeded = repo
                .query_parallel_indexed(doc, &q, &opts(3, 1), &idx)
                .unwrap();
            assert_eq!(seeded, plain, "{path}");
        }
        // A stale index is never consulted: results stay correct after an
        // edit that invalidates the entries.
        let root = repo.root(doc).unwrap();
        repo.insert_element(doc, root, natix_tree::InsertPos::Last, "SPEAKER")
            .unwrap();
        idx.mark_stale(doc);
        let q = PathQuery::parse("//SPEAKER").unwrap();
        let plain = repo.query_parallel(doc, &q, &opts(3, 1)).unwrap();
        let seeded = repo
            .query_parallel_indexed(doc, &q, &opts(3, 1), &idx)
            .unwrap();
        assert_eq!(seeded, plain, "stale index must fall back to the scan");
        assert_eq!(seeded.len(), 41, "40 speeches + the appended SPEAKER");
    }

    #[test]
    fn index_seeding_skips_the_scan_entirely() {
        // With a current index and a single `//TAG` step, the evaluation
        // must not read a single record beyond the B+-tree pages: compare
        // buffer misses after clearing the pool.
        let (repo, names) = multi_record_repo(1);
        let doc = repo.doc_id(&names[0]).unwrap();
        let mut idx = crate::index::LabelIndex::create(&repo).unwrap();
        idx.index_document(&repo, &names[0]).unwrap();
        let q = PathQuery::parse("//SPEAKER").unwrap();
        let full = repo.query_parallel(doc, &q, &opts(1, 1)).unwrap();

        repo.clear_buffer().unwrap();
        let before = repo.io_stats().snapshot();
        let seeded = repo
            .query_parallel_indexed(doc, &q, &opts(1, 1), &idx)
            .unwrap();
        let seeded_misses = repo.io_stats().snapshot().since(&before).buffer_misses;
        assert_eq!(seeded, full);

        repo.clear_buffer().unwrap();
        let before = repo.io_stats().snapshot();
        let _ = repo.query_parallel(doc, &q, &opts(1, 1)).unwrap();
        let scan_misses = repo.io_stats().snapshot().since(&before).buffer_misses;
        assert!(
            seeded_misses < scan_misses,
            "index seeding must read fewer pages than the record scan \
             ({seeded_misses} vs {scan_misses})"
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let (repo, _) = multi_record_repo(2);
        let q = PathQuery::parse("//SPEAKER").unwrap();
        // An unregistered document id fails cleanly in its own slot.
        let results = repo.query_documents(&[0, 77, 1], &q);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(NatixError::NoSuchDocument(_))));
        assert!(results[2].is_ok());
    }
}
