//! The schema manager (§2.1).
//!
//! > The schema manager maintains the system catalog data needed by the
//! > document manager, which includes the Document Type Definitions
//! > (logical XML schema information) and physical schema information and
//! > statistics.
//!
//! DTDs are registered by name, persisted via the catalog, and used for
//! *document validation* (§2.1: "checks schema consistency, called
//! document validation in the XML world"). Physical schema information is
//! the split matrix, configured through
//! [`crate::Repository::set_matrix_rule`]; statistics come from
//! [`crate::Repository::physical_stats`] and
//! [`SchemaManager::label_histogram`].

use std::collections::HashMap;

use natix_xml::{Document, Dtd, NodeData, SymbolTable};

use crate::error::{NatixError, NatixResult};

/// Registry of DTDs plus validation helpers.
pub struct SchemaManager {
    dtds: Vec<(String, String, Dtd)>, // (name, source text, parsed)
}

impl SchemaManager {
    /// Creates an empty schema manager.
    pub fn new() -> SchemaManager {
        SchemaManager { dtds: Vec::new() }
    }

    /// Registers (or replaces) a DTD under `name`.
    pub fn register_dtd(&mut self, name: &str, text: &str) -> NatixResult<()> {
        let parsed = Dtd::parse(text)?;
        if let Some(slot) = self.dtds.iter_mut().find(|(n, _, _)| n == name) {
            slot.1 = text.to_string();
            slot.2 = parsed;
        } else {
            self.dtds.push((name.to_string(), text.to_string(), parsed));
        }
        Ok(())
    }

    /// The parsed DTD registered under `name`.
    pub fn dtd(&self, name: &str) -> Option<&Dtd> {
        self.dtds
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, d)| d)
    }

    /// Registered `(name, source)` pairs (catalog persistence).
    pub fn dtd_sources(&self) -> impl Iterator<Item = (&str, &str)> + '_ {
        self.dtds.iter().map(|(n, s, _)| (n.as_str(), s.as_str()))
    }

    /// Validates a logical document against a registered DTD: every
    /// element's child sequence must match its content model, and the root
    /// must be declared. Attribute literals are skipped (they are not part
    /// of element content).
    pub fn validate_document(
        &self,
        doc: &Document,
        symbols: &SymbolTable,
        dtd_name: &str,
    ) -> NatixResult<()> {
        let dtd = self
            .dtd(dtd_name)
            .ok_or_else(|| NatixError::Validation(format!("no DTD named '{dtd_name}'")))?;
        let root_name = symbols.name(doc.data(doc.root()).label());
        if !dtd.declares_element(root_name) {
            return Err(NatixError::Validation(format!(
                "root element <{root_name}> is not declared"
            )));
        }
        for n in doc.pre_order() {
            let NodeData::Element(label) = doc.data(n) else {
                continue;
            };
            let name = symbols.name(*label);
            let children: Vec<Option<&str>> = doc
                .children(n)
                .iter()
                .filter_map(|&c| match doc.data(c) {
                    NodeData::Element(l) => Some(Some(symbols.name(*l))),
                    NodeData::Literal { label, .. } => {
                        match symbols.kind(*label) {
                            // Attributes are not element content; comments
                            // and PIs are ignored by content models.
                            natix_xml::LabelKind::Attribute => None,
                            _ if *label == natix_xml::LABEL_TEXT => Some(None),
                            _ => None,
                        }
                    }
                })
                .collect();
            dtd.validate_element(name, &children)
                .map_err(|e| NatixError::Validation(e.to_string()))?;
        }
        Ok(())
    }

    /// Histogram of element labels in a document — the "statistics" the
    /// schema manager keeps for tuning (e.g. choosing split-matrix rules).
    pub fn label_histogram(&self, doc: &Document, symbols: &SymbolTable) -> HashMap<String, usize> {
        let mut h = HashMap::new();
        for n in doc.pre_order() {
            if let NodeData::Element(l) = doc.data(n) {
                *h.entry(symbols.name(*l).to_string()).or_insert(0) += 1;
            }
        }
        h
    }
}

impl Default for SchemaManager {
    fn default() -> Self {
        SchemaManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use natix_xml::{parse_document, ParserOptions};

    const DTD: &str = "<!ELEMENT SPEECH (SPEAKER, LINE+)>\
                       <!ELEMENT SPEAKER (#PCDATA)>\
                       <!ELEMENT LINE (#PCDATA)>";

    fn parse(xml: &str) -> (Document, SymbolTable) {
        let mut syms = SymbolTable::new();
        let doc = parse_document(xml, &mut syms, ParserOptions::default()).unwrap();
        (doc, syms)
    }

    #[test]
    fn register_and_lookup() {
        let mut sm = SchemaManager::new();
        sm.register_dtd("play", DTD).unwrap();
        assert!(sm.dtd("play").is_some());
        assert!(sm.dtd("nope").is_none());
        assert_eq!(sm.dtd_sources().count(), 1);
        // Re-registering replaces.
        sm.register_dtd("play", "<!ELEMENT SPEECH (SPEAKER)>")
            .unwrap();
        assert_eq!(sm.dtd_sources().count(), 1);
    }

    #[test]
    fn validation_passes_and_fails() {
        let mut sm = SchemaManager::new();
        sm.register_dtd("play", DTD).unwrap();
        let (good, syms) =
            parse("<SPEECH><SPEAKER>A</SPEAKER><LINE>x</LINE><LINE>y</LINE></SPEECH>");
        sm.validate_document(&good, &syms, "play").unwrap();
        let (bad, syms) = parse("<SPEECH><LINE>x</LINE></SPEECH>");
        assert!(matches!(
            sm.validate_document(&bad, &syms, "play"),
            Err(NatixError::Validation(_))
        ));
        let (undeclared_root, syms) = parse("<OTHER/>");
        assert!(sm
            .validate_document(&undeclared_root, &syms, "play")
            .is_err());
    }

    #[test]
    fn attributes_do_not_break_content_models() {
        let mut sm = SchemaManager::new();
        sm.register_dtd("play", DTD).unwrap();
        let (doc, syms) = parse("<SPEECH act=\"3\"><SPEAKER>A</SPEAKER><LINE>x</LINE></SPEECH>");
        sm.validate_document(&doc, &syms, "play").unwrap();
    }

    #[test]
    fn invalid_dtd_rejected() {
        let mut sm = SchemaManager::new();
        assert!(sm.register_dtd("bad", "<!ELEMENT r (a,>").is_err());
    }

    #[test]
    fn histogram_counts_elements() {
        let sm = SchemaManager::new();
        let (doc, syms) = parse("<a><b/><b/><c><b/></c></a>");
        let h = sm.label_histogram(&doc, &syms);
        assert_eq!(h["a"], 1);
        assert_eq!(h["b"], 3);
        assert_eq!(h["c"], 1);
    }
}
