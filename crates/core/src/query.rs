//! Path queries.
//!
//! The paper's query engine is "not yet implemented" (§2.1); its
//! evaluation nevertheless runs three hand-written queries (§4.3):
//!
//! 1. "retrieves all speakers in the third act and second scene of every
//!    play" — `/PLAY/ACT[3]/SCENE[2]//SPEAKER`;
//! 2. "recreates the textual representation of the complete first speech
//!    in every scene" — `/PLAY/ACT/SCENE/SPEECH[1]`;
//! 3. "reading only the opening speech of each play" —
//!    `/PLAY/ACT[1]/SCENE[1]/SPEECH[1]`.
//!
//! This module implements the XPath subset needed to express those (and a
//! bit more): absolute child steps (`/NAME`), descendant-or-self steps
//! (`//NAME`), wildcards (`*`), 1-based positional predicates (`[n]`,
//! counting among the nodes matching the step's name test within each
//! parent), and a final `text()` step.

use std::sync::Arc;

use natix_tree::NodePtr;
use natix_xml::LABEL_TEXT;

use crate::document::{DocId, NodeId};
use crate::error::{NatixError, NatixResult};
use crate::parallel_query::ParallelQueryOptions;
use crate::path_summary::{PathMatch, PathSummary};
use crate::repository::Repository;

/// A name test within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Test {
    Name(String),
    Any,
    Text,
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Step {
    pub(crate) descendant: bool,
    pub(crate) test: Test,
    pub(crate) position: Option<usize>,
}

/// A parsed path query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathQuery {
    pub(crate) steps: Vec<Step>,
}

impl PathQuery {
    /// Parses a path expression.
    pub fn parse(path: &str) -> NatixResult<PathQuery> {
        let bad = |m: &str| NatixError::BadQuery(format!("{m} in '{path}'"));
        if !path.starts_with('/') {
            return Err(bad("path must be absolute (start with '/')"));
        }
        let mut steps = Vec::new();
        let mut rest = path;
        while !rest.is_empty() {
            let descendant = if let Some(r) = rest.strip_prefix("//") {
                rest = r;
                true
            } else if let Some(r) = rest.strip_prefix('/') {
                rest = r;
                false
            } else {
                return Err(bad("expected '/'"));
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let mut token = &rest[..end];
            rest = &rest[end..];
            if token.is_empty() {
                return Err(bad("empty step"));
            }
            let mut position = None;
            if let Some(open) = token.find('[') {
                let close = token
                    .find(']')
                    .ok_or_else(|| bad("unterminated predicate"))?;
                if close != token.len() - 1 {
                    return Err(bad("trailing garbage after predicate"));
                }
                let n: usize = token[open + 1..close]
                    .parse()
                    .map_err(|_| bad("predicate must be a number"))?;
                if n == 0 {
                    return Err(bad("positions are 1-based"));
                }
                position = Some(n);
                token = &token[..open];
            }
            let test = match token {
                "*" => Test::Any,
                "text()" => Test::Text,
                name if name
                    .chars()
                    .all(|c| c.is_alphanumeric() || "-_.:".contains(c)) =>
                {
                    Test::Name(name.to_string())
                }
                _ => return Err(bad("invalid name test")),
            };
            steps.push(Step {
                descendant,
                test,
                position,
            });
        }
        if steps.is_empty() {
            return Err(bad("no steps"));
        }
        Ok(PathQuery { steps })
    }

    /// Number of steps (diagnostics).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

/// A plan shape the cost-based planner can emit. Every shape is
/// independently forceable through [`PlannerOptions::force`] and pinned
/// by a differential oracle (see the "plan shapes and their oracles"
/// section of [`crate::repository`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanShape {
    /// Answered entirely from the path summary: exact counts and
    /// provably-empty results, zero record access.
    SummaryOnly,
    /// Document-order descent pruned to the ancestor closure of the
    /// summary's matching paths.
    SummarySeeded,
    /// Leading descendant step seeded from an attached, current
    /// [`crate::index::LabelIndex`].
    IndexSeeded,
    /// Record-granular parallel scan ([`crate::parallel_query`]).
    ParallelScan,
    /// The sequential lazy reference walk.
    LazyWalk,
}

/// Planner configuration: execution tuning plus the force-plan override
/// the differential harness uses to reach every shape.
#[derive(Debug, Clone, Default)]
pub struct PlannerOptions {
    /// Force this plan shape instead of letting the cost model choose.
    /// Forcing a shape whose preconditions do not hold for the query
    /// surfaces [`NatixError::PlanUnsupported`] — never a wrong answer.
    pub force: Option<PlanShape>,
    /// Execution knobs for the scan-based shapes.
    pub exec: ParallelQueryOptions,
    /// Cost the planner charges for one buffer-pool page miss, in
    /// nanoseconds. `None` (the default) calibrates it from the pool's
    /// measured miss-latency EWMA ([`natix_storage::IoStats`]), falling
    /// back to [`DEFAULT_PAGE_COST_NS`] before the first miss. The value
    /// actually used is reported in [`PlanExplain::page_cost_ns`].
    pub page_cost_ns: Option<u64>,
}

/// Fallback page-miss cost (ns) used before the buffer pool has measured
/// one. Chosen so the uncalibrated break-even between a seeded descent
/// and a scan reproduces the pre-calibration "`visited * 2 <= total`"
/// rule on the in-memory backend.
pub const DEFAULT_PAGE_COST_NS: u64 = 2_000;
/// CPU cost (ns) the model charges per facade node visited, any shape.
const NODE_COST_NS: u64 = 100;
/// Nodes over which a summary-seeded descent amortises one page miss —
/// its proxy hops are random access, so misses are frequent.
const SEEDED_NODES_PER_READ: u64 = 16;
/// Nodes over which a record-granular scan amortises one page miss —
/// the scan workers keep a prefetch window in flight, so misses are
/// batched and rare per node.
const SCAN_NODES_PER_READ: u64 = 128;

/// How the planner arrived at a plan; returned alongside every planned
/// result and by [`Repository::explain`].
#[derive(Debug, Clone)]
pub struct PlanExplain {
    /// The shape that ran (or would run).
    pub shape: PlanShape,
    /// Whether the shape was forced rather than chosen.
    pub forced: bool,
    /// Human-readable choice rationale.
    pub reason: String,
    /// Whether a live path summary served this query's epoch.
    pub summary_current: bool,
    /// Exact result cardinality from the summary, when path-decidable.
    pub estimated_matches: Option<u64>,
    /// Nodes a summary-pruned descent would visit.
    pub estimated_visited: Option<u64>,
    /// Total facade nodes per the summary.
    pub total_nodes: Option<u64>,
    /// The page-miss cost (ns) the cost model charged for this plan:
    /// [`PlannerOptions::page_cost_ns`] if set, else the buffer pool's
    /// measured miss-latency EWMA, else [`DEFAULT_PAGE_COST_NS`].
    pub page_cost_ns: u64,
}

/// What a planned evaluation produces.
enum PlannedOutput {
    Ids(Vec<NodeId>),
    Count(u64),
    ExplainOnly,
}

/// What the caller asked the planned evaluation for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PlanMode {
    Ids,
    Count,
    Explain,
}

/// Adapts repository errors for use inside tree-store callbacks.
fn to_tree_err(e: NatixError) -> natix_tree::TreeError {
    match e {
        NatixError::Tree(t) => t,
        other => natix_tree::TreeError::Invariant(other.to_string()),
    }
}

impl Repository {
    /// Evaluates a path query against a stored document, returning logical
    /// node ids in document order. Read-only (`&self`): queries of
    /// different threads run in parallel.
    pub fn query(&self, name: &str, path: &str) -> NatixResult<Vec<NodeId>> {
        let q = PathQuery::parse(path)?;
        let doc = self.doc_id(name)?;
        self.query_parsed(doc, &q)
    }

    /// Resolves every name test of `q` to a label id up front: the
    /// evaluation walk matches a step per visited node, and taking the
    /// symbol-table lock (plus a string comparison) per node would put
    /// lock traffic on the query hot path. The lookup is **read-only** —
    /// a name absent from the alphabet cannot occur in any stored
    /// document, so it matches nothing (empty result), exactly like the
    /// string comparison it replaces; the read path never interns and
    /// never takes the symbol-table write lock.
    pub(crate) fn resolve_steps<'q>(
        &self,
        q: &'q PathQuery,
    ) -> Vec<(&'q Step, Option<natix_xml::LabelId>)> {
        let symbols = self.symbols();
        q.steps
            .iter()
            .map(|s| {
                let label = match &s.test {
                    Test::Name(n) => symbols.lookup_element(n),
                    _ => None,
                };
                (s, label)
            })
            .collect()
    }

    /// Evaluates a pre-parsed query.
    pub fn query_parsed(&self, doc: DocId, q: &PathQuery) -> NatixResult<Vec<NodeId>> {
        let state = self.state(doc)?;
        // Record-version snapshot: the whole walk — and the result
        // binding — observes one epoch even while writers edit the
        // document (see the lock hierarchy in [`crate::repository`]).
        let _pin = self.tree.begin_read();
        let root = self.snapshot_root(&state)?;
        let current = self.eval_lazy_ptrs(NodePtr::new(root, 0), q)?;
        // Map to logical ids, validated against the snapshot (see
        // `Repository::bind_snapshot`).
        self.bind_snapshot(&state, current)
    }

    /// The lazy reference evaluator at physical-pointer level (no id
    /// binding): the differential oracle, and the engine behind the
    /// snapshot-consistent content queries. The caller owns the snapshot
    /// pin.
    pub(crate) fn eval_lazy_ptrs(&self, root: NodePtr, q: &PathQuery) -> NatixResult<Vec<NodePtr>> {
        let steps = self.resolve_steps(q);
        // The first step matches the root element itself (absolute paths
        // address the document element).
        let mut current: Vec<NodePtr> = Vec::new();
        let (first, first_label) = steps[0];
        if first.descendant {
            self.collect_descendants(root, first, first_label, &mut current)?;
        } else if self.step_matches(root, first, first_label)? && first.position.unwrap_or(1) == 1 {
            current.push(root);
        }
        for &(step, label) in &steps[1..] {
            let mut next = Vec::new();
            for &ctx in &current {
                if step.descendant {
                    self.collect_descendants(ctx, step, label, &mut next)?;
                } else {
                    self.collect_children(ctx, step, label, &mut next)?;
                }
            }
            current = next;
        }
        Ok(current)
    }

    /// Evaluates `q` and resolves every match to `(label name, subtree
    /// text content)` **within one record-version snapshot** — the
    /// self-contained form for readers racing writers of the same
    /// document: the match set and the extracted content always belong to
    /// the same epoch, and the logical-id map is never touched. Matches
    /// come back in document order.
    pub fn query_content(&self, doc: DocId, q: &PathQuery) -> NatixResult<Vec<(String, String)>> {
        let state = self.state(doc)?;
        let _pin = self.tree.begin_read();
        let root = self.snapshot_root(&state)?;
        let ptrs = self.eval_lazy_ptrs(NodePtr::new(root, 0), q)?;
        self.resolve_content(&ptrs)
    }

    /// Maps matched pointers to `(label name, subtree text)` under the
    /// caller's snapshot pin.
    pub(crate) fn resolve_content(&self, ptrs: &[NodePtr]) -> NatixResult<Vec<(String, String)>> {
        // Symbol-table snapshot, not guard: see `get_xml`.
        let symbols = self.symbols.read().clone();
        let mut out = Vec::with_capacity(ptrs.len());
        for &p in ptrs {
            let info = self.tree.node_info(p)?;
            out.push((
                symbols.name(info.label).to_string(),
                natix_tree::subtree_text(&self.tree, p)?,
            ));
        }
        Ok(out)
    }

    pub(crate) fn step_matches(
        &self,
        ptr: NodePtr,
        step: &Step,
        name_label: Option<natix_xml::LabelId>,
    ) -> NatixResult<bool> {
        let info = self.tree.node_info(ptr)?;
        Ok(match &step.test {
            Test::Any => info.value.is_none(),
            Test::Text => info.label == LABEL_TEXT,
            Test::Name(_) => info.value.is_none() && name_label.is_some_and(|l| info.label == l),
        })
    }

    /// Children of `ctx` matching the step; the positional predicate
    /// counts among the matching children only (XPath semantics). The walk
    /// is lazy: once `x[n]` is satisfied, no further sibling records are
    /// read — essential for the paper's Query 2/3 access patterns.
    pub(crate) fn collect_children(
        &self,
        ctx: NodePtr,
        step: &Step,
        name_label: Option<natix_xml::LabelId>,
        out: &mut Vec<NodePtr>,
    ) -> NatixResult<()> {
        let mut seen = 0usize;
        self.tree.for_each_logical_child(ctx, &mut |child| {
            if self
                .step_matches(child, step, name_label)
                .map_err(to_tree_err)?
            {
                seen += 1;
                match step.position {
                    None => out.push(child),
                    Some(p) if p == seen => {
                        out.push(child);
                        return Ok(false);
                    }
                    Some(_) => {}
                }
            }
            Ok(true)
        })?;
        Ok(())
    }

    /// Descendant-or-self collection in document order.
    fn collect_descendants(
        &self,
        ctx: NodePtr,
        step: &Step,
        name_label: Option<natix_xml::LabelId>,
        out: &mut Vec<NodePtr>,
    ) -> NatixResult<()> {
        // `//x[n]` takes the n-th match in document order under this
        // context (a pragmatic, commonly used interpretation).
        let mut seen = 0usize;
        let mut stack = vec![ctx];
        let mut first = true;
        while let Some(p) = stack.pop() {
            let matches = self.step_matches(p, step, name_label)?;
            if matches && !(first && p == ctx && step.test == Test::Text) {
                seen += 1;
                match step.position {
                    None => out.push(p),
                    Some(n) if n == seen => {
                        out.push(p);
                        return Ok(());
                    }
                    Some(_) => {}
                }
            }
            first = false;
            let kids = self.tree.logical_children(p)?;
            for k in kids.into_iter().rev() {
                stack.push(k);
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Cost-based planner
    // -----------------------------------------------------------------

    /// Evaluates a path query through the cost-based planner, returning
    /// the matches plus how the plan was chosen. Semantically identical
    /// to [`Repository::query`] for every plan shape — the plan-shape
    /// differential suite enforces this bit-for-bit.
    pub fn query_planned(
        &self,
        name: &str,
        path: &str,
        opts: &PlannerOptions,
    ) -> NatixResult<(Vec<NodeId>, PlanExplain)> {
        let q = PathQuery::parse(path)?;
        let doc = self.doc_id(name)?;
        self.query_planned_parsed(doc, &q, opts)
    }

    /// [`query_planned`](Self::query_planned) over a pre-parsed query.
    pub fn query_planned_parsed(
        &self,
        doc: DocId,
        q: &PathQuery,
        opts: &PlannerOptions,
    ) -> NatixResult<(Vec<NodeId>, PlanExplain)> {
        match self.eval_planned(doc, q, opts, PlanMode::Ids)? {
            (PlannedOutput::Ids(ids), explain) => Ok((ids, explain)),
            _ => unreachable!("Ids mode returns ids"),
        }
    }

    /// Structural count of a path query's matches (duplicates included,
    /// exactly as `query(..).len()` counts them). Served straight from
    /// the path summary whenever the query is path-decidable — zero
    /// record access — and by the cheapest applicable evaluator
    /// otherwise.
    pub fn count_planned(
        &self,
        name: &str,
        path: &str,
        opts: &PlannerOptions,
    ) -> NatixResult<(u64, PlanExplain)> {
        let q = PathQuery::parse(path)?;
        let doc = self.doc_id(name)?;
        match self.eval_planned(doc, &q, opts, PlanMode::Count)? {
            (PlannedOutput::Count(n), explain) => Ok((n, explain)),
            _ => unreachable!("Count mode returns a count"),
        }
    }

    /// [`count_planned`](Self::count_planned) with default options.
    pub fn query_count(&self, name: &str, path: &str) -> NatixResult<u64> {
        Ok(self
            .count_planned(name, path, &PlannerOptions::default())?
            .0)
    }

    /// Whether the query matches anything (a pure structural existence
    /// probe — summary-answered when possible).
    pub fn query_exists(&self, name: &str, path: &str) -> NatixResult<bool> {
        Ok(self.query_count(name, path)? > 0)
    }

    /// The plan the planner would choose, without executing it.
    pub fn explain(
        &self,
        name: &str,
        path: &str,
        opts: &PlannerOptions,
    ) -> NatixResult<PlanExplain> {
        let q = PathQuery::parse(path)?;
        let doc = self.doc_id(name)?;
        Ok(self.eval_planned(doc, &q, opts, PlanMode::Explain)?.1)
    }

    /// Plans and (per `mode`) executes one query. The decision order is
    /// load-bearing:
    ///
    /// 1. Unknown name test, no forced shape → empty before touching the
    ///    summary, the snapshot, or a single page.
    /// 2. Build the summary if missing (outside the pin; skipped under an
    ///    ambient snapshot), then pin and read the summary *at the pinned
    ///    epoch* — a stale or missing summary abstains, never lies.
    /// 3. Choose: positional predicates go to the walk/scan shapes;
    ///    summary-decidable counts and provably-empty results are
    ///    summary-only; selective node queries descend through the
    ///    summary's ancestor closure or an attached current index;
    ///    everything else is the parallel record scan.
    ///
    /// Forcing a shape runs exactly that machinery, or fails with
    /// [`NatixError::PlanUnsupported`] when its preconditions do not
    /// hold.
    fn eval_planned(
        &self,
        doc: DocId,
        q: &PathQuery,
        opts: &PlannerOptions,
        mode: PlanMode,
    ) -> NatixResult<(PlannedOutput, PlanExplain)> {
        let state = self.state(doc)?;
        let resolved = self.resolve_steps(q);
        let unknown = resolved
            .iter()
            .any(|(s, l)| matches!(s.test, Test::Name(_)) && l.is_none());
        let positional = q.steps.iter().any(|s| s.position.is_some());
        let lazy_positional = q.steps.iter().any(|s| s.descendant && s.position.is_some());

        // Calibrated page-miss cost: the caller's override, else the
        // buffer pool's live miss-latency EWMA (random-access reads
        // measured at the demand-miss path), else the static fallback.
        let page_cost_ns = opts.page_cost_ns.unwrap_or_else(|| {
            let measured = self.io_stats().miss_latency_ns();
            if measured == 0 {
                DEFAULT_PAGE_COST_NS
            } else {
                measured
            }
        });

        // 1. Unknown-label short circuit: a name the alphabet has never
        // seen occurs in no stored document. Answered with zero page
        // reads (pinned by the buffer-miss counter test) unless a
        // record-touching shape is forced.
        if unknown && matches!(opts.force, None | Some(PlanShape::SummaryOnly)) {
            let explain = PlanExplain {
                shape: PlanShape::SummaryOnly,
                forced: opts.force.is_some(),
                reason: "name test not in the alphabet: provably empty".into(),
                summary_current: self.summaries.has_current(doc),
                estimated_matches: Some(0),
                estimated_visited: Some(0),
                total_nodes: None,
                page_cost_ns,
            };
            return Ok((Self::empty_output(mode), explain));
        }

        // 2. Summary + snapshot.
        self.ensure_summary(doc, &state)?;
        let _pin = self.tree.begin_read();
        let epoch = self.tree.ambient_read_epoch();
        let root = NodePtr::new(self.snapshot_root(&state)?, 0);
        let summary = self.summaries.summary_at(doc, epoch);
        let summary_current = summary.is_some();
        let pmatch = summary.as_ref().and_then(|s| s.match_query(&resolved));

        // An attached index is usable when the seed it provides is the
        // one `eval_parallel_ptrs` would actually take: leading
        // descendant step over a resolvable name (or `text()`), index
        // current for this document. The slot guard is dropped
        // immediately; only the (unranked, caller-owned) index lock is
        // held across execution, and released before id binding.
        let index_arc = self.attached_index.lock().clone();
        let index_usable = index_arc.as_ref().is_some_and(|idx| {
            let (first, first_label) = resolved[0];
            first.descendant
                && match first.test {
                    Test::Name(_) => first_label.is_some(),
                    Test::Text => true,
                    Test::Any => false,
                }
                && idx.lock().is_current(doc)
        });

        let (shape, reason) = match opts.force {
            Some(forced) => {
                self.check_forced(forced, positional, index_usable, &pmatch, mode)?;
                (forced, "forced by caller".to_string())
            }
            None => Self::choose_plan(
                positional,
                lazy_positional,
                index_usable,
                &pmatch,
                summary.as_deref(),
                mode,
                page_cost_ns,
            ),
        };
        let explain = PlanExplain {
            shape,
            forced: opts.force.is_some(),
            reason,
            summary_current,
            estimated_matches: pmatch.as_ref().map(|pm| pm.matched),
            estimated_visited: pmatch.as_ref().map(|pm| pm.visited),
            total_nodes: summary.as_ref().map(|s| s.total_nodes()),
            page_cost_ns,
        };
        if mode == PlanMode::Explain {
            return Ok((PlannedOutput::ExplainOnly, explain));
        }

        // 3. Execute under the pin; drop the index guard before binding
        // ids (binding takes the edit latch, which writers hold while
        // notifying the attached index — holding the index lock there
        // would deadlock).
        let output = match shape {
            PlanShape::SummaryOnly => {
                let pm = pmatch.as_ref().expect("checked by choose/force");
                match mode {
                    PlanMode::Count => PlannedOutput::Count(pm.matched),
                    _ => PlannedOutput::Ids(Vec::new()),
                }
            }
            PlanShape::SummarySeeded => {
                let pm = pmatch.as_ref().expect("checked by choose/force");
                let summary = summary.as_ref().expect("match implies summary");
                let ptrs = self.eval_summary_seeded(root, summary, pm)?;
                self.finish_ptrs(&state, ptrs, mode)?
            }
            PlanShape::IndexSeeded => {
                let idx = index_arc.as_ref().expect("checked by choose/force");
                let ptrs = {
                    let guard = idx.lock();
                    self.eval_parallel_ptrs(doc, root, q, &opts.exec, Some(&guard))?
                };
                self.finish_ptrs(&state, ptrs, mode)?
            }
            PlanShape::ParallelScan => {
                let ptrs = self.eval_parallel_ptrs(doc, root, q, &opts.exec, None)?;
                self.finish_ptrs(&state, ptrs, mode)?
            }
            PlanShape::LazyWalk => {
                let ptrs = self.eval_lazy_ptrs(root, q)?;
                self.finish_ptrs(&state, ptrs, mode)?
            }
        };
        Ok((output, explain))
    }

    fn empty_output(mode: PlanMode) -> PlannedOutput {
        match mode {
            PlanMode::Ids => PlannedOutput::Ids(Vec::new()),
            PlanMode::Count => PlannedOutput::Count(0),
            PlanMode::Explain => PlannedOutput::ExplainOnly,
        }
    }

    /// Binds or counts a shape's physical matches (counting never touches
    /// the id map).
    fn finish_ptrs(
        &self,
        state: &crate::document::DocState,
        ptrs: Vec<NodePtr>,
        mode: PlanMode,
    ) -> NatixResult<PlannedOutput> {
        Ok(match mode {
            PlanMode::Count => PlannedOutput::Count(ptrs.len() as u64),
            _ => PlannedOutput::Ids(self.bind_snapshot(state, ptrs)?),
        })
    }

    /// The cost model. `pmatch` is `Some` exactly when the summary is
    /// current for this snapshot *and* the query is path-decidable (no
    /// positional predicates).
    ///
    /// The seeded-vs-scan decision is *calibrated*: `page_cost_ns` is the
    /// measured buffer-pool miss latency (or an override/fallback), and
    /// each shape's per-node cost adds that miss cost amortised over the
    /// nodes one read serves — few for the random proxy hops of a seeded
    /// descent, many for a prefetched scan. On a fast (cached, in-memory)
    /// pool the two converge and the seeded descent wins whenever it
    /// visits fewer nodes; on a slow pool (cold spinning disk) random
    /// access is penalised and the descent must be far more selective.
    #[allow(clippy::too_many_arguments)]
    fn choose_plan(
        positional: bool,
        lazy_positional: bool,
        index_usable: bool,
        pmatch: &Option<PathMatch>,
        summary: Option<&PathSummary>,
        mode: PlanMode,
        page_cost_ns: u64,
    ) -> (PlanShape, String) {
        let Some(pm) = pmatch else {
            return if positional && lazy_positional && !index_usable {
                (
                    PlanShape::LazyWalk,
                    "positional descendant step: lazy early-exit walk".into(),
                )
            } else if index_usable {
                (
                    PlanShape::IndexSeeded,
                    "summary cannot decide; attached index is current".into(),
                )
            } else if positional {
                (
                    PlanShape::ParallelScan,
                    "positional predicate is not path-decidable".into(),
                )
            } else {
                (
                    PlanShape::ParallelScan,
                    "no current summary for this snapshot: falling back to scan".into(),
                )
            };
        };
        if pm.is_empty() {
            return (
                PlanShape::SummaryOnly,
                "summary proves the result is empty".into(),
            );
        }
        if mode == PlanMode::Count {
            return (
                PlanShape::SummaryOnly,
                "exact cardinality from summary counts".into(),
            );
        }
        let total = summary.map(|s| s.total_nodes()).unwrap_or(0);
        let seeded_per_node = NODE_COST_NS + page_cost_ns / SEEDED_NODES_PER_READ;
        let scan_per_node = NODE_COST_NS + page_cost_ns / SCAN_NODES_PER_READ;
        let seeded_cost = pm.visited.saturating_mul(seeded_per_node);
        let scan_cost = total.saturating_mul(scan_per_node);
        if pm.enumerable && seeded_cost <= scan_cost {
            return (
                PlanShape::SummarySeeded,
                format!(
                    "selective: pruned descent visits {} of {} nodes \
                     ({seeded_cost} vs {scan_cost} ns at {page_cost_ns} ns/miss)",
                    pm.visited, total
                ),
            );
        }
        if index_usable {
            return (
                PlanShape::IndexSeeded,
                "unselective for pruning; attached index seeds the leading step".into(),
            );
        }
        (
            PlanShape::ParallelScan,
            "unselective: record-granular parallel scan".into(),
        )
    }

    /// Validates a forced shape's preconditions, so forcing never yields
    /// a wrong (as opposed to refused) answer.
    fn check_forced(
        &self,
        forced: PlanShape,
        positional: bool,
        index_usable: bool,
        pmatch: &Option<PathMatch>,
        mode: PlanMode,
    ) -> NatixResult<()> {
        let unsupported = |m: &str| Err(NatixError::PlanUnsupported(m.to_string()));
        match forced {
            PlanShape::SummaryOnly => match pmatch {
                None if positional => {
                    unsupported("summary-only cannot evaluate positional predicates")
                }
                None => unsupported("no current path summary for this snapshot"),
                Some(pm) if mode != PlanMode::Count && !pm.is_empty() => {
                    unsupported("summary-only answers counts and emptiness, not node lists")
                }
                Some(_) => Ok(()),
            },
            PlanShape::SummarySeeded => match pmatch {
                None if positional => {
                    unsupported("summary-seeded descent cannot evaluate positional predicates")
                }
                None => unsupported("no current path summary for this snapshot"),
                Some(pm) if !pm.enumerable => unsupported(
                    "nested context sets: per-context emission differs from document order",
                ),
                Some(_) => Ok(()),
            },
            PlanShape::IndexSeeded if !index_usable => {
                unsupported("no attached current index can seed this query's leading step")
            }
            _ => Ok(()),
        }
    }

    /// The summary-seeded evaluator: a document-order descent that only
    /// enters children whose label path lies in the ancestor closure of
    /// the final match set, emitting nodes whose path is a final match.
    /// Exactly equal to the lazy walk whenever the match is `enumerable`
    /// (enforced by the planner and the differential suite).
    ///
    /// Children come from [`natix_tree::TreeStore::logical_children_labeled`],
    /// so a pruned child behind a digested proxy costs *no page read*:
    /// the proxy's label digest feeds `step_child` directly, and the
    /// child record is only ever loaded if the descent actually enters
    /// it. On a high-fanout root this is the difference between one read
    /// per child and one read per *entered* child.
    fn eval_summary_seeded(
        &self,
        root: NodePtr,
        summary: &Arc<PathSummary>,
        pm: &PathMatch,
    ) -> NatixResult<Vec<NodePtr>> {
        let mut out = Vec::new();
        if !pm.closure.first().copied().unwrap_or(false) {
            return Ok(out);
        }
        let mut stack: Vec<(NodePtr, u32)> = vec![(root, 0)];
        while let Some((p, pid)) = stack.pop() {
            if pm.mult[pid as usize] > 0 {
                out.push(p);
            }
            let kids = self.tree.logical_children_labeled(p)?;
            let mut frame = Vec::new();
            for (k, label) in kids {
                if let Some(cid) = summary.step_child(pid, label) {
                    if pm.closure[cid as usize] {
                        frame.push((k, cid));
                    }
                }
            }
            for entry in frame.into_iter().rev() {
                stack.push(entry);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;

    fn play_repo() -> (Repository, DocId) {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 1024,
            ..RepositoryOptions::default()
        })
        .unwrap();
        let xml = "<PLAY><TITLE>T</TITLE>\
            <ACT><TITLE>ACT I</TITLE>\
              <SCENE><TITLE>S1</TITLE>\
                <SPEECH><SPEAKER>ALPHA</SPEAKER><LINE>a1</LINE></SPEECH>\
                <SPEECH><SPEAKER>BETA</SPEAKER><LINE>b1</LINE></SPEECH>\
              </SCENE>\
            </ACT>\
            <ACT><TITLE>ACT II</TITLE>\
              <SCENE><TITLE>S1</TITLE>\
                <SPEECH><SPEAKER>GAMMA</SPEAKER><LINE>g1</LINE></SPEECH>\
              </SCENE>\
              <SCENE><TITLE>S2</TITLE>\
                <SPEECH><SPEAKER>DELTA</SPEAKER><LINE>d1</LINE><LINE>d2</LINE></SPEECH>\
              </SCENE>\
            </ACT>\
            </PLAY>";
        let id = repo.put_xml("play", xml).unwrap();
        (repo, id)
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PathQuery::parse("PLAY/ACT").is_err());
        assert!(PathQuery::parse("/PLAY//").is_err());
        assert!(PathQuery::parse("/PLAY/ACT[0]").is_err());
        assert!(PathQuery::parse("/PLAY/ACT[x]").is_err());
        assert!(PathQuery::parse("/PLAY/ACT[1").is_err());
        assert!(PathQuery::parse("/PL AY").is_err());
        assert_eq!(
            PathQuery::parse("/a/b//c[2]/text()").unwrap().step_count(),
            4
        );
    }

    #[test]
    fn child_steps_and_positions() {
        let (repo, id) = play_repo();
        let acts = repo.query("play", "/PLAY/ACT").unwrap();
        assert_eq!(acts.len(), 2);
        let act2_scenes = repo.query("play", "/PLAY/ACT[2]/SCENE").unwrap();
        assert_eq!(act2_scenes.len(), 2);
        let s2 = repo.query("play", "/PLAY/ACT[2]/SCENE[2]").unwrap();
        assert_eq!(s2.len(), 1);
        let first_child = repo.children(id, s2[0]).unwrap()[0];
        let title = repo.node_summary(id, first_child).unwrap();
        assert_eq!(title.label, "TITLE");
    }

    #[test]
    fn descendant_steps() {
        let (repo, id) = play_repo();
        let speakers = repo.query("play", "//SPEAKER").unwrap();
        assert_eq!(speakers.len(), 4);
        let names: Vec<String> = speakers
            .iter()
            .map(|&s| repo.text_content(id, s).unwrap())
            .collect();
        assert_eq!(names, vec!["ALPHA", "BETA", "GAMMA", "DELTA"]);
        let act2_speakers = repo.query("play", "/PLAY/ACT[2]//SPEAKER").unwrap();
        assert_eq!(act2_speakers.len(), 2);
    }

    #[test]
    fn paper_query_shapes() {
        let (repo, id) = play_repo();
        // Query 1 shape (act/scene adjusted to this small fixture).
        let q1 = repo
            .query("play", "/PLAY/ACT[2]/SCENE[2]//SPEAKER")
            .unwrap();
        assert_eq!(q1.len(), 1);
        assert_eq!(repo.text_content(id, q1[0]).unwrap(), "DELTA");
        // Query 2 shape: first speech of every scene.
        let q2 = repo.query("play", "/PLAY/ACT/SCENE/SPEECH[1]").unwrap();
        assert_eq!(q2.len(), 3);
        // Query 3 shape: the opening speech of the play.
        let q3 = repo
            .query("play", "/PLAY/ACT[1]/SCENE[1]/SPEECH[1]")
            .unwrap();
        assert_eq!(q3.len(), 1);
        assert_eq!(
            repo.serialize_node(id, q3[0]).unwrap(),
            "<SPEECH><SPEAKER>ALPHA</SPEAKER><LINE>a1</LINE></SPEECH>"
        );
    }

    #[test]
    fn wildcard_and_text_steps() {
        let (repo, id) = play_repo();
        let all_level2 = repo.query("play", "/PLAY/*").unwrap();
        assert_eq!(all_level2.len(), 3, "TITLE + 2 ACTs");
        let texts = repo
            .query("play", "/PLAY/ACT[1]/SCENE[1]/SPEECH[2]/LINE/text()")
            .unwrap();
        assert_eq!(texts.len(), 1);
        assert_eq!(
            repo.node_summary(id, texts[0]).unwrap().text.as_deref(),
            Some("b1")
        );
    }

    #[test]
    fn missing_positions_yield_empty() {
        let (repo, _) = play_repo();
        assert!(repo.query("play", "/PLAY/ACT[3]").unwrap().is_empty());
        assert!(repo.query("play", "/NOPE").unwrap().is_empty());
    }

    #[test]
    fn parse_edge_cases() {
        // Empty and relative paths are rejected.
        assert!(matches!(PathQuery::parse(""), Err(NatixError::BadQuery(_))));
        assert!(matches!(
            PathQuery::parse("/"),
            Err(NatixError::BadQuery(_))
        ));
        assert!(matches!(
            PathQuery::parse("a/b"),
            Err(NatixError::BadQuery(_))
        ));
        // Runs of slashes beyond `//` leave an empty step behind.
        assert!(PathQuery::parse("///a").is_err());
        assert!(PathQuery::parse("/a///b").is_err());
        assert!(PathQuery::parse("/a////b").is_err());
        // Trailing slashes (single or double) are empty final steps.
        assert!(PathQuery::parse("/a/").is_err());
        assert!(PathQuery::parse("/a//").is_err());
        assert!(PathQuery::parse("//").is_err());
        // A lone `//NAME` is fine, as is `//` mid-path.
        assert_eq!(PathQuery::parse("//a").unwrap().step_count(), 1);
        assert_eq!(PathQuery::parse("/a//b/c").unwrap().step_count(), 3);
        // Predicate garbage.
        assert!(PathQuery::parse("/a[]").is_err());
        assert!(PathQuery::parse("/a[-1]").is_err());
        assert!(PathQuery::parse("/a[1]]").is_err());
    }

    #[test]
    fn unknown_tag_resolves_to_empty_without_interning() {
        // The read path must *look up* name tests, never intern them: a
        // query for a tag no document has ever used returns an empty
        // result, leaves the alphabet untouched (no write-lock traffic on
        // the query hot path), and does not error.
        let (repo, _) = play_repo();
        let before = repo.symbols().len();
        assert!(repo.query("play", "//NEVER_SEEN").unwrap().is_empty());
        assert!(repo
            .query("play", "/PLAY/UNKNOWN[2]/ALSO_UNKNOWN")
            .unwrap()
            .is_empty());
        let doc = repo.doc_id("play").unwrap();
        let q = PathQuery::parse("//NEVER_SEEN/text()").unwrap();
        assert!(repo
            .query_parallel(
                doc,
                &q,
                &crate::parallel_query::ParallelQueryOptions::default()
            )
            .unwrap()
            .is_empty());
        assert_eq!(
            repo.symbols().len(),
            before,
            "querying unknown names must not grow the symbol table"
        );
    }
}
