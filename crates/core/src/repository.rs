//! The repository: NATIX's top-level API.
//!
//! A [`Repository`] owns the storage stack of the paper's figure 1: disk
//! backend (optionally behind the measurement disk model), buffer manager,
//! record manager, one tree store for documents and one for the system
//! catalog, plus the schema manager. Documents are named; node-granular
//! operations live in [`crate::document`].

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use natix_storage::buffer::EvictionPolicy;
use natix_storage::{
    BufferManager, DiskBackend, DiskProfile, FileStorage, IoStats, MemStorage, Rid, SimDisk,
    StorageManager,
};
use natix_tree::{NodePtr, SplitMatrix, TreeConfig, TreeStore};
use natix_xml::{ParserOptions, SymbolTable};

use crate::document::{DocId, DocState, NodeId};
use crate::error::{NatixError, NatixResult};
use crate::schema::SchemaManager;

/// Construction options.
#[derive(Debug, Clone)]
pub struct RepositoryOptions {
    /// Page size in bytes (the paper sweeps 2K–32K; default 8K).
    pub page_size: usize,
    /// Buffer pool size in bytes (the paper uses 2 MB).
    pub buffer_bytes: usize,
    /// Buffer replacement policy.
    pub eviction: EvictionPolicy,
    /// Tree-storage-manager configuration (split target/tolerance, merge).
    pub tree_config: TreeConfig,
    /// Initial split matrix (default: the native 1:n configuration).
    pub matrix: SplitMatrix,
    /// When set, all I/O is charged to this mechanical-disk model and the
    /// simulated clock in [`IoStats`] (used by the benchmark harness).
    pub disk_profile: Option<DiskProfile>,
    /// Keep whitespace-only text nodes when parsing (default: drop).
    pub keep_whitespace_text: bool,
}

impl Default for RepositoryOptions {
    fn default() -> Self {
        RepositoryOptions {
            page_size: 8192,
            buffer_bytes: 2 * 1024 * 1024,
            eviction: EvictionPolicy::Lru,
            tree_config: TreeConfig::paper(),
            matrix: SplitMatrix::all_other(),
            disk_profile: None,
            keep_whitespace_text: false,
        }
    }
}

impl RepositoryOptions {
    /// The paper's measurement configuration for a given page size:
    /// 2 MB buffer, split target ½, tolerance ⅒, simulated DCAS disk.
    pub fn paper(page_size: usize) -> RepositoryOptions {
        RepositoryOptions {
            page_size,
            disk_profile: Some(DiskProfile::dcas_34330w()),
            ..RepositoryOptions::default()
        }
    }
}

/// Head-position control for the simulated disk (type-erased).
trait SimControl: Send + Sync {
    fn reset_head(&self);
}

impl<B: DiskBackend> SimControl for SimDisk<B> {
    fn reset_head(&self) {
        SimDisk::reset_head(self)
    }
}

/// A NATIX repository.
pub struct Repository {
    pub(crate) sm: Arc<StorageManager>,
    pub(crate) tree: TreeStore,
    pub(crate) catalog_tree: TreeStore,
    pub(crate) symbols: SymbolTable,
    pub(crate) docs: Vec<Option<DocState>>,
    pub(crate) by_name: HashMap<String, DocId>,
    pub(crate) schema: SchemaManager,
    pub(crate) options: RepositoryOptions,
    index_seg: natix_storage::SegmentId,
    flat_seg: natix_storage::SegmentId,
    stats: Arc<IoStats>,
    sim: Option<Arc<dyn SimControl>>,
}

impl Repository {
    fn build(
        backend: Arc<dyn DiskBackend>,
        sim: Option<Arc<dyn SimControl>>,
        options: RepositoryOptions,
        stats: Arc<IoStats>,
        fresh: bool,
    ) -> NatixResult<Repository> {
        let bm = Arc::new(BufferManager::with_buffer_bytes(
            backend,
            options.buffer_bytes,
            options.eviction,
            Arc::clone(&stats),
        ));
        let sm = if fresh {
            Arc::new(StorageManager::create(bm)?)
        } else {
            Arc::new(StorageManager::open(bm)?)
        };
        let (docs_seg, cat_seg, index_seg, flat_seg) = if fresh {
            (
                sm.create_segment("documents")?,
                sm.create_segment("catalog")?,
                sm.create_segment("index")?,
                sm.create_segment("flat")?,
            )
        } else {
            let find = |name: &str| {
                sm.segment_by_name(name)
                    .ok_or_else(|| NatixError::Catalog(format!("missing {name} segment")))
            };
            (
                find("documents")?,
                find("catalog")?,
                find("index")?,
                find("flat")?,
            )
        };
        let tree = TreeStore::new(
            Arc::clone(&sm),
            docs_seg,
            options.tree_config,
            options.matrix.clone(),
        );
        let catalog_tree = TreeStore::new(
            Arc::clone(&sm),
            cat_seg,
            options.tree_config,
            SplitMatrix::all_other(),
        );
        let mut repo = Repository {
            sm,
            tree,
            catalog_tree,
            symbols: SymbolTable::new(),
            docs: Vec::new(),
            by_name: HashMap::new(),
            schema: SchemaManager::new(),
            options,
            index_seg,
            flat_seg,
            stats,
            sim,
        };
        if !fresh {
            crate::catalog::load_catalog(&mut repo)?;
        }
        Ok(repo)
    }

    /// Creates a fresh in-memory repository.
    pub fn create_in_memory(options: RepositoryOptions) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let mem = MemStorage::new(options.page_size)?;
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(mem, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, Some(sim), options, stats, true)
            }
            None => Repository::build(Arc::new(mem), None, options, stats, true),
        }
    }

    /// Creates a fresh file-backed repository (truncates `path`).
    pub fn create_file<P: AsRef<Path>>(
        path: P,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let file = FileStorage::create(path, options.page_size)?;
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(file, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, Some(sim), options, stats, true)
            }
            None => Repository::build(Arc::new(file), None, options, stats, true),
        }
    }

    /// Opens an existing file-backed repository, restoring the catalog.
    pub fn open_file<P: AsRef<Path>>(
        path: P,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let file = FileStorage::open(path, options.page_size)?;
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(file, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, Some(sim), options, stats, false)
            }
            None => Repository::build(Arc::new(file), None, options, stats, false),
        }
    }

    /// The repository's construction options.
    pub fn options(&self) -> &RepositoryOptions {
        &self.options
    }

    /// The shared label alphabet.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the alphabet (interning new labels).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// The schema manager.
    pub fn schema(&self) -> &SchemaManager {
        &self.schema
    }

    /// Mutable access to the schema manager.
    pub fn schema_mut(&mut self) -> &mut SchemaManager {
        &mut self.schema
    }

    /// The document tree store (exposed for the benchmark harness and the
    /// validator; ordinary clients use the document API).
    pub fn tree_store(&self) -> &TreeStore {
        &self.tree
    }

    /// The underlying storage manager.
    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.sm
    }

    /// The segment reserved for index structures.
    pub fn index_segment(&self) -> natix_storage::SegmentId {
        self.index_seg
    }

    /// The segment reserved for the flat-stream baseline.
    pub fn flat_segment(&self) -> natix_storage::SegmentId {
        self.flat_seg
    }

    /// Shared I/O statistics (buffer counters + simulated disk clock).
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Flushes and empties the buffer pool and repositions the simulated
    /// disk head — the paper's "the buffer was cleared at the start of
    /// each operation" (§4.2).
    pub fn clear_buffer(&self) -> NatixResult<()> {
        self.sm.buffer().clear()?;
        if let Some(sim) = &self.sim {
            sim.reset_head();
        }
        Ok(())
    }

    /// Parser options implied by the repository options.
    pub(crate) fn parser_options(&self) -> ParserOptions {
        ParserOptions {
            keep_whitespace_text: self.options.keep_whitespace_text,
            ..Default::default()
        }
    }

    /// Resolves a document name.
    pub fn doc_id(&self, name: &str) -> NatixResult<DocId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| NatixError::NoSuchDocument(name.to_string()))
    }

    /// Names of all stored documents, in insertion order.
    pub fn document_names(&self) -> Vec<String> {
        let mut v: Vec<(DocId, String)> = self
            .by_name
            .iter()
            .map(|(n, &id)| (id, n.clone()))
            .collect();
        v.sort();
        v.into_iter().map(|(_, n)| n).collect()
    }

    pub(crate) fn state(&self, doc: DocId) -> NatixResult<&DocState> {
        self.docs
            .get(doc as usize)
            .and_then(|d| d.as_ref())
            .ok_or_else(|| NatixError::NoSuchDocument(format!("#{doc}")))
    }

    pub(crate) fn state_mut(&mut self, doc: DocId) -> NatixResult<&mut DocState> {
        self.docs
            .get_mut(doc as usize)
            .and_then(|d| d.as_mut())
            .ok_or_else(|| NatixError::NoSuchDocument(format!("#{doc}")))
    }

    /// Root record RID of a document (harness / validation access).
    pub fn root_rid(&self, doc: DocId) -> NatixResult<Rid> {
        Ok(self.state(doc)?.root_rid)
    }

    /// The logical root node id of a document.
    pub fn root(&self, doc: DocId) -> NatixResult<NodeId> {
        Ok(self.state(doc)?.root_id)
    }

    /// Resolves a logical node id to its current physical pointer.
    pub(crate) fn resolve(&self, doc: DocId, node: NodeId) -> NatixResult<NodePtr> {
        self.state(doc)?
            .map
            .get(&node)
            .copied()
            .ok_or(NatixError::NoSuchNode(node))
    }

    /// Physical statistics (records, scaffolding, depth, bytes) of one
    /// document — also validates all invariants.
    pub fn physical_stats(&self, name: &str) -> NatixResult<natix_tree::PhysicalStats> {
        let id = self.doc_id(name)?;
        Ok(natix_tree::check_tree(
            &self.tree,
            self.state(id)?.root_rid,
        )?)
    }

    /// Total bytes on disk currently allocated to the repository
    /// (allocated pages × page size) — the measure of Figure 14.
    pub fn disk_bytes(&self) -> u64 {
        self.sm.allocated_pages() * self.options.page_size as u64
    }

    /// Persists the catalog (symbol table, document directory, split
    /// matrix, DTDs) and flushes everything to the backend.
    pub fn checkpoint(&mut self) -> NatixResult<()> {
        crate::catalog::save_catalog(self)?;
        self.sm.checkpoint()?;
        Ok(())
    }

    /// Changes a split-matrix rule by element names, interning them if
    /// necessary. Affects future insertions.
    pub fn set_matrix_rule(
        &mut self,
        parent_tag: &str,
        child_tag: &str,
        value: natix_tree::SplitBehaviour,
    ) {
        let p = self.symbols.intern_element(parent_tag);
        let c = self.symbols.intern_element(child_tag);
        self.tree.set_matrix_entry(p, c, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_reject_duplicate_names() {
        let mut repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
        repo.put_xml("a", "<x/>").unwrap();
        assert!(matches!(
            repo.put_xml("a", "<y/>"),
            Err(NatixError::DocumentExists(_))
        ));
        assert_eq!(repo.document_names(), vec!["a"]);
    }

    #[test]
    fn paper_options() {
        let o = RepositoryOptions::paper(4096);
        assert_eq!(o.page_size, 4096);
        assert_eq!(o.buffer_bytes, 2 * 1024 * 1024);
        assert!(o.disk_profile.is_some());
    }

    #[test]
    fn clear_buffer_counts_future_reads_as_misses() {
        let mut repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
        repo.put_xml("d", "<a><b>hello</b></a>").unwrap();
        repo.clear_buffer().unwrap();
        let before = repo.io_stats().snapshot();
        let _ = repo.get_xml("d").unwrap();
        let after = repo.io_stats().snapshot();
        assert!(after.since(&before).buffer_misses > 0);
    }
}
