//! The repository: NATIX's top-level API.
//!
//! A [`Repository`] owns the storage stack of the paper's figure 1: disk
//! backend (optionally behind the measurement disk model), buffer manager,
//! record manager, one tree store for documents and one for the system
//! catalog, plus the schema manager. Documents are named; node-granular
//! operations live in [`crate::document`].
//!
//! # Concurrency model
//!
//! The repository is a multi-user server in the paper's design, and this
//! implementation is `Sync`: a `&Repository` may be shared across threads.
//!
//! Every long-lived lock in the engine is constructed against the ranked
//! shim ([`parking_lot::Mutex::with_rank`] / [`parking_lot::RwLock::with_rank`])
//! naming a class from [`parking_lot::rank`] — that module is the single
//! source of truth for the hierarchy, and the table below cites its
//! constants. Under `cargo test --features lockdep` every acquisition is
//! validated at runtime: per-thread rank monotonicity (a thread may only
//! acquire classes at or below its deepest held class), same-class
//! recursion, a cross-thread lock-order graph with cycle detection, and
//! a held-across-I/O detector (the buffer manager and WAL declare their
//! device-I/O regions; holding any non-I/O-tolerant lock inside one
//! panics). Release builds compile the whole checker away.
//!
//! Outermost first — a thread holding a class may only acquire classes
//! *below* it in this table:
//!
//! | Rank constant (in `parking_lot::rank`) | Level | Guards |
//! |---|---|---|
//! | `CHECKPOINT` | 100 (io) | [`Repository::checkpoint`] serialisation |
//! | `DOC_EDIT_LATCH` | 200 (io) | per-document edit latch (`DocState::edit_latch`) |
//! | `INDEX_ATTACH` | 300 | the attached-index slot |
//! | `INGEST_POOL` | 350 (io) | ingestion segment pool |
//! | `SYMBOL_MARK` | 400 | logged-symbol watermark |
//! | `SYMBOLS` | 500 | shared symbol table |
//! | `SPLIT_MATRIX` | 550 | split-matrix rules (`TreeStore`) |
//! | `VERSION_STORE` | 600 | version-store state, publish hooks |
//! | `REGISTRY` | 700 | document registry / directory |
//! | `SCHEMA` | 800 | schema manager |
//! | `DOC_ROOT` | 900 | per-document root slot |
//! | `PATH_SUMMARY` | 920 | per-document path-summary slots |
//! | `DOC_IDS` | 950 | per-document logical-id map |
//! | `SCAN_QUEUE` | 960 | parallel-query work queue |
//! | `RESULT_SLOT` | 970 | per-worker result slots |
//! | `ALLOCATOR` | 1000 (io) | storage-manager allocator state |
//! | `BUFFER_POOL` | 1100 (io) | buffer-pool frame table |
//! | `WAL` | 1200 (io) | WAL append buffer / sync batching |
//! | `DISK_SIM` | 1290 (io) | simulated-disk head position |
//! | `DEVICE` | 1300 (io) | raw page/log device state |
//!
//! "(io)" marks the I/O-tolerant classes: they exist to serialise device
//! I/O and are exempt from the held-across-I/O detector. Everything else
//! must be released before any page read, write-back or log sync.
//!
//! Two orderings in the table are load-bearing and easy to get backwards:
//! `SYMBOLS` precedes `SCHEMA` (directory capture and validation take the
//! symbol guard first), and `SPLIT_MATRIX` precedes `VERSION_STORE` and
//! `REGISTRY` (bulkloads hold the matrix read guard across version-store
//! entry, and the delete publish hook holds the version store across the
//! registry — so directory writers take the matrix *before* the
//! registry).
//!
//! Deliberately unranked: per-frame page-content `RwLock`s (leaf locks
//! acquired one at a time under the pool's protocol — see
//! `crates/storage/src/buffer.rs`) and `LabelIndex` internals (the index
//! object is caller-owned; only its holder slot is ranked).
//!
//! Usage notes behind the table: symbol readers (serialisation, queries,
//! name lookups) share the `SYMBOLS` lock and concurrent parsers intern
//! through a read-locked fast path ([`Repository::intern_shared`]),
//! escalating to the write lock only for a genuinely new name; the
//! `REGISTRY` mutex is held only for map operations, never across I/O,
//! and each registered document is an `Arc<DocState>` whose lazy node-id
//! map sits behind its own `DOC_IDS` mutex, so read-only traversal
//! ([`children`], [`parent`], [`node_summary`]) never blocks behind a
//! writer of a *different* document; and the buffer pool performs all
//! disk I/O outside its `BUFFER_POOL` mutex, so stalls of different
//! threads overlap.
//!
//! What may run in parallel: any number of read-only operations;
//! read-only operations against structural edits **and streaming
//! ingestion of the same document**; structural edits of *different*
//! documents; and N concurrent streaming bulkloads
//! ([`put_documents_parallel`]) into distinct segments. The global
//! reader/writer phase distinction is gone — everything below takes
//! `&self`.
//!
//! # Record versions and the latch discipline
//!
//! The shared-state edit path rests on the record-level versioning layer
//! ([`natix_tree::version`]); the protocol, from a writer's and a
//! reader's point of view:
//!
//! * **Acquisition order (writers).** A structural edit takes, in this
//!   order: (1) the target document's **edit latch** (a per-document
//!   mutex inside `DocState` — writers of one document are serialised,
//!   writers of different documents are not), (2) a **write operation**
//!   of the shared version store (every tree store of this repository —
//!   documents, catalog, ingestion pool — feeds one
//!   [`natix_tree::VersionStore`]), (3) page pins/frame locks, one page
//!   at a time. No latch is ever taken while holding a page pin, so the
//!   hierarchy is acyclic.
//! * **Copy-on-write publish point.** Before the writer overwrites,
//!   patches or deletes any stored record it deposits the record's
//!   pre-image in the version store; when the operation completes the
//!   epoch watermark advances and the deposits are stamped with it — that
//!   instant is the only point where the edit becomes visible to new
//!   readers, making every multi-record operation atomic for them.
//! * **Pin lifetime (readers).** A read operation pins the current epoch
//!   for its whole duration (one `query`, one `get_xml`, one `children`
//!   call — or a caller-scoped [`Repository::read_snapshot`]). Loads
//!   under the pin serve superseded records from the version store, so
//!   the reader observes the record graph exactly as of its epoch.
//!   Buffer-page pins stay record-scoped and short as before; the epoch
//!   pin is what keeps superseded versions (and, via
//!   `BufferManager::discard` retirement, freed page images) alive until
//!   the last reader lets go.
//! * **Serialisability.** Reader snapshots land exactly on epoch
//!   boundaries and writers of one document are serialised by the edit
//!   latch, so any racing execution is equivalent to *some* serial
//!   interleaving of whole operations — the differential suite in
//!   `crates/core/tests/prop_edit_race.rs` enforces this against a
//!   recorded serial oracle.
//!
//! Logical node ids are epoch-validated: binding result ids under a read
//! snapshot is checked against the version store **under the document's
//! edit latch** — an address a concurrent edit has already superseded is
//! refused with [`NatixError::SnapshotRace`] instead of poisoning the id
//! map with a historical pointer. Racing readers that need
//! self-contained results use the snapshot-consistent
//! [`Repository::query_content`] family, which resolves labels and text
//! within the query's own snapshot and never touches the id map.
//!
//! # Query-side lock and pin discipline
//!
//! The parallel query evaluators ([`crate::parallel_query`]) are pure
//! readers and obey three rules that keep any number of them — plus the
//! index and ingestion of other documents — deadlock-free on one
//! repository:
//!
//! 1. **Symbol table: one read-locked lookup per query, never a write.**
//!    Name tests are resolved to label ids once, up front, through
//!    [`SymbolTable::lookup_element`]; an unknown name means an empty
//!    result, not an interning. The only lock a query takes per *node* is
//!    none at all — matching compares pre-resolved label ids.
//! 2. **Buffer pins are record-scoped.** Every unit of query work loads
//!    one record ([`natix_tree::TreeStore::scan_record_subtree`] /
//!    `load`), which pins the page, parses, and unpins before any
//!    matching or any further page is touched. A query thread therefore
//!    never holds a pin while blocking on another pin, and a worker
//!    stalled on a miss waits on the buffer's in-flight condvar without
//!    reserving frames it does not need.
//! 3. **Per-document id maps bind only results.** Workers traverse
//!    physical pointers; the per-document id-map mutex is taken once at
//!    the end, to bind the merged result list — so scans of different
//!    documents (and scans racing ingestion of other documents) never
//!    serialize on shared mutable state.
//! 4. **Prefetch is an I/O region, issued lock-free.** A scan worker
//!    with a non-zero
//!    [`crate::parallel_query::ParallelQueryOptions::prefetch_window`]
//!    snapshots
//!    the pages of the next queued records while it holds the
//!    `SCAN_QUEUE` mutex (a map lookup, no I/O), *drops the lock*, and
//!    only then issues the batched read-ahead
//!    ([`natix_tree::TreeStore::prefetch_pages`] →
//!    `BufferManager::prefetch`). The buffer manager declares the batch
//!    read as an I/O region (`buffer.prefetch`), so the lockdep
//!    held-across-I/O detector enforces the rule mechanically: holding
//!    any non-I/O-tolerant lock across a prefetch panics under
//!    `--features lockdep`. Prefetched pages are marked in-flight in the
//!    pool, so a racing demand pin coalesces on the same condvar as a
//!    demand miss — never a duplicate read. Prefetch is *advisory*:
//!    it stops early rather than evict a dirty frame, and a prefetch
//!    error is swallowed (the demand read surfaces any real failure).
//!
//! # Replacement hint classes
//!
//! Every pin carries an [`natix_storage::AccessHint`] telling the buffer
//! pool what kind of access it is:
//!
//! * **`Normal`** — point accesses (navigation, edits, catalog and
//!   id-map reads). Under the scan-resistant policy these enter at hot
//!   priority and are promoted on re-reference, exactly like classic
//!   second chance.
//! * **`Scan`** — one-shot streams: record-queue scan workers
//!   ([`natix_tree::TreeStore::scan_record_subtree`]), bulkload append
//!   streams, and all prefetched pages. Scan-hinted frames enter a
//!   *bounded cold set* and are never promoted past one reference bit,
//!   so a full `//*` scan of an arbitrarily large document recycles a
//!   bounded set of frames instead of flushing the point-access working
//!   set (classic scan resistance; `BENCH_scan_cache.json` pins the
//!   point-lookup tail latency under a concurrent scan).
//!
//! The pool's hit/miss/eviction counters are split by hint class
//! ([`natix_storage::IoStats`]), and the demand-miss path feeds a
//! miss-latency EWMA that the query planner reads as its calibrated
//! page-cost constant ([`crate::query::PlannerOptions::page_cost_ns`]).
//!
//! # Plan shapes and their oracles
//!
//! [`Repository::query_planned`] routes every path query through the
//! cost-based planner ([`crate::query`]), which picks one of five plan
//! shapes from the document's path summary ([`crate::path_summary`]).
//! Each shape is independently forceable via
//! [`crate::query::PlannerOptions`] and each is pinned by a differential
//! oracle — no plan path exists without oracle coverage:
//!
//! | Shape | Strategy | Oracle |
//! |---|---|---|
//! | `SummaryOnly` | counts/emptiness straight from summary counts, zero record access | DOM re-evaluation (`prop_query.rs`), exact-cardinality vs evaluator output |
//! | `SummarySeeded` | document-order descent pruned to the ancestor closure of matching paths | bit-identical node list vs the lazy walk and the DOM oracle |
//! | `IndexSeeded` | leading descendant step seeded from an attached, current [`LabelIndex`] | same differential corpus, plus the index staleness gate |
//! | `ParallelScan` | record-granular parallel scan (`parallel_query`) | existing scan-vs-lazy differential suite, re-run per forced shape |
//! | `LazyWalk` | the sequential lazy evaluator | DOM oracle (`prop_query.rs`) |
//!
//! The planner only picks a shape whose preconditions hold (summary
//! current for the pinned epoch, no positional predicates for the
//! summary shapes, per-context emission provably equal to document
//! order); forcing an inapplicable shape surfaces
//! [`NatixError::PlanUnsupported`] rather than a wrong answer. A stale
//! summary (failed delta, pin older than the last rebuild) always falls
//! back to scans — the summary never lies, it only abstains. Racing
//! edits are covered by `prop_edit_race.rs` (counts vs a serial oracle),
//! reopen/recovery equivalence by `reopen.rs` / `crash_recovery.rs`.
//!
//! **Claim-name-then-publish:** storing a document first *claims* its name
//! atomically in the registry (the name is neither taken nor pending, or
//! the caller gets [`NatixError::DocumentExists`]), then performs the
//! load, then publishes the `DocState`. A failed load abandons the claim
//! and the bulkloader rolls back every record it flushed — concurrent
//! ingests of the same name produce exactly one winner and no leaked
//! pages.
//!
//! # Durability
//!
//! When a log device is attached (the default for file-backed and
//! crash-harness repositories; `durability: None` disables it), nothing
//! acknowledged is ever lost. The write-ahead log
//! ([`natix_storage::wal`]) sits **below** every lock above: no lock in
//! the hierarchy is ever taken while holding the log's append mutex, and
//! log appends happen either inside an operation (pre-images, allocation
//! events — under whatever latches that operation already holds) or at
//! its publish point.
//!
//! The commit protocol rides the version store's publish point:
//!
//! 1. During the operation, storage-level events are logged as they
//!    happen — `PreImage` (undo: a record's bytes before the first
//!    overwrite), `Created` (undo: delete on rollback), `Alloc`/`Free`/
//!    `SegCreate` (allocator replay), `Symbols` (alphabet growth past
//!    the logged watermark). None of these are forced; they ride in the
//!    log buffer.
//! 2. At publish, the version store's commit hook captures a full page
//!    image of every page the operation touched (`PageImage` records —
//!    physical redo, idempotent by construction) and appends `Commit`.
//! 3. The **durability gate** every public write API passes through then
//!    forces the log: `PerCommit` syncs immediately, `Group` joins a
//!    bounded group-commit window so concurrent committers share one
//!    fsync. Only after the force does the call return `Ok` — an
//!    acknowledged operation is on stable storage.
//!
//! The **WAL rule** is enforced one layer down: the buffer manager never
//! writes a dirty frame back (eviction steal, flush or clear) without
//! first forcing the log to its current end, so the base file never
//! holds effects whose log records could still be lost. Recovery
//! ([`crate::recovery`]) is ARIES-shaped over physical redo: analysis
//! finds the last checkpoint and the committed-operation set, redo
//! replays committed page images at or above the checkpoint's horizon,
//! undo reverts the loser operations' record-level effects in reverse
//! log order.
//!
//! [`Repository::checkpoint`] is fuzzy: it captures the allocator and
//! directory, flushes the pool, and — only when no write operation is
//! active — atomically truncate-resets the log to a single checkpoint
//! record (whose redo horizon is 0: LSNs restart in the new log's
//! coordinates); otherwise the checkpoint appends behind the running
//! operations' records and the log keeps its history.
//!
//! Known limitations, by design: split-matrix and DTD changes are
//! durable only at the next directory dump (registration or
//! checkpoint); the flat-file and B+-tree side stores are not logged;
//! and page writes are assumed atomic at the backend's page size.
//! (Loser-allocated pages no longer leak: recovery sweeps pages that no
//! inventory, free list or space-map chain accounts for back into the
//! free pool — see `StorageManager::reclaim_untracked_pages`.)
//!
//! # Model-checked protocols
//!
//! The concurrency protocols above are not just documented — the
//! load-bearing ones are exhaustively explored by the deterministic
//! model checker built into the `parking_lot` shim
//! (`parking_lot::model`, compiled under `cfg(any(test, feature =
//! "model"))`). Under the checker, every shim lock/condvar operation,
//! tracked atomic access and `model::spawn` is a scheduling decision
//! point; one thread runs at a time, and the scheduler either enumerates
//! interleavings bounded-exhaustively (DFS over the decision tree) or
//! samples them with a seeded PCT-style random walk. Every failure
//! report carries a **schedule token** (`dfs:0.1.0...` / `seed:N`) that
//! replays the exact interleaving deterministically.
//!
//! Five scenarios in `crates/core/tests/model/` pin the protocols down
//! (`cargo test -p natix --features model --test model`):
//!
//! * **root-publish** — a pinned snapshot reader vs a writer that forces
//!   a root-record split; the epoch-versioned root slot must keep
//!   resolving the pinned epoch's root at every interleaving point.
//! * **deposit-read** — deposit-before-overwrite: a pinned reader races
//!   an in-place text update and must never observe the writer's
//!   in-progress bytes.
//! * **buffer-coalesce** — a demand pin racing an in-flight prefetch of
//!   the same page (and the mirror case) must coalesce onto one frame
//!   and one physical read; the frame table is validated for duplicate
//!   residency.
//! * **wal-commit** — group commit from two committers plus the
//!   force-before-steal rule: a dirty page may reach disk only once the
//!   log covering its commit record is durable (checked by an
//!   LSN-asserting disk wrapper).
//! * **path-summary** — a pinned reader's query counts (eager and lazy
//!   plan shapes) must agree with its epoch's path summary while a
//!   writer inserts matching elements.
//!
//! Each scenario is paired with a **mutation harness**: reverting a
//! named production guard (`root-slot.epoch-recheck`,
//! `wal.force-before-write-back`, `buffer.inflight-recheck`,
//! `buffer.prefetch-coalesce` — see `parking_lot::fail_point`) must make
//! the checker report a violation whose token replays to the identical
//! failure, proving the suite actually guards those lines. A
//! vector-clock race detector over tracked atomics runs inside the same
//! exploration. CI runs the suite in both modes with the seed logged
//! (`NATIX_MODEL_SEED` / `NATIX_MODEL_SCHEDULES` override).
//!
//! [`children`]: Repository::children
//! [`parent`]: Repository::parent
//! [`node_summary`]: Repository::node_summary
//! [`put_documents_parallel`]: Repository::put_documents_parallel

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use natix_storage::buffer::EvictionPolicy;
use natix_storage::wal::{log_suppressed, take_commit_error, SuppressLogging};
use natix_storage::{
    BufferManager, DiskBackend, DiskProfile, FileLogDevice, FileStorage, IoStats, LogDevice,
    MemLogDevice, MemStorage, Rid, SimDisk, StorageManager, Wal, WalRecord, WalSyncMode,
};
use natix_tree::version::ReadPin;
use natix_tree::{NodePtr, SplitMatrix, TreeConfig, TreeStore, VersionStore, VisitEvent};
use natix_xml::{LabelId, LabelKind, ParserOptions, SymbolTable};

use crate::document::{DocId, DocState, NodeId};
use crate::error::{NatixError, NatixResult};
use crate::schema::SchemaManager;

/// Construction options.
#[derive(Debug, Clone)]
pub struct RepositoryOptions {
    /// Page size in bytes (the paper sweeps 2K–32K; default 8K).
    pub page_size: usize,
    /// Buffer pool size in bytes (the paper uses 2 MB).
    pub buffer_bytes: usize,
    /// Buffer replacement policy.
    pub eviction: EvictionPolicy,
    /// Tree-storage-manager configuration (split target/tolerance, merge).
    pub tree_config: TreeConfig,
    /// Initial split matrix (default: the native 1:n configuration).
    pub matrix: SplitMatrix,
    /// When set, all I/O is charged to this mechanical-disk model and the
    /// simulated clock in [`IoStats`] (used by the benchmark harness).
    pub disk_profile: Option<DiskProfile>,
    /// Keep whitespace-only text nodes when parsing (default: drop).
    pub keep_whitespace_text: bool,
    /// Write-ahead logging. `Some(mode)` makes every completed write
    /// operation durable before its API call returns — `mode` picks how
    /// log syncs are scheduled (per commit, or group commit). `None`
    /// disables the log entirely: durability then comes only from
    /// explicit [`Repository::checkpoint`] calls (the paper's
    /// measurement configuration, where logging is out of scope).
    pub durability: Option<WalSyncMode>,
}

impl Default for RepositoryOptions {
    fn default() -> Self {
        RepositoryOptions {
            page_size: 8192,
            buffer_bytes: 2 * 1024 * 1024,
            eviction: EvictionPolicy::Lru,
            tree_config: TreeConfig::paper(),
            matrix: SplitMatrix::all_other(),
            disk_profile: None,
            keep_whitespace_text: false,
            durability: Some(WalSyncMode::Group),
        }
    }
}

impl RepositoryOptions {
    /// The paper's measurement configuration for a given page size:
    /// 2 MB buffer, split target ½, tolerance ⅒, simulated DCAS disk.
    pub fn paper(page_size: usize) -> RepositoryOptions {
        RepositoryOptions {
            page_size,
            disk_profile: Some(DiskProfile::dcas_34330w()),
            // The paper's measurements charge I/O to the disk model only;
            // logging is out of scope there.
            durability: None,
            ..RepositoryOptions::default()
        }
    }
}

/// Head-position control for the simulated disk (type-erased).
trait SimControl: Send + Sync {
    fn reset_head(&self);
}

impl<B: DiskBackend> SimControl for SimDisk<B> {
    fn reset_head(&self) {
        SimDisk::reset_head(self)
    }
}

/// The document directory: registered documents, the name→id map, and the
/// pending set of the claim-name-then-publish protocol. Behind an `Arc`
/// so document-deletion publish hooks can unregister atomically with
/// their epoch.
pub(crate) struct DocRegistry {
    pub(crate) docs: Vec<Option<Arc<DocState>>>,
    pub(crate) by_name: HashMap<String, DocId>,
    /// Names claimed by in-flight loads, not yet published.
    pending: HashSet<String>,
}

/// A NATIX repository.
pub struct Repository {
    pub(crate) sm: Arc<StorageManager>,
    pub(crate) tree: TreeStore,
    pub(crate) catalog_tree: TreeStore,
    pub(crate) symbols: Arc<RwLock<SymbolTable>>,
    /// Count of label rows already covered by the log (a `Symbols` record
    /// or a checkpoint's directory payload). The commit hook appends the
    /// alphabet's growth past this watermark before each commit record,
    /// so redo never replays a record whose labels recovery cannot name.
    /// Lock order: this mutex before the symbol table's lock.
    logged_symbols: Arc<Mutex<usize>>,
    pub(crate) registry: Arc<Mutex<DocRegistry>>,
    pub(crate) schema: RwLock<SchemaManager>,
    pub(crate) options: RepositoryOptions,
    /// Ingestion-segment pool (slot → segment id), grown lazily by
    /// [`Repository::put_documents_parallel`].
    pub(crate) ingest_segs: Mutex<HashMap<usize, natix_storage::SegmentId>>,
    index_seg: natix_storage::SegmentId,
    flat_seg: natix_storage::SegmentId,
    stats: Arc<IoStats>,
    sim: Option<Arc<dyn SimControl>>,
    /// Write-ahead log, when the repository was built with one. Present
    /// ⇒ every public write API ends in [`Repository::durable_gate`].
    pub(crate) wal: Option<Arc<Wal>>,
    /// Serialises catalog checkpoints (two racing checkpoints would drop
    /// each other's catalog tree); ordinary edits and reads do not take it.
    checkpoint_lock: Mutex<()>,
    /// A [`crate::index::LabelIndex`] attached for automatic maintenance:
    /// structural edits notify it — relocation-only edits patch its
    /// entries in place, node-set changes mark the document stale.
    pub(crate) attached_index: Mutex<Option<Arc<Mutex<crate::index::LabelIndex>>>>,
    /// Per-document path summaries (epoch-versioned label-path counts);
    /// built at load or lazily by the planner, maintained by structural
    /// edits via publish hooks. See [`crate::path_summary`].
    pub(crate) summaries: Arc<crate::path_summary::SummaryStore>,
}

impl Repository {
    fn build(
        backend: Arc<dyn DiskBackend>,
        log: Option<Box<dyn LogDevice>>,
        sim: Option<Arc<dyn SimControl>>,
        options: RepositoryOptions,
        stats: Arc<IoStats>,
        fresh: bool,
    ) -> NatixResult<Repository> {
        let bm = Arc::new(BufferManager::with_buffer_bytes(
            backend,
            options.buffer_bytes,
            options.eviction,
            Arc::clone(&stats),
        ));
        // A non-fresh open whose log holds a checkpoint recovers from the
        // log (the base file may be mid-crash); otherwise — fresh store,
        // no log, or a log never checkpointed (pre-logging store) — the
        // base file is authoritative.
        let mut recovered = None;
        let sm = if fresh {
            Arc::new(StorageManager::create(Arc::clone(&bm))?)
        } else {
            let records = match &log {
                Some(device) => Wal::read_log(&**device)?,
                None => Vec::new(),
            };
            if records
                .iter()
                .any(|(_, r)| matches!(r, WalRecord::Checkpoint(_)))
            {
                let out = crate::recovery::replay(Arc::clone(&bm), &records, "catalog")?;
                let sm = Arc::clone(&out.sm);
                recovered = Some(out);
                sm
            } else {
                Arc::new(StorageManager::open(Arc::clone(&bm))?)
            }
        };
        let (docs_seg, cat_seg, index_seg, flat_seg) = if fresh {
            (
                sm.create_segment("documents")?,
                sm.create_segment("catalog")?,
                sm.create_segment("index")?,
                sm.create_segment("flat")?,
            )
        } else {
            let find = |name: &str| {
                sm.segment_by_name(name)
                    .ok_or_else(|| NatixError::Catalog(format!("missing {name} segment")))
            };
            (
                find("documents")?,
                find("catalog")?,
                find("index")?,
                find("flat")?,
            )
        };
        // One version store for every tree store of this repository:
        // records are addressed globally, so snapshot readers of the main
        // store must see versions deposited through any store.
        let versions = Arc::new(VersionStore::new());
        let tree = TreeStore::with_versions(
            Arc::clone(&sm),
            docs_seg,
            options.tree_config,
            options.matrix.clone(),
            Arc::clone(&versions),
        )?;
        let catalog_tree = TreeStore::with_versions(
            Arc::clone(&sm),
            cat_seg,
            options.tree_config,
            SplitMatrix::all_other(),
            Arc::clone(&versions),
        )?;
        let wal =
            log.map(|device| Arc::new(Wal::new(device, options.durability.unwrap_or_default())));
        let symbols = Arc::new(RwLock::with_rank(
            &parking_lot::rank::SYMBOLS,
            SymbolTable::new(),
        ));
        let logged_symbols = Arc::new(Mutex::with_rank(&parking_lot::rank::SYMBOL_MARK, 0usize));
        if let Some(w) = &wal {
            // Wire the log into every layer: the buffer honours the WAL
            // rule on dirty-frame write-back, the allocator logs its
            // events, the version store logs undo images — and the commit
            // hook below captures redo images when an operation publishes.
            bm.set_wal(Arc::clone(w));
            sm.attach_wal(Arc::clone(w));
            versions.attach_wal(Arc::clone(w));
            let hook_wal = Arc::clone(w);
            let hook_bm = Arc::clone(&bm);
            let hook_syms = Arc::clone(&symbols);
            let hook_mark = Arc::clone(&logged_symbols);
            versions.set_commit_hook(Box::new(move |op, pages| {
                let mut images = Vec::with_capacity(pages.len());
                for p in pages {
                    match hook_bm.pin(p) {
                        Ok(pin) => images.push((p, pin.read().bytes().to_vec())),
                        Err(e) => {
                            // The log can no longer describe the published
                            // state: poison it so no later commit is
                            // acknowledged, and surface the error at this
                            // thread's durability gate.
                            hook_wal.poison();
                            natix_storage::wal::set_commit_error(e);
                            return;
                        }
                    }
                }
                {
                    // Any label this operation interned must be decodable
                    // on replay: log the alphabet's growth past the
                    // watermark before the images it names.
                    let mut mark = hook_mark.lock();
                    let syms = hook_syms.read();
                    if syms.len() > *mark {
                        let rows = syms
                            .iter()
                            .skip(*mark)
                            .map(|(_, k, n)| (crate::recovery::kind_code(k), n.to_string()))
                            .collect();
                        hook_wal.append(&WalRecord::Symbols {
                            base: *mark as u32,
                            rows,
                        });
                        *mark = syms.len();
                    }
                }
                hook_wal.append_commit_batch(op, images);
            }));
        }
        let mut repo = Repository {
            sm,
            tree,
            catalog_tree,
            symbols,
            logged_symbols,
            registry: Arc::new(Mutex::with_rank(
                &parking_lot::rank::REGISTRY,
                DocRegistry {
                    docs: Vec::new(),
                    by_name: HashMap::new(),
                    pending: HashSet::new(),
                },
            )),
            schema: RwLock::with_rank(&parking_lot::rank::SCHEMA, SchemaManager::new()),
            options,
            ingest_segs: Mutex::with_rank(&parking_lot::rank::INGEST_POOL, HashMap::new()),
            index_seg,
            flat_seg,
            stats,
            sim,
            wal,
            checkpoint_lock: Mutex::with_rank(&parking_lot::rank::CHECKPOINT, ()),
            attached_index: Mutex::with_rank(&parking_lot::rank::INDEX_ATTACH, None),
            summaries: Arc::new(crate::path_summary::SummaryStore::new()),
        };
        if let Some(out) = recovered {
            // Rebuild the directory from the log, not from catalog pages
            // (recovery discarded those). Suppressed: the checkpoint
            // below re-seeds the log with the final state.
            let _quiet = SuppressLogging::new();
            crate::recovery::apply_directory(
                &mut repo,
                &out.directory,
                &out.deletions,
                &out.symbols,
            )?;
        } else if !fresh {
            let _quiet = repo.wal.is_some().then(SuppressLogging::new);
            crate::catalog::load_catalog(&mut repo)?;
        }
        if repo.wal.is_some() {
            // Seed (fresh store), reset (clean recovery), or re-anchor
            // (pre-logging store) the log with a checkpoint: from here on
            // every committed operation is recoverable.
            repo.checkpoint()?;
        }
        Ok(repo)
    }

    /// The log device implied by the options for a memory-backed store.
    fn mem_log(options: &RepositoryOptions) -> Option<Box<dyn LogDevice>> {
        options
            .durability
            .map(|_| Box::new(MemLogDevice::new()) as Box<dyn LogDevice>)
    }

    /// Creates a fresh in-memory repository.
    pub fn create_in_memory(options: RepositoryOptions) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let mem = MemStorage::new(options.page_size)?;
        let log = Repository::mem_log(&options);
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(mem, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, log, Some(sim), options, stats, true)
            }
            None => Repository::build(Arc::new(mem), log, None, options, stats, true),
        }
    }

    /// Creates a fresh repository over a caller-provided backend (used by
    /// the concurrency benchmarks to run on a throttled disk model). The
    /// backend's page size must match `options.page_size`; any
    /// `disk_profile` in the options is ignored — cost accounting is the
    /// backend's business here.
    pub fn create_on_backend(
        backend: Arc<dyn DiskBackend>,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        if backend.page_size() != options.page_size {
            return Err(NatixError::Catalog(format!(
                "backend page size {} != options page size {}",
                backend.page_size(),
                options.page_size
            )));
        }
        let stats = IoStats::new_shared();
        let log = Repository::mem_log(&options);
        Repository::build(backend, log, None, options, stats, true)
    }

    /// Creates a fresh repository over a caller-provided backend *and*
    /// log device (the crash-injection harness: both sit behind a shared
    /// fault controller, and the caller keeps handles to reopen them
    /// after a simulated crash). The log is used regardless of
    /// `options.durability`; the mode defaults to group commit.
    pub fn create_on_backend_with_log(
        backend: Arc<dyn DiskBackend>,
        log: Box<dyn LogDevice>,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        if backend.page_size() != options.page_size {
            return Err(NatixError::Catalog(format!(
                "backend page size {} != options page size {}",
                backend.page_size(),
                options.page_size
            )));
        }
        let stats = IoStats::new_shared();
        Repository::build(backend, Some(log), None, options, stats, true)
    }

    /// Opens an existing repository over a caller-provided backend and
    /// log device, running crash recovery if the log demands it.
    pub fn open_on_backend_with_log(
        backend: Arc<dyn DiskBackend>,
        log: Box<dyn LogDevice>,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        if backend.page_size() != options.page_size {
            return Err(NatixError::Catalog(format!(
                "backend page size {} != options page size {}",
                backend.page_size(),
                options.page_size
            )));
        }
        let stats = IoStats::new_shared();
        Repository::build(backend, Some(log), None, options, stats, false)
    }

    /// The log device implied by the options for a file-backed store:
    /// the `<path>.wal` sidecar.
    fn file_log(
        path: &Path,
        options: &RepositoryOptions,
        fresh: bool,
    ) -> NatixResult<Option<Box<dyn LogDevice>>> {
        let Some(_) = options.durability else {
            return Ok(None);
        };
        let device = FileLogDevice::open(&FileLogDevice::sidecar_path(path))?;
        if fresh {
            // The base file was truncated; a stale log must not outlive it.
            device.truncate(0)?;
        }
        Ok(Some(Box::new(device)))
    }

    /// Creates a fresh file-backed repository (truncates `path`).
    pub fn create_file<P: AsRef<Path>>(
        path: P,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let file = FileStorage::create(&path, options.page_size)?;
        let log = Repository::file_log(path.as_ref(), &options, true)?;
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(file, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, log, Some(sim), options, stats, true)
            }
            None => Repository::build(Arc::new(file), log, None, options, stats, true),
        }
    }

    /// Opens an existing file-backed repository, restoring the catalog —
    /// through crash recovery when its log sidecar holds a checkpoint,
    /// directly from the base file otherwise.
    pub fn open_file<P: AsRef<Path>>(
        path: P,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let file = FileStorage::open(&path, options.page_size)?;
        let log = Repository::file_log(path.as_ref(), &options, false)?;
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(file, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, log, Some(sim), options, stats, false)
            }
            None => Repository::build(Arc::new(file), log, None, options, stats, false),
        }
    }

    /// The repository's construction options.
    pub fn options(&self) -> &RepositoryOptions {
        &self.options
    }

    /// Read access to the shared label alphabet.
    pub fn symbols(&self) -> RwLockReadGuard<'_, SymbolTable> {
        self.symbols.read()
    }

    /// Write access to the alphabet (interning new labels).
    pub fn symbols_mut(&self) -> RwLockWriteGuard<'_, SymbolTable> {
        self.symbols.write()
    }

    /// Interns through a read-locked lookup fast path: concurrent parsers
    /// call this once per tag/attribute event, and almost every name is
    /// already interned.
    pub(crate) fn intern_shared(&self, kind: LabelKind, name: &str) -> LabelId {
        if let Some(id) = self.symbols.read().lookup(kind, name) {
            return id;
        }
        self.symbols.write().intern(kind, name)
    }

    /// Read access to the schema manager.
    pub fn schema(&self) -> RwLockReadGuard<'_, SchemaManager> {
        self.schema.read()
    }

    /// Write access to the schema manager.
    pub fn schema_mut(&self) -> RwLockWriteGuard<'_, SchemaManager> {
        self.schema.write()
    }

    /// The document tree store (exposed for the benchmark harness and the
    /// validator; ordinary clients use the document API).
    pub fn tree_store(&self) -> &TreeStore {
        &self.tree
    }

    /// Pins the current record-version epoch as a read snapshot for the
    /// calling thread. Every read through this repository until the guard
    /// drops — queries, navigation, serialisation, cursors — observes the
    /// stored documents exactly as of one instant, even while other
    /// threads edit or ingest them. Individual read operations pin their
    /// own snapshot internally; take this only to make *several* calls
    /// mutually consistent. Do not perform edits on the same thread while
    /// holding the guard.
    ///
    /// Document *existence* is epoch-versioned too: a document registered
    /// after the pinned epoch resolves to [`NatixError::NoSuchDocument`],
    /// and one deleted after it stays fully readable. The name→id
    /// *directory lookup* itself, however, reflects the live registry —
    /// so a name deleted-and-recreated mid-snapshot resolves to the new
    /// id, whose epoch check then reports "no such document" for this
    /// snapshot rather than resurrecting the old content.
    pub fn read_snapshot(&self) -> ReadPin<'_> {
        self.tree.begin_read()
    }

    /// The underlying storage manager.
    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.sm
    }

    /// The segment reserved for index structures.
    pub fn index_segment(&self) -> natix_storage::SegmentId {
        self.index_seg
    }

    /// The segment reserved for the flat-stream baseline.
    pub fn flat_segment(&self) -> natix_storage::SegmentId {
        self.flat_seg
    }

    /// Shared I/O statistics (buffer counters + simulated disk clock).
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Flushes and empties the buffer pool and repositions the simulated
    /// disk head — the paper's "the buffer was cleared at the start of
    /// each operation" (§4.2).
    pub fn clear_buffer(&self) -> NatixResult<()> {
        self.sm.buffer().clear()?;
        if let Some(sim) = &self.sim {
            sim.reset_head();
        }
        Ok(())
    }

    /// Parser options implied by the repository options.
    pub(crate) fn parser_options(&self) -> ParserOptions {
        ParserOptions {
            keep_whitespace_text: self.options.keep_whitespace_text,
            ..Default::default()
        }
    }

    // ==================================================================
    // Document registry: lookups and the claim/publish protocol.
    // ==================================================================

    /// Resolves a document name.
    pub fn doc_id(&self, name: &str) -> NatixResult<DocId> {
        self.registry
            .lock()
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| NatixError::NoSuchDocument(name.to_string()))
    }

    /// Names of all stored documents, in insertion order.
    pub fn document_names(&self) -> Vec<String> {
        let reg = self.registry.lock();
        let mut v: Vec<(DocId, String)> =
            reg.by_name.iter().map(|(n, &id)| (id, n.clone())).collect();
        drop(reg);
        v.sort();
        v.into_iter().map(|(_, n)| n).collect()
    }

    /// Snapshot of `(name, id, root rid)` for every document, in id order
    /// (catalog persistence).
    pub(crate) fn doc_entries(&self) -> Vec<(String, DocId, Rid)> {
        let reg = self.registry.lock();
        let mut v: Vec<(String, DocId, Rid)> = reg
            .by_name
            .iter()
            .filter_map(|(n, &id)| {
                reg.docs
                    .get(id as usize)
                    .and_then(|d| d.as_ref())
                    .map(|st| (n.clone(), id, st.root_rid()))
            })
            .collect();
        drop(reg);
        v.sort_by_key(|&(_, id, _)| id);
        v
    }

    pub(crate) fn state(&self, doc: DocId) -> NatixResult<Arc<DocState>> {
        self.registry
            .lock()
            .docs
            .get(doc as usize)
            .and_then(|d| d.as_ref())
            .cloned()
            .ok_or_else(|| NatixError::NoSuchDocument(format!("#{doc}")))
    }

    /// Atomically claims `name` for an in-flight load. Fails with
    /// [`NatixError::DocumentExists`] when the name is registered *or*
    /// claimed by a concurrent load — of two racing ingests of the same
    /// name, exactly one proceeds.
    pub(crate) fn claim_name(&self, name: &str) -> NatixResult<()> {
        let mut reg = self.registry.lock();
        if reg.by_name.contains_key(name) || !reg.pending.insert(name.to_string()) {
            return Err(NatixError::DocumentExists(name.to_string()));
        }
        Ok(())
    }

    /// Releases a claim whose load failed (the loader has already rolled
    /// back its records).
    pub(crate) fn abandon_claim(&self, name: &str) {
        self.registry.lock().pending.remove(name);
    }

    /// Registers a loaded document, releasing its claim if one was taken.
    /// The registration epoch is stamped into the document's root slot:
    /// readers pinned below it (snapshots taken before the load
    /// published) resolve the document to "not there yet".
    pub(crate) fn register(&self, state: DocState) -> DocId {
        state.set_born(self.tree.versions().epoch());
        if self.wal.is_none() || log_suppressed() {
            let mut reg = self.registry.lock();
            let id = reg.docs.len() as DocId;
            reg.pending.remove(&state.name);
            reg.by_name.insert(state.name.clone(), id);
            reg.docs.push(Some(Arc::new(state)));
            return id;
        }
        // Log the updated directory while still holding the registry
        // lock: every directory mutation appends in registry order, so
        // recovery's "latest payload wins" fold is race-free. Guard order
        // follows the rank table: SYMBOLS → SPLIT_MATRIX → REGISTRY →
        // SCHEMA (the matrix guard comes *before* the registry because
        // bulkloads hold the matrix across version-store entry, and the
        // delete publish hook holds the version store across the
        // registry — same as the catalog writer's order).
        let symbols = self.symbols.read();
        let matrix = self.tree.matrix();
        let mut reg = self.registry.lock();
        let id = reg.docs.len() as DocId;
        reg.pending.remove(&state.name);
        reg.by_name.insert(state.name.clone(), id);
        reg.docs.push(Some(Arc::new(state)));
        let payload = {
            let schema = self.schema.read();
            crate::recovery::capture_directory(&symbols, &reg, &matrix, &schema)
        };
        // op 0: unconditional. The document's content committed before
        // register was called (the loader's operation published and
        // logged its images), so the registration itself must stick.
        self.wal
            .as_ref()
            .expect("checked above")
            .append(&WalRecord::Catalog { op: 0, payload });
        id
    }

    /// Root record RID of a document as of the calling thread's snapshot
    /// (see [`DocState::root_rid_at`]): a reader pinned at epoch E must
    /// start its walk from E's root, not from a root published later —
    /// and a document deleted at or before E resolves to a clean
    /// [`NatixError::NoSuchDocument`].
    pub(crate) fn snapshot_root(&self, state: &DocState) -> NatixResult<Rid> {
        match self.tree.ambient_read_epoch() {
            Some(epoch) => state
                .root_rid_at(epoch)
                .ok_or_else(|| NatixError::NoSuchDocument(state.name.clone())),
            None => Ok(state.root_rid()),
        }
    }

    /// Builds the document's path summary from the stored tree if no live
    /// summary exists. Skipped under an ambient pin: rebuilding against
    /// the current tree could not serve the pinned epoch, so that read
    /// simply falls back to scans. Taking the edit latch freezes the
    /// document's structure, so the walk needs no snapshot pin; the
    /// summary is stamped with the epoch current at build time (readers
    /// pinned earlier keep falling back, which is conservative but never
    /// wrong).
    pub(crate) fn ensure_summary(&self, doc: DocId, state: &Arc<DocState>) -> NatixResult<()> {
        if self.summaries.has_current(doc) || self.tree.ambient_read_epoch().is_some() {
            return Ok(());
        }
        let _latch = state.edit_latch.lock();
        if state.is_dead() || self.summaries.has_current(doc) {
            return Ok(());
        }
        let summary = self.build_summary(state.root_rid())?;
        self.summaries
            .install(doc, Arc::new(summary), self.tree.versions().epoch());
        Ok(())
    }

    /// Walks a stored subtree into a fresh summary. The record count is
    /// exact: the number of distinct RIDs the walk touches.
    pub(crate) fn build_summary(&self, root: Rid) -> NatixResult<crate::path_summary::PathSummary> {
        let mut b = crate::path_summary::SummaryBuilder::new();
        let mut rids = HashSet::new();
        natix_tree::traverse(&self.tree, NodePtr::new(root, 0), &mut |ev| {
            match ev {
                VisitEvent::Enter { label, ptr } => {
                    rids.insert(ptr.rid);
                    b.start_element(label);
                }
                VisitEvent::Literal { label, ptr, .. } => {
                    rids.insert(ptr.rid);
                    b.literal(label);
                }
                VisitEvent::Leave { .. } => b.end_element(),
            }
            true
        })?;
        Ok(b.finish(rids.len() as u64))
    }

    /// Canonical form of the document's path summary (building it first
    /// if needed): sorted `(root-first label names, literal, node count)`
    /// rows. Test/diagnostic surface — two equal canonical forms mean the
    /// summaries describe the same document structure.
    pub fn path_summary_canonical(&self, name: &str) -> NatixResult<Vec<(Vec<String>, bool, u64)>> {
        let doc = self.doc_id(name)?;
        let state = self.state(doc)?;
        self.ensure_summary(doc, &state)?;
        let summary = self
            .summaries
            .summary_at(doc, None)
            .ok_or_else(|| NatixError::NoSuchDocument(name.to_string()))?;
        Ok(summary.canonical(&self.symbols()))
    }

    /// Drops the document's path summary (and its version chain) so the
    /// next planned query rebuilds from the stored tree. Test hook for
    /// the stale-fallback and rebuild-equivalence suites.
    pub fn invalidate_path_summary(&self, name: &str) -> NatixResult<()> {
        let doc = self.doc_id(name)?;
        self.summaries.remove(doc);
        Ok(())
    }

    /// Root record RID of a document (harness / validation access).
    /// Epoch-consistent when the calling thread holds a read snapshot.
    pub fn root_rid(&self, doc: DocId) -> NatixResult<Rid> {
        let st = self.state(doc)?;
        self.snapshot_root(&st)
    }

    /// The logical root node id of a document.
    pub fn root(&self, doc: DocId) -> NatixResult<NodeId> {
        Ok(self.state(doc)?.root_id)
    }

    /// Resolves a logical node id to its current physical pointer.
    pub(crate) fn resolve(&self, doc: DocId, node: NodeId) -> NatixResult<NodePtr> {
        self.state(doc)?
            .resolve(node)
            .ok_or(NatixError::NoSuchNode(node))
    }

    /// Physical statistics (records, scaffolding, depth, bytes) of one
    /// document — also validates all invariants.
    pub fn physical_stats(&self, name: &str) -> NatixResult<natix_tree::PhysicalStats> {
        let id = self.doc_id(name)?;
        let st = self.state(id)?;
        let _pin = self.tree.begin_read();
        let root = self.snapshot_root(&st)?;
        Ok(natix_tree::check_tree(&self.tree, root)?)
    }

    /// Total bytes on disk currently allocated to the repository
    /// (allocated pages × page size) — the measure of Figure 14.
    pub fn disk_bytes(&self) -> u64 {
        self.sm.allocated_pages() * self.options.page_size as u64
    }

    /// Persists the catalog (symbol table, document directory, split
    /// matrix, DTDs) and flushes everything to the backend. Takes
    /// `&self`: checkpoints are serialised against each other by the
    /// checkpoint lock, and the catalog rewrite runs as an ordinary write
    /// operation of the version layer, so readers (and edits of user
    /// documents) proceed concurrently. Page flushes race in-flight
    /// edits; the *catalog itself* is consistent, as the directory
    /// snapshot is taken under the registry lock.
    pub fn checkpoint(&self) -> NatixResult<()> {
        let _ck = self.checkpoint_lock.lock();
        let Some(wal) = &self.wal else {
            crate::catalog::save_catalog(self)?;
            self.sm.checkpoint()?;
            return Ok(());
        };
        // Quiescence baseline, taken before the suppressed work below
        // (whose operations are deliberately uncounted): if no outside
        // operation begins or finishes across the whole checkpoint, the
        // log can be truncated to just the checkpoint record.
        let versions = self.tree.versions();
        let b0 = versions.ops_begun();
        let f0 = versions.ops_finished();
        // Redo horizon: the flush below writes every page state visible
        // at this point into the base file, so committed images logged
        // before this LSN never need replay. Captured before the flush —
        // images appended *during* it land above the horizon and are
        // replayed, whether or not the flush caught them.
        let redo_horizon = wal.appended_lsn();
        {
            // The catalog rewrite and the flush are checkpoint internals:
            // their pages are rebuilt from the checkpoint itself, never
            // rolled forward or back individually.
            let _quiet = SuppressLogging::new();
            crate::catalog::save_catalog(self)?;
            self.sm.checkpoint()?;
        }
        let payload = {
            // Lock order: the watermark mutex before the symbol table.
            // The payload dumps the full alphabet, so every row is now
            // covered by the log; commits racing this block either logged
            // their Symbols record already (it survives until the next
            // truncate-reset, which installs this payload) or will see
            // the advanced watermark and log only newer rows.
            let mut mark = self.logged_symbols.lock();
            let symbols = self.symbols.read();
            *mark = symbols.len();
            let matrix = self.tree.matrix();
            let reg = self.registry.lock();
            let schema = self.schema.read();
            crate::recovery::capture_directory(&symbols, &reg, &matrix, &schema)
        };
        let quiesced = move || {
            versions.active_ops() == 0
                && versions.ops_begun() == b0
                && versions.ops_finished() == f0
        };
        self.sm
            .append_checkpoint(redo_horizon, payload, Some(&quiesced))?;
        wal.sync_to(wal.appended_lsn())?;
        Ok(())
    }

    /// The durability gate every public write API passes through after
    /// its write operation published: surfaces a commit-hook failure
    /// (poisoning the log — the published state is no longer described
    /// by it), then waits until the log is durable up to this thread's
    /// last append. Under group commit that wait batches with other
    /// committers' into one device sync.
    pub(crate) fn durable_gate(&self) -> NatixResult<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        if let Some(e) = take_commit_error() {
            wal.poison();
            return Err(e.into());
        }
        wal.sync_to(wal.appended_lsn())?;
        Ok(())
    }

    /// Attaches a [`crate::index::LabelIndex`] for automatic maintenance:
    /// every structural edit notifies it — edits that only change literal
    /// values (including the record moves, splits and packed-cluster
    /// normalizations they trigger) patch the index's relocated entries
    /// in place and the index **stays current**; edits that add or remove
    /// nodes mark the document stale as before. Pass the same `Arc` the
    /// query side uses.
    pub fn attach_label_index(&self, index: &Arc<Mutex<crate::index::LabelIndex>>) {
        *self.attached_index.lock() = Some(Arc::clone(index));
    }

    /// Detaches the automatically maintained label index.
    pub fn detach_label_index(&self) {
        *self.attached_index.lock() = None;
    }

    /// Changes a split-matrix rule by element names, interning them if
    /// necessary. Affects future insertions (loads already in flight keep
    /// their snapshot of the matrix).
    pub fn set_matrix_rule(
        &self,
        parent_tag: &str,
        child_tag: &str,
        value: natix_tree::SplitBehaviour,
    ) {
        let (p, c) = {
            let mut symbols = self.symbols.write();
            (
                symbols.intern_element(parent_tag),
                symbols.intern_element(child_tag),
            )
        };
        self.tree.set_matrix_entry(p, c, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_reject_duplicate_names() {
        let repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
        repo.put_xml("a", "<x/>").unwrap();
        assert!(matches!(
            repo.put_xml("a", "<y/>"),
            Err(NatixError::DocumentExists(_))
        ));
        assert_eq!(repo.document_names(), vec!["a"]);
    }

    #[test]
    fn paper_options() {
        let o = RepositoryOptions::paper(4096);
        assert_eq!(o.page_size, 4096);
        assert_eq!(o.buffer_bytes, 2 * 1024 * 1024);
        assert!(o.disk_profile.is_some());
    }

    #[test]
    fn clear_buffer_counts_future_reads_as_misses() {
        let repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
        repo.put_xml("d", "<a><b>hello</b></a>").unwrap();
        repo.clear_buffer().unwrap();
        let before = repo.io_stats().snapshot();
        let _ = repo.get_xml("d").unwrap();
        let after = repo.io_stats().snapshot();
        assert!(after.since(&before).buffer_misses > 0);
    }

    #[test]
    fn repository_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Repository>();
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
        repo.claim_name("d").unwrap();
        assert!(matches!(
            repo.claim_name("d"),
            Err(NatixError::DocumentExists(_))
        ));
        // A failed load releases the claim; the name is free again.
        repo.abandon_claim("d");
        repo.put_xml("d", "<a/>").unwrap();
        assert_eq!(repo.document_names(), vec!["d"]);
    }
}
