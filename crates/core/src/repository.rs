//! The repository: NATIX's top-level API.
//!
//! A [`Repository`] owns the storage stack of the paper's figure 1: disk
//! backend (optionally behind the measurement disk model), buffer manager,
//! record manager, one tree store for documents and one for the system
//! catalog, plus the schema manager. Documents are named; node-granular
//! operations live in [`crate::document`].
//!
//! # Concurrency model
//!
//! The repository is a multi-user server in the paper's design, and this
//! implementation is `Sync`: a `&Repository` may be shared across threads.
//! The locks, from the outside in:
//!
//! * **Symbol table** — `RwLock<SymbolTable>`: readers (serialisation,
//!   queries, name lookups) share; interning a *new* label takes the write
//!   lock briefly. Concurrent parsers intern through a read-locked lookup
//!   fast path ([`Repository::intern_shared`]) and only escalate on a
//!   genuinely new name, so label interning does not serialize ingestion.
//! * **Schema manager** — `RwLock<SchemaManager>`: DTD registration is
//!   exclusive, validation shares.
//! * **Document registry** — `Mutex<DocRegistry>`: the name→id directory
//!   plus the *pending* set of the claim-name-then-publish protocol (see
//!   below). Held only for map operations, never across I/O. Each
//!   registered document is an `Arc<DocState>` whose lazy node-id map sits
//!   behind its own mutex, so read-only traversal ([`children`],
//!   [`parent`], [`node_summary`]) takes `&self` and never blocks behind a
//!   writer of a *different* document.
//! * **Storage** — the buffer pool performs all disk I/O outside its pool
//!   mutex (stalls of different threads overlap), the storage manager's
//!   allocator lock is never held across page I/O, and the tree stores are
//!   lock-free apart from their split-matrix `RwLock`.
//!
//! What may run in parallel: any number of read-only operations;
//! read-only operations against structural edits **and streaming
//! ingestion of the same document**; structural edits of *different*
//! documents; and N concurrent streaming bulkloads
//! ([`put_documents_parallel`]) into distinct segments. The global
//! reader/writer phase distinction is gone — everything below takes
//! `&self`.
//!
//! # Record versions and the latch discipline
//!
//! The shared-state edit path rests on the record-level versioning layer
//! ([`natix_tree::version`]); the protocol, from a writer's and a
//! reader's point of view:
//!
//! * **Acquisition order (writers).** A structural edit takes, in this
//!   order: (1) the target document's **edit latch** (a per-document
//!   mutex inside `DocState` — writers of one document are serialised,
//!   writers of different documents are not), (2) a **write operation**
//!   of the shared version store (every tree store of this repository —
//!   documents, catalog, ingestion pool — feeds one
//!   [`natix_tree::VersionStore`]), (3) page pins/frame locks, one page
//!   at a time. No latch is ever taken while holding a page pin, so the
//!   hierarchy is acyclic.
//! * **Copy-on-write publish point.** Before the writer overwrites,
//!   patches or deletes any stored record it deposits the record's
//!   pre-image in the version store; when the operation completes the
//!   epoch watermark advances and the deposits are stamped with it — that
//!   instant is the only point where the edit becomes visible to new
//!   readers, making every multi-record operation atomic for them.
//! * **Pin lifetime (readers).** A read operation pins the current epoch
//!   for its whole duration (one `query`, one `get_xml`, one `children`
//!   call — or a caller-scoped [`Repository::read_snapshot`]). Loads
//!   under the pin serve superseded records from the version store, so
//!   the reader observes the record graph exactly as of its epoch.
//!   Buffer-page pins stay record-scoped and short as before; the epoch
//!   pin is what keeps superseded versions (and, via
//!   `BufferManager::discard` retirement, freed page images) alive until
//!   the last reader lets go.
//! * **Serialisability.** Reader snapshots land exactly on epoch
//!   boundaries and writers of one document are serialised by the edit
//!   latch, so any racing execution is equivalent to *some* serial
//!   interleaving of whole operations — the differential suite in
//!   `crates/core/tests/prop_edit_race.rs` enforces this against a
//!   recorded serial oracle.
//!
//! Logical node ids are epoch-validated: binding result ids under a read
//! snapshot is checked against the version store **under the document's
//! edit latch** — an address a concurrent edit has already superseded is
//! refused with [`NatixError::SnapshotRace`] instead of poisoning the id
//! map with a historical pointer. Racing readers that need
//! self-contained results use the snapshot-consistent
//! [`Repository::query_content`] family, which resolves labels and text
//! within the query's own snapshot and never touches the id map.
//!
//! # Query-side lock and pin discipline
//!
//! The parallel query evaluators ([`crate::parallel_query`]) are pure
//! readers and obey three rules that keep any number of them — plus the
//! index and ingestion of other documents — deadlock-free on one
//! repository:
//!
//! 1. **Symbol table: one read-locked lookup per query, never a write.**
//!    Name tests are resolved to label ids once, up front, through
//!    [`SymbolTable::lookup_element`]; an unknown name means an empty
//!    result, not an interning. The only lock a query takes per *node* is
//!    none at all — matching compares pre-resolved label ids.
//! 2. **Buffer pins are record-scoped.** Every unit of query work loads
//!    one record ([`natix_tree::TreeStore::scan_record_subtree`] /
//!    `load`), which pins the page, parses, and unpins before any
//!    matching or any further page is touched. A query thread therefore
//!    never holds a pin while blocking on another pin, and a worker
//!    stalled on a miss waits on the buffer's in-flight condvar without
//!    reserving frames it does not need.
//! 3. **Per-document id maps bind only results.** Workers traverse
//!    physical pointers; the per-document id-map mutex is taken once at
//!    the end, to bind the merged result list — so scans of different
//!    documents (and scans racing ingestion of other documents) never
//!    serialize on shared mutable state.
//!
//! **Claim-name-then-publish:** storing a document first *claims* its name
//! atomically in the registry (the name is neither taken nor pending, or
//! the caller gets [`NatixError::DocumentExists`]), then performs the
//! load, then publishes the `DocState`. A failed load abandons the claim
//! and the bulkloader rolls back every record it flushed — concurrent
//! ingests of the same name produce exactly one winner and no leaked
//! pages.
//!
//! [`children`]: Repository::children
//! [`parent`]: Repository::parent
//! [`node_summary`]: Repository::node_summary
//! [`put_documents_parallel`]: Repository::put_documents_parallel

use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use natix_storage::buffer::EvictionPolicy;
use natix_storage::{
    BufferManager, DiskBackend, DiskProfile, FileStorage, IoStats, MemStorage, Rid, SimDisk,
    StorageManager,
};
use natix_tree::version::ReadPin;
use natix_tree::{NodePtr, SplitMatrix, TreeConfig, TreeStore, VersionStore};
use natix_xml::{LabelId, LabelKind, ParserOptions, SymbolTable};

use crate::document::{DocId, DocState, NodeId};
use crate::error::{NatixError, NatixResult};
use crate::schema::SchemaManager;

/// Construction options.
#[derive(Debug, Clone)]
pub struct RepositoryOptions {
    /// Page size in bytes (the paper sweeps 2K–32K; default 8K).
    pub page_size: usize,
    /// Buffer pool size in bytes (the paper uses 2 MB).
    pub buffer_bytes: usize,
    /// Buffer replacement policy.
    pub eviction: EvictionPolicy,
    /// Tree-storage-manager configuration (split target/tolerance, merge).
    pub tree_config: TreeConfig,
    /// Initial split matrix (default: the native 1:n configuration).
    pub matrix: SplitMatrix,
    /// When set, all I/O is charged to this mechanical-disk model and the
    /// simulated clock in [`IoStats`] (used by the benchmark harness).
    pub disk_profile: Option<DiskProfile>,
    /// Keep whitespace-only text nodes when parsing (default: drop).
    pub keep_whitespace_text: bool,
}

impl Default for RepositoryOptions {
    fn default() -> Self {
        RepositoryOptions {
            page_size: 8192,
            buffer_bytes: 2 * 1024 * 1024,
            eviction: EvictionPolicy::Lru,
            tree_config: TreeConfig::paper(),
            matrix: SplitMatrix::all_other(),
            disk_profile: None,
            keep_whitespace_text: false,
        }
    }
}

impl RepositoryOptions {
    /// The paper's measurement configuration for a given page size:
    /// 2 MB buffer, split target ½, tolerance ⅒, simulated DCAS disk.
    pub fn paper(page_size: usize) -> RepositoryOptions {
        RepositoryOptions {
            page_size,
            disk_profile: Some(DiskProfile::dcas_34330w()),
            ..RepositoryOptions::default()
        }
    }
}

/// Head-position control for the simulated disk (type-erased).
trait SimControl: Send + Sync {
    fn reset_head(&self);
}

impl<B: DiskBackend> SimControl for SimDisk<B> {
    fn reset_head(&self) {
        SimDisk::reset_head(self)
    }
}

/// The document directory: registered documents, the name→id map, and the
/// pending set of the claim-name-then-publish protocol. Behind an `Arc`
/// so document-deletion publish hooks can unregister atomically with
/// their epoch.
pub(crate) struct DocRegistry {
    pub(crate) docs: Vec<Option<Arc<DocState>>>,
    pub(crate) by_name: HashMap<String, DocId>,
    /// Names claimed by in-flight loads, not yet published.
    pending: HashSet<String>,
}

/// A NATIX repository.
pub struct Repository {
    pub(crate) sm: Arc<StorageManager>,
    pub(crate) tree: TreeStore,
    pub(crate) catalog_tree: TreeStore,
    pub(crate) symbols: RwLock<SymbolTable>,
    pub(crate) registry: Arc<Mutex<DocRegistry>>,
    pub(crate) schema: RwLock<SchemaManager>,
    pub(crate) options: RepositoryOptions,
    /// Ingestion-segment pool (slot → segment id), grown lazily by
    /// [`Repository::put_documents_parallel`].
    pub(crate) ingest_segs: Mutex<HashMap<usize, natix_storage::SegmentId>>,
    index_seg: natix_storage::SegmentId,
    flat_seg: natix_storage::SegmentId,
    stats: Arc<IoStats>,
    sim: Option<Arc<dyn SimControl>>,
    /// Serialises catalog checkpoints (two racing checkpoints would drop
    /// each other's catalog tree); ordinary edits and reads do not take it.
    checkpoint_lock: Mutex<()>,
    /// A [`crate::index::LabelIndex`] attached for automatic maintenance:
    /// structural edits notify it — relocation-only edits patch its
    /// entries in place, node-set changes mark the document stale.
    pub(crate) attached_index: Mutex<Option<Arc<Mutex<crate::index::LabelIndex>>>>,
}

impl Repository {
    fn build(
        backend: Arc<dyn DiskBackend>,
        sim: Option<Arc<dyn SimControl>>,
        options: RepositoryOptions,
        stats: Arc<IoStats>,
        fresh: bool,
    ) -> NatixResult<Repository> {
        let bm = Arc::new(BufferManager::with_buffer_bytes(
            backend,
            options.buffer_bytes,
            options.eviction,
            Arc::clone(&stats),
        ));
        let sm = if fresh {
            Arc::new(StorageManager::create(bm)?)
        } else {
            Arc::new(StorageManager::open(bm)?)
        };
        let (docs_seg, cat_seg, index_seg, flat_seg) = if fresh {
            (
                sm.create_segment("documents")?,
                sm.create_segment("catalog")?,
                sm.create_segment("index")?,
                sm.create_segment("flat")?,
            )
        } else {
            let find = |name: &str| {
                sm.segment_by_name(name)
                    .ok_or_else(|| NatixError::Catalog(format!("missing {name} segment")))
            };
            (
                find("documents")?,
                find("catalog")?,
                find("index")?,
                find("flat")?,
            )
        };
        // One version store for every tree store of this repository:
        // records are addressed globally, so snapshot readers of the main
        // store must see versions deposited through any store.
        let versions = Arc::new(VersionStore::new());
        let tree = TreeStore::with_versions(
            Arc::clone(&sm),
            docs_seg,
            options.tree_config,
            options.matrix.clone(),
            Arc::clone(&versions),
        );
        let catalog_tree = TreeStore::with_versions(
            Arc::clone(&sm),
            cat_seg,
            options.tree_config,
            SplitMatrix::all_other(),
            versions,
        );
        let mut repo = Repository {
            sm,
            tree,
            catalog_tree,
            symbols: RwLock::new(SymbolTable::new()),
            registry: Arc::new(Mutex::new(DocRegistry {
                docs: Vec::new(),
                by_name: HashMap::new(),
                pending: HashSet::new(),
            })),
            schema: RwLock::new(SchemaManager::new()),
            options,
            ingest_segs: Mutex::new(HashMap::new()),
            index_seg,
            flat_seg,
            stats,
            sim,
            checkpoint_lock: Mutex::new(()),
            attached_index: Mutex::new(None),
        };
        if !fresh {
            crate::catalog::load_catalog(&mut repo)?;
        }
        Ok(repo)
    }

    /// Creates a fresh in-memory repository.
    pub fn create_in_memory(options: RepositoryOptions) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let mem = MemStorage::new(options.page_size)?;
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(mem, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, Some(sim), options, stats, true)
            }
            None => Repository::build(Arc::new(mem), None, options, stats, true),
        }
    }

    /// Creates a fresh repository over a caller-provided backend (used by
    /// the concurrency benchmarks to run on a throttled disk model). The
    /// backend's page size must match `options.page_size`; any
    /// `disk_profile` in the options is ignored — cost accounting is the
    /// backend's business here.
    pub fn create_on_backend(
        backend: Arc<dyn DiskBackend>,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        if backend.page_size() != options.page_size {
            return Err(NatixError::Catalog(format!(
                "backend page size {} != options page size {}",
                backend.page_size(),
                options.page_size
            )));
        }
        let stats = IoStats::new_shared();
        Repository::build(backend, None, options, stats, true)
    }

    /// Creates a fresh file-backed repository (truncates `path`).
    pub fn create_file<P: AsRef<Path>>(
        path: P,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let file = FileStorage::create(path, options.page_size)?;
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(file, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, Some(sim), options, stats, true)
            }
            None => Repository::build(Arc::new(file), None, options, stats, true),
        }
    }

    /// Opens an existing file-backed repository, restoring the catalog.
    pub fn open_file<P: AsRef<Path>>(
        path: P,
        options: RepositoryOptions,
    ) -> NatixResult<Repository> {
        let stats = IoStats::new_shared();
        let file = FileStorage::open(path, options.page_size)?;
        match options.disk_profile {
            Some(profile) => {
                let sim = Arc::new(SimDisk::new(file, profile, Arc::clone(&stats)));
                let backend: Arc<dyn DiskBackend> = Arc::clone(&sim) as Arc<dyn DiskBackend>;
                Repository::build(backend, Some(sim), options, stats, false)
            }
            None => Repository::build(Arc::new(file), None, options, stats, false),
        }
    }

    /// The repository's construction options.
    pub fn options(&self) -> &RepositoryOptions {
        &self.options
    }

    /// Read access to the shared label alphabet.
    pub fn symbols(&self) -> RwLockReadGuard<'_, SymbolTable> {
        self.symbols.read()
    }

    /// Write access to the alphabet (interning new labels).
    pub fn symbols_mut(&self) -> RwLockWriteGuard<'_, SymbolTable> {
        self.symbols.write()
    }

    /// Interns through a read-locked lookup fast path: concurrent parsers
    /// call this once per tag/attribute event, and almost every name is
    /// already interned.
    pub(crate) fn intern_shared(&self, kind: LabelKind, name: &str) -> LabelId {
        if let Some(id) = self.symbols.read().lookup(kind, name) {
            return id;
        }
        self.symbols.write().intern(kind, name)
    }

    /// Read access to the schema manager.
    pub fn schema(&self) -> RwLockReadGuard<'_, SchemaManager> {
        self.schema.read()
    }

    /// Write access to the schema manager.
    pub fn schema_mut(&self) -> RwLockWriteGuard<'_, SchemaManager> {
        self.schema.write()
    }

    /// The document tree store (exposed for the benchmark harness and the
    /// validator; ordinary clients use the document API).
    pub fn tree_store(&self) -> &TreeStore {
        &self.tree
    }

    /// Pins the current record-version epoch as a read snapshot for the
    /// calling thread. Every read through this repository until the guard
    /// drops — queries, navigation, serialisation, cursors — observes the
    /// stored documents exactly as of one instant, even while other
    /// threads edit or ingest them. Individual read operations pin their
    /// own snapshot internally; take this only to make *several* calls
    /// mutually consistent. Do not perform edits on the same thread while
    /// holding the guard.
    ///
    /// Document *existence* is epoch-versioned too: a document registered
    /// after the pinned epoch resolves to [`NatixError::NoSuchDocument`],
    /// and one deleted after it stays fully readable. The name→id
    /// *directory lookup* itself, however, reflects the live registry —
    /// so a name deleted-and-recreated mid-snapshot resolves to the new
    /// id, whose epoch check then reports "no such document" for this
    /// snapshot rather than resurrecting the old content.
    pub fn read_snapshot(&self) -> ReadPin<'_> {
        self.tree.begin_read()
    }

    /// The underlying storage manager.
    pub fn storage(&self) -> &Arc<StorageManager> {
        &self.sm
    }

    /// The segment reserved for index structures.
    pub fn index_segment(&self) -> natix_storage::SegmentId {
        self.index_seg
    }

    /// The segment reserved for the flat-stream baseline.
    pub fn flat_segment(&self) -> natix_storage::SegmentId {
        self.flat_seg
    }

    /// Shared I/O statistics (buffer counters + simulated disk clock).
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Flushes and empties the buffer pool and repositions the simulated
    /// disk head — the paper's "the buffer was cleared at the start of
    /// each operation" (§4.2).
    pub fn clear_buffer(&self) -> NatixResult<()> {
        self.sm.buffer().clear()?;
        if let Some(sim) = &self.sim {
            sim.reset_head();
        }
        Ok(())
    }

    /// Parser options implied by the repository options.
    pub(crate) fn parser_options(&self) -> ParserOptions {
        ParserOptions {
            keep_whitespace_text: self.options.keep_whitespace_text,
            ..Default::default()
        }
    }

    // ==================================================================
    // Document registry: lookups and the claim/publish protocol.
    // ==================================================================

    /// Resolves a document name.
    pub fn doc_id(&self, name: &str) -> NatixResult<DocId> {
        self.registry
            .lock()
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| NatixError::NoSuchDocument(name.to_string()))
    }

    /// Names of all stored documents, in insertion order.
    pub fn document_names(&self) -> Vec<String> {
        let reg = self.registry.lock();
        let mut v: Vec<(DocId, String)> =
            reg.by_name.iter().map(|(n, &id)| (id, n.clone())).collect();
        drop(reg);
        v.sort();
        v.into_iter().map(|(_, n)| n).collect()
    }

    /// Snapshot of `(name, id, root rid)` for every document, in id order
    /// (catalog persistence).
    pub(crate) fn doc_entries(&self) -> Vec<(String, DocId, Rid)> {
        let reg = self.registry.lock();
        let mut v: Vec<(String, DocId, Rid)> = reg
            .by_name
            .iter()
            .filter_map(|(n, &id)| {
                reg.docs
                    .get(id as usize)
                    .and_then(|d| d.as_ref())
                    .map(|st| (n.clone(), id, st.root_rid()))
            })
            .collect();
        drop(reg);
        v.sort_by_key(|&(_, id, _)| id);
        v
    }

    pub(crate) fn state(&self, doc: DocId) -> NatixResult<Arc<DocState>> {
        self.registry
            .lock()
            .docs
            .get(doc as usize)
            .and_then(|d| d.as_ref())
            .cloned()
            .ok_or_else(|| NatixError::NoSuchDocument(format!("#{doc}")))
    }

    /// Atomically claims `name` for an in-flight load. Fails with
    /// [`NatixError::DocumentExists`] when the name is registered *or*
    /// claimed by a concurrent load — of two racing ingests of the same
    /// name, exactly one proceeds.
    pub(crate) fn claim_name(&self, name: &str) -> NatixResult<()> {
        let mut reg = self.registry.lock();
        if reg.by_name.contains_key(name) || !reg.pending.insert(name.to_string()) {
            return Err(NatixError::DocumentExists(name.to_string()));
        }
        Ok(())
    }

    /// Releases a claim whose load failed (the loader has already rolled
    /// back its records).
    pub(crate) fn abandon_claim(&self, name: &str) {
        self.registry.lock().pending.remove(name);
    }

    /// Registers a loaded document, releasing its claim if one was taken.
    /// The registration epoch is stamped into the document's root slot:
    /// readers pinned below it (snapshots taken before the load
    /// published) resolve the document to "not there yet".
    pub(crate) fn register(&self, state: DocState) -> DocId {
        state.set_born(self.tree.versions().epoch());
        let mut reg = self.registry.lock();
        let id = reg.docs.len() as DocId;
        reg.pending.remove(&state.name);
        reg.by_name.insert(state.name.clone(), id);
        reg.docs.push(Some(Arc::new(state)));
        id
    }

    /// Root record RID of a document as of the calling thread's snapshot
    /// (see [`DocState::root_rid_at`]): a reader pinned at epoch E must
    /// start its walk from E's root, not from a root published later —
    /// and a document deleted at or before E resolves to a clean
    /// [`NatixError::NoSuchDocument`].
    pub(crate) fn snapshot_root(&self, state: &DocState) -> NatixResult<Rid> {
        match self.tree.ambient_read_epoch() {
            Some(epoch) => state
                .root_rid_at(epoch)
                .ok_or_else(|| NatixError::NoSuchDocument(state.name.clone())),
            None => Ok(state.root_rid()),
        }
    }

    /// Root record RID of a document (harness / validation access).
    /// Epoch-consistent when the calling thread holds a read snapshot.
    pub fn root_rid(&self, doc: DocId) -> NatixResult<Rid> {
        let st = self.state(doc)?;
        self.snapshot_root(&st)
    }

    /// The logical root node id of a document.
    pub fn root(&self, doc: DocId) -> NatixResult<NodeId> {
        Ok(self.state(doc)?.root_id)
    }

    /// Resolves a logical node id to its current physical pointer.
    pub(crate) fn resolve(&self, doc: DocId, node: NodeId) -> NatixResult<NodePtr> {
        self.state(doc)?
            .resolve(node)
            .ok_or(NatixError::NoSuchNode(node))
    }

    /// Physical statistics (records, scaffolding, depth, bytes) of one
    /// document — also validates all invariants.
    pub fn physical_stats(&self, name: &str) -> NatixResult<natix_tree::PhysicalStats> {
        let id = self.doc_id(name)?;
        let st = self.state(id)?;
        let _pin = self.tree.begin_read();
        let root = self.snapshot_root(&st)?;
        Ok(natix_tree::check_tree(&self.tree, root)?)
    }

    /// Total bytes on disk currently allocated to the repository
    /// (allocated pages × page size) — the measure of Figure 14.
    pub fn disk_bytes(&self) -> u64 {
        self.sm.allocated_pages() * self.options.page_size as u64
    }

    /// Persists the catalog (symbol table, document directory, split
    /// matrix, DTDs) and flushes everything to the backend. Takes
    /// `&self`: checkpoints are serialised against each other by the
    /// checkpoint lock, and the catalog rewrite runs as an ordinary write
    /// operation of the version layer, so readers (and edits of user
    /// documents) proceed concurrently. Page flushes race in-flight
    /// edits; the *catalog itself* is consistent, as the directory
    /// snapshot is taken under the registry lock.
    pub fn checkpoint(&self) -> NatixResult<()> {
        let _ck = self.checkpoint_lock.lock();
        crate::catalog::save_catalog(self)?;
        self.sm.checkpoint()?;
        Ok(())
    }

    /// Attaches a [`crate::index::LabelIndex`] for automatic maintenance:
    /// every structural edit notifies it — edits that only change literal
    /// values (including the record moves, splits and packed-cluster
    /// normalizations they trigger) patch the index's relocated entries
    /// in place and the index **stays current**; edits that add or remove
    /// nodes mark the document stale as before. Pass the same `Arc` the
    /// query side uses.
    pub fn attach_label_index(&self, index: &Arc<Mutex<crate::index::LabelIndex>>) {
        *self.attached_index.lock() = Some(Arc::clone(index));
    }

    /// Detaches the automatically maintained label index.
    pub fn detach_label_index(&self) {
        *self.attached_index.lock() = None;
    }

    /// Changes a split-matrix rule by element names, interning them if
    /// necessary. Affects future insertions (loads already in flight keep
    /// their snapshot of the matrix).
    pub fn set_matrix_rule(
        &self,
        parent_tag: &str,
        child_tag: &str,
        value: natix_tree::SplitBehaviour,
    ) {
        let (p, c) = {
            let mut symbols = self.symbols.write();
            (
                symbols.intern_element(parent_tag),
                symbols.intern_element(child_tag),
            )
        };
        self.tree.set_matrix_entry(p, c, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_reject_duplicate_names() {
        let repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
        repo.put_xml("a", "<x/>").unwrap();
        assert!(matches!(
            repo.put_xml("a", "<y/>"),
            Err(NatixError::DocumentExists(_))
        ));
        assert_eq!(repo.document_names(), vec!["a"]);
    }

    #[test]
    fn paper_options() {
        let o = RepositoryOptions::paper(4096);
        assert_eq!(o.page_size, 4096);
        assert_eq!(o.buffer_bytes, 2 * 1024 * 1024);
        assert!(o.disk_profile.is_some());
    }

    #[test]
    fn clear_buffer_counts_future_reads_as_misses() {
        let repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
        repo.put_xml("d", "<a><b>hello</b></a>").unwrap();
        repo.clear_buffer().unwrap();
        let before = repo.io_stats().snapshot();
        let _ = repo.get_xml("d").unwrap();
        let after = repo.io_stats().snapshot();
        assert!(after.since(&before).buffer_misses > 0);
    }

    #[test]
    fn repository_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Repository>();
    }

    #[test]
    fn claim_is_exclusive_until_released() {
        let repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
        repo.claim_name("d").unwrap();
        assert!(matches!(
            repo.claim_name("d"),
            Err(NatixError::DocumentExists(_))
        ));
        // A failed load releases the claim; the name is free again.
        repo.abandon_claim("d");
        repo.put_xml("d", "<a/>").unwrap();
        assert_eq!(repo.document_names(), vec!["d"]);
    }
}
