//! Index management.
//!
//! NATIX's architecture (figure 1) includes an index-management module,
//! and §6 lists "index structures that support our storage structure" as
//! research in progress. [`LabelIndex`] is such a structure: a B+-tree
//! mapping `(label, document, occurrence)` to the node's physical address,
//! letting queries like the paper's Query 1 jump straight to, say, every
//! `SPEAKER` of a document instead of walking the tree.
//!
//! Entries store physical [`NodePtr`]s, which mutations invalidate; the
//! index tracks a per-document *stale* flag and callers rebuild before
//! querying a mutated document (`ensure_current`). Incremental index
//! maintenance is future work here — as it was in the paper.
//!
//! Lookups ([`LabelIndex::lookup`] / [`LabelIndex::lookup_ptrs`]) take
//! `&self` and read B+-tree pages through short buffer pins only, so any
//! number of them run in parallel with each other and with the parallel
//! query evaluators — the same read-side discipline as
//! [`crate::parallel_query`].

use std::collections::HashSet;

use natix_storage::btree::BTree;
use natix_storage::{PageId, Rid};
use natix_tree::{NodePtr, VisitEvent};
use natix_xml::LabelId;

use crate::document::{DocId, NodeId};
use crate::error::NatixResult;
use crate::repository::Repository;

/// Key bytes: label (2, BE) + doc (4, BE) + occurrence (8, BE).
const KEY_LEN: usize = 14;

fn key(label: LabelId, doc: DocId, seq: u64) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    k[0..2].copy_from_slice(&label.to_be_bytes());
    k[2..6].copy_from_slice(&doc.to_be_bytes());
    k[6..14].copy_from_slice(&seq.to_be_bytes());
    k
}

fn pack(ptr: NodePtr) -> u64 {
    ((ptr.rid.page as u64) << 32) | ((ptr.rid.slot as u64) << 16) | ptr.node as u64
}

fn unpack(v: u64) -> NodePtr {
    NodePtr::new(
        Rid::new((v >> 32) as u32, ((v >> 16) & 0xFFFF) as u16),
        (v & 0xFFFF) as u16,
    )
}

/// A persistent label index over one repository.
pub struct LabelIndex {
    meta: PageId,
    indexed: HashSet<DocId>,
    stale: HashSet<DocId>,
}

impl LabelIndex {
    /// Creates a fresh index in the repository's index segment.
    pub fn create(repo: &Repository) -> NatixResult<LabelIndex> {
        let seg = repo.index_segment();
        let bt = BTree::create(repo.storage(), seg, KEY_LEN)?;
        Ok(LabelIndex {
            meta: bt.meta_page(),
            indexed: HashSet::new(),
            stale: HashSet::new(),
        })
    }

    /// The B+-tree meta page (for reopening).
    pub fn meta_page(&self) -> PageId {
        self.meta
    }

    fn btree<'a>(&self, repo: &'a Repository) -> NatixResult<BTree<'a>> {
        Ok(BTree::open(
            repo.storage(),
            repo.index_segment(),
            self.meta,
        )?)
    }

    /// Indexes (or re-indexes) a document: one entry per facade node. The
    /// traversal runs under a record-version snapshot, so indexing a
    /// document while another thread edits it produces a consistent (if
    /// immediately stale) entry set rather than a torn walk.
    pub fn index_document(&mut self, repo: &Repository, name: &str) -> NatixResult<()> {
        let doc = repo.doc_id(name)?;
        let _pin = repo.tree_store().begin_read();
        let root_rid = repo.root_rid(doc)?;
        let bt = self.btree(repo)?;
        if self.indexed.contains(&doc) {
            // Drop old entries for this document (lazy B+-tree deletes).
            let lo = key(0, doc, 0);
            let hi = key(u16::MAX, doc, u64::MAX);
            let mut old = Vec::new();
            bt.scan_range(&lo, &hi, |k, _| {
                if k[2..6] == doc.to_be_bytes() {
                    old.push(k.to_vec());
                }
                true
            })?;
            for k in old {
                bt.delete(&k)?;
            }
        }
        let mut seq_per_label: std::collections::HashMap<LabelId, u64> =
            std::collections::HashMap::new();
        let mut entries = Vec::new();
        natix_tree::traverse(repo.tree_store(), NodePtr::new(root_rid, 0), &mut |ev| {
            let (label, ptr) = match ev {
                VisitEvent::Enter { label, ptr } => (label, ptr),
                VisitEvent::Literal { label, ptr, .. } => (label, ptr),
                VisitEvent::Leave { .. } => return true,
            };
            let seq = seq_per_label.entry(label).or_insert(0);
            entries.push((key(label, doc, *seq), pack(ptr)));
            *seq += 1;
            true
        })?;
        for (k, v) in entries {
            bt.insert(&k, v)?;
        }
        self.indexed.insert(doc);
        self.stale.remove(&doc);
        Ok(())
    }

    /// Marks a document's entries stale (call after mutating it).
    pub fn mark_stale(&mut self, doc: DocId) {
        if self.indexed.contains(&doc) {
            self.stale.insert(doc);
        }
    }

    /// Incremental maintenance for edits that introduce or remove **no**
    /// indexed nodes (literal value updates, record moves and splits from
    /// text growth, packed-cluster normalization): the set of indexed
    /// `(label, occurrence)` keys is unchanged — document order of the
    /// surviving nodes never shifts — so instead of invalidating the
    /// document (a full rescan on the next indexed query), the entries of
    /// relocated nodes are patched in place from the edit's relocation
    /// events. Keys are label-major, so the document's entries are read
    /// through one per-label range per alphabet label — the document's
    /// own entries plus one B+-tree descent per label, never other
    /// documents' entries — replacing a walk of the whole stored tree
    /// plus a delete-and-reinsert of every entry.
    ///
    /// Edits that add or delete nodes must still use
    /// [`mark_stale`](Self::mark_stale) — occurrence numbering shifts.
    pub fn apply_relocations(
        &mut self,
        repo: &Repository,
        doc: DocId,
        relocations: &[natix_tree::Relocation],
    ) -> NatixResult<()> {
        if !self.indexed.contains(&doc) || self.stale.contains(&doc) || relocations.is_empty() {
            return Ok(());
        }
        let moved: std::collections::HashMap<u64, u64> = relocations
            .iter()
            .map(|r| (pack(r.old), pack(r.new)))
            .collect();
        let labels = repo.symbols().len() as u16;
        let bt = self.btree(repo)?;
        let mut patches = Vec::new();
        for label in 0..labels {
            let lo = key(label, doc, 0);
            let hi = key(label, doc, u64::MAX);
            bt.scan_range(&lo, &hi, |k, v| {
                debug_assert_eq!(k[2..6], doc.to_be_bytes());
                if let Some(&new) = moved.get(&v) {
                    patches.push((k.to_vec(), new));
                }
                true
            })?;
        }
        for (k, v) in patches {
            bt.insert(&k, v)?;
        }
        Ok(())
    }

    /// True when the document is indexed and current.
    pub fn is_current(&self, doc: DocId) -> bool {
        self.indexed.contains(&doc) && !self.stale.contains(&doc)
    }

    /// Re-indexes if stale or missing.
    pub fn ensure_current(&mut self, repo: &Repository, name: &str) -> NatixResult<()> {
        let doc = repo.doc_id(name)?;
        if !self.is_current(doc) {
            self.index_document(repo, name)?;
        }
        Ok(())
    }

    /// All nodes with the given element label in a document, in insertion
    /// (document) order, as logical node ids.
    pub fn lookup(&self, repo: &Repository, name: &str, tag: &str) -> NatixResult<Vec<NodeId>> {
        let doc = repo.doc_id(name)?;
        let Some(label) = repo.symbols().lookup_element(tag) else {
            return Ok(Vec::new());
        };
        let ptrs = self.lookup_ptrs(repo, doc, label)?;
        let state = repo.state(doc)?;
        Ok(ptrs.into_iter().map(|p| state.bind(p)).collect())
    }

    /// Physical-pointer lookup (used by the benchmark harness to avoid
    /// the id-mapping overhead in measurements).
    pub fn lookup_ptrs(
        &self,
        repo: &Repository,
        doc: DocId,
        label: LabelId,
    ) -> NatixResult<Vec<NodePtr>> {
        let bt = self.btree(repo)?;
        let lo = key(label, doc, 0);
        let hi = key(label, doc, u64::MAX);
        let mut out = Vec::new();
        bt.scan_range(&lo, &hi, |_, v| {
            out.push(unpack(v));
            true
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{Repository, RepositoryOptions};
    use natix_tree::InsertPos;

    fn repo_with_play() -> Repository {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 1024,
            ..RepositoryOptions::default()
        })
        .unwrap();
        repo.put_xml(
            "p",
            "<PLAY><ACT><SCENE>\
             <SPEECH><SPEAKER>A</SPEAKER><LINE>1</LINE></SPEECH>\
             <SPEECH><SPEAKER>B</SPEAKER><LINE>2</LINE><LINE>3</LINE></SPEECH>\
             </SCENE></ACT></PLAY>",
        )
        .unwrap();
        repo
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let ptr = NodePtr::new(Rid::new(123_456, 789), 321);
        assert_eq!(unpack(pack(ptr)), ptr);
    }

    #[test]
    fn index_and_lookup() {
        let repo = repo_with_play();
        let mut idx = LabelIndex::create(&repo).unwrap();
        idx.index_document(&repo, "p").unwrap();
        let id = repo.doc_id("p").unwrap();
        let speakers = idx.lookup(&repo, "p", "SPEAKER").unwrap();
        assert_eq!(speakers.len(), 2);
        let texts: Vec<String> = speakers
            .iter()
            .map(|&s| repo.text_content(id, s).unwrap())
            .collect();
        assert_eq!(texts, vec!["A", "B"]);
        let lines = idx.lookup(&repo, "p", "LINE").unwrap();
        assert_eq!(lines.len(), 3);
        assert!(idx.lookup(&repo, "p", "NOPE").unwrap().is_empty());
    }

    #[test]
    fn staleness_and_rebuild() {
        let repo = repo_with_play();
        let mut idx = LabelIndex::create(&repo).unwrap();
        idx.index_document(&repo, "p").unwrap();
        let id = repo.doc_id("p").unwrap();
        assert!(idx.is_current(id));
        // Mutate: add a speech; mark stale; rebuild finds the new node.
        let scenes = repo.query("p", "/PLAY/ACT/SCENE").unwrap();
        let speech = repo
            .insert_element(id, scenes[0], InsertPos::Last, "SPEECH")
            .unwrap();
        let speaker = repo
            .insert_element(id, speech, InsertPos::Last, "SPEAKER")
            .unwrap();
        repo.insert_text(id, speaker, InsertPos::Last, "C").unwrap();
        idx.mark_stale(id);
        assert!(!idx.is_current(id));
        idx.ensure_current(&repo, "p").unwrap();
        let speakers = idx.lookup(&repo, "p", "SPEAKER").unwrap();
        assert_eq!(speakers.len(), 3);
    }

    #[test]
    fn value_edits_keep_the_index_current() {
        // Regression (PR 4 follow-up): LabelIndex was rebuild-on-stale —
        // *any* structural edit forced a full-document rescan on the next
        // indexed query. Edits that introduce/remove no indexed nodes
        // (text updates, including ones that grow the text enough to
        // split records and relocate every neighbour) now keep the index
        // current: relocated entries are patched in place from the edit's
        // relocation events.
        use parking_lot::Mutex;
        use std::sync::Arc;

        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 512, // small pages: growth forces splits/relocations
            ..RepositoryOptions::default()
        })
        .unwrap();
        repo.put_xml(
            "p",
            "<PLAY><SPEECH><SPEAKER>A</SPEAKER><LINE>one</LINE></SPEECH>\
             <SPEECH><SPEAKER>B</SPEAKER><LINE>two</LINE></SPEECH></PLAY>",
        )
        .unwrap();
        let doc = repo.doc_id("p").unwrap();
        let idx = Arc::new(Mutex::new(LabelIndex::create(&repo).unwrap()));
        idx.lock().index_document(&repo, "p").unwrap();
        repo.attach_label_index(&idx);

        // A text update big enough to split the record and relocate
        // neighbours: the index must stay current and resolve the moved
        // SPEAKER nodes without any rescan.
        let lines = repo.query("p", "//LINE").unwrap();
        let text_node = repo.children(doc, lines[0]).unwrap()[0];
        repo.update_text(doc, text_node, &"G".repeat(300)).unwrap();
        assert!(
            idx.lock().is_current(doc),
            "a value-only edit must not invalidate the index"
        );
        let speakers = idx.lock().lookup(&repo, "p", "SPEAKER").unwrap();
        assert_eq!(speakers.len(), 2);
        let texts: Vec<String> = speakers
            .iter()
            .map(|&s| repo.text_content(doc, s).unwrap())
            .collect();
        assert_eq!(texts, vec!["A", "B"], "patched entries resolve correctly");

        // A node-set edit still invalidates.
        let root = repo.root(doc).unwrap();
        repo.insert_element(doc, root, InsertPos::Last, "SPEAKER")
            .unwrap();
        assert!(
            !idx.lock().is_current(doc),
            "adding a node shifts occurrence numbering: stale"
        );
        idx.lock().ensure_current(&repo, "p").unwrap();
        assert_eq!(idx.lock().lookup(&repo, "p", "SPEAKER").unwrap().len(), 3);
    }

    #[test]
    fn concurrent_lookups_share_the_index() {
        // Index lookups are read-only (`&self`): many threads resolving
        // different labels through the same index concurrently must all
        // see the full, consistent entry set — racing the parallel query
        // evaluator on the same repository.
        let repo = repo_with_play();
        let mut idx = LabelIndex::create(&repo).unwrap();
        idx.index_document(&repo, "p").unwrap();
        let idx = &idx;
        let repo = &repo;
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(idx.lookup(repo, "p", "SPEAKER").unwrap().len(), 2);
                        assert_eq!(idx.lookup(repo, "p", "LINE").unwrap().len(), 3);
                        assert!(idx.lookup(repo, "p", "NOPE").unwrap().is_empty());
                    }
                });
            }
            s.spawn(move || {
                for _ in 0..50 {
                    // The evaluator and the index agree while both race.
                    assert_eq!(repo.query("p", "//SPEAKER").unwrap().len(), 2);
                }
            });
        });
    }

    #[test]
    fn multiple_documents_are_disjoint() {
        let repo = repo_with_play();
        repo.put_xml(
            "q",
            "<PLAY><ACT><SCENE><SPEECH><SPEAKER>Z</SPEAKER>\
                           <LINE>z</LINE></SPEECH></SCENE></ACT></PLAY>",
        )
        .unwrap();
        let mut idx = LabelIndex::create(&repo).unwrap();
        idx.index_document(&repo, "p").unwrap();
        idx.index_document(&repo, "q").unwrap();
        assert_eq!(idx.lookup(&repo, "p", "SPEAKER").unwrap().len(), 2);
        assert_eq!(idx.lookup(&repo, "q", "SPEAKER").unwrap().len(), 1);
    }
}
