//! The system catalog.
//!
//! §2.1: "The system catalog itself is stored as a collection of XML
//! documents inside the system." We follow that design literally: the
//! catalog is one XML document, stored through the same tree storage
//! manager as user data, in its own segment. It records
//!
//! * the user label alphabet (so interned ids stay stable across opens),
//! * the document directory (name → root record RID),
//! * the split-matrix configuration,
//! * registered DTDs.
//!
//! Bootstrap: the catalog's own element/attribute labels are interned into
//! a *fixed, code-defined* symbol table (ids are deterministic), so the
//! catalog document can be decoded before the user alphabet is known. The
//! catalog root RID lives in the storage manager's header user-root area.

use natix_storage::Rid;
use natix_tree::{SplitBehaviour, SplitMatrix, TreeStore};
use natix_xml::{Document, LabelKind, NodeData, SymbolTable};

use crate::document::DocState;
use crate::error::{NatixError, NatixResult};
use crate::repository::Repository;

const MAGIC: &[u8; 6] = b"NXCAT1";

/// The catalog's fixed label alphabet.
pub struct CatalogSymbols {
    pub table: SymbolTable,
    pub catalog: u16,
    pub symbols: u16,
    pub sym: u16,
    pub documents: u16,
    pub doc: u16,
    pub matrix: u16,
    pub rule: u16,
    pub dtds: u16,
    pub dtd: u16,
    // attributes
    pub a_kind: u16,
    pub a_name: u16,
    pub a_page: u16,
    pub a_slot: u16,
    pub a_default: u16,
    pub a_parent: u16,
    pub a_child: u16,
    pub a_value: u16,
}

impl CatalogSymbols {
    /// Builds the fixed table — intern order defines the ids, so this must
    /// never change between versions.
    pub fn new() -> CatalogSymbols {
        let mut t = SymbolTable::new();
        CatalogSymbols {
            catalog: t.intern_element("natix-catalog"),
            symbols: t.intern_element("symbols"),
            sym: t.intern_element("sym"),
            documents: t.intern_element("documents"),
            doc: t.intern_element("doc"),
            matrix: t.intern_element("matrix"),
            rule: t.intern_element("rule"),
            dtds: t.intern_element("dtds"),
            dtd: t.intern_element("dtd"),
            a_kind: t.intern_attribute("k"),
            a_name: t.intern_attribute("name"),
            a_page: t.intern_attribute("page"),
            a_slot: t.intern_attribute("slot"),
            a_default: t.intern_attribute("default"),
            a_parent: t.intern_attribute("parent"),
            a_child: t.intern_attribute("child"),
            a_value: t.intern_attribute("v"),
            table: t,
        }
    }
}

impl Default for CatalogSymbols {
    fn default() -> Self {
        CatalogSymbols::new()
    }
}

fn attr(doc: &mut Document, node: natix_xml::NodeIdx, label: u16, value: impl Into<String>) {
    doc.add_child(node, NodeData::attribute(label, value));
}

fn behaviour_name(b: SplitBehaviour) -> &'static str {
    match b {
        SplitBehaviour::Standalone => "standalone",
        SplitBehaviour::KeepWithParent => "inf",
        SplitBehaviour::Other => "other",
    }
}

fn behaviour_from(name: &str) -> NatixResult<SplitBehaviour> {
    Ok(match name {
        "standalone" => SplitBehaviour::Standalone,
        "inf" => SplitBehaviour::KeepWithParent,
        "other" => SplitBehaviour::Other,
        other => return Err(NatixError::Catalog(format!("unknown behaviour '{other}'"))),
    })
}

/// Builds the catalog document from the repository's current state.
fn build_catalog_doc(repo: &Repository, cs: &CatalogSymbols) -> Document {
    let mut doc = Document::new(NodeData::Element(cs.catalog));
    let root = doc.root();

    let symbols = repo.symbols();
    let syms = doc.add_child(root, NodeData::Element(cs.symbols));
    for (_, kind, name) in symbols
        .iter()
        .skip(natix_xml::symbols::FIRST_USER_LABEL as usize)
    {
        let s = doc.add_child(syms, NodeData::Element(cs.sym));
        let k = match kind {
            LabelKind::Element => "e",
            LabelKind::Attribute => "a",
            LabelKind::Builtin => "b",
        };
        attr(&mut doc, s, cs.a_kind, k);
        attr(&mut doc, s, cs.a_name, name);
    }

    let docs = doc.add_child(root, NodeData::Element(cs.documents));
    for (name, _, root_rid) in repo.doc_entries() {
        let d = doc.add_child(docs, NodeData::Element(cs.doc));
        attr(&mut doc, d, cs.a_name, name);
        attr(&mut doc, d, cs.a_page, root_rid.page.to_string());
        attr(&mut doc, d, cs.a_slot, root_rid.slot.to_string());
    }

    let matrix = repo.tree.matrix();
    let m = doc.add_child(root, NodeData::Element(cs.matrix));
    attr(
        &mut doc,
        m,
        cs.a_default,
        behaviour_name(matrix.default_behaviour()),
    );
    // Rules whose labels are not interned yet (a matrix installed before
    // any document used those names) cannot affect stored content and have
    // no printable name — skip them; a later checkpoint captures them.
    let known = symbols.len() as u16;
    let mut rules: Vec<(u16, u16, SplitBehaviour)> = matrix
        .overrides()
        .filter(|&(p, c, _)| p < known && c < known)
        .collect();
    rules.sort_by_key(|&(p, c, _)| (p, c));
    for (p, c, b) in rules {
        let r = doc.add_child(m, NodeData::Element(cs.rule));
        attr(&mut doc, r, cs.a_parent, symbols.name(p));
        attr(&mut doc, r, cs.a_child, symbols.name(c));
        attr(&mut doc, r, cs.a_value, behaviour_name(b));
    }
    drop(matrix);
    drop(symbols);

    let dtds = doc.add_child(root, NodeData::Element(cs.dtds));
    let schema = repo.schema();
    for (name, text) in schema.dtd_sources() {
        let d = doc.add_child(dtds, NodeData::Element(cs.dtd));
        attr(&mut doc, d, cs.a_name, name);
        doc.add_child(d, NodeData::text(text));
    }
    doc
}

/// Stores a logical document into a tree store through the streaming
/// bulkloader (records built bottom-up, each written once), without
/// document-manager bookkeeping. Long string literals (DTD sources) are
/// chunked into sibling literals to stay below the record-size ceiling.
/// Returns the root record RID.
pub(crate) fn store_plain_document(tree: &TreeStore, doc: &Document) -> NatixResult<Rid> {
    if !matches!(doc.data(doc.root()), NodeData::Element(_)) {
        return Err(NatixError::Validation(
            "catalog root must be an element".into(),
        ));
    }
    let limit = crate::document::chunk_limit(tree.net_capacity());
    let stats = natix_tree::bulkload_document(tree, doc, Some(limit))?;
    Ok(stats.root_rid)
}

/// Writes the catalog document and records its root RID in the header.
/// Takes `&Repository`: the rewrite is an ordinary write operation of the
/// record-version layer (callers serialise checkpoints).
pub fn save_catalog(repo: &Repository) -> NatixResult<()> {
    let cs = CatalogSymbols::new();
    let doc = build_catalog_doc(repo, &cs);
    // Drop the previous catalog tree, if any.
    if let Some(old) = read_catalog_root(repo)? {
        repo.catalog_tree.drop_tree(old)?;
    }
    let rid = store_plain_document(&repo.catalog_tree, &doc)?;
    let mut root = [0u8; 14];
    root[..6].copy_from_slice(MAGIC);
    rid.encode(&mut root[6..14]);
    repo.sm.set_user_root(&root)?;
    Ok(())
}

fn read_catalog_root(repo: &Repository) -> NatixResult<Option<Rid>> {
    let root = repo.sm.user_root()?;
    if &root[..6] != MAGIC {
        return Ok(None);
    }
    Ok(Some(Rid::decode(&root[6..14])))
}

/// Restores repository state from the catalog document (on open).
pub fn load_catalog(repo: &mut Repository) -> NatixResult<()> {
    let Some(rid) = read_catalog_root(repo)? else {
        return Ok(()); // freshly created, never checkpointed
    };
    let cs = CatalogSymbols::new();
    let doc = natix_tree::reconstruct_document(&repo.catalog_tree, rid)?;
    let root = doc.root();
    if doc.data(root).label() != cs.catalog {
        return Err(NatixError::Catalog("catalog root element mismatch".into()));
    }
    let get_attr = |node: natix_xml::NodeIdx, label: u16| -> Option<String> {
        doc.children(node).iter().find_map(|&c| match doc.data(c) {
            NodeData::Literal { label: l, value } if *l == label => Some(value.to_text()),
            _ => None,
        })
    };

    // 1. Symbols: rebuild the alphabet in stored order.
    let mut rows: Vec<(LabelKind, String)> = SymbolTable::new()
        .iter()
        .map(|(_, k, n)| (k, n.to_string()))
        .collect();
    if let Some(syms) = doc.first_child_element(root, cs.symbols) {
        for &s in doc.children(syms) {
            if doc.data(s).label() != cs.sym {
                continue;
            }
            let kind = match get_attr(s, cs.a_kind).as_deref() {
                Some("e") => LabelKind::Element,
                Some("a") => LabelKind::Attribute,
                Some("b") => LabelKind::Builtin,
                other => return Err(NatixError::Catalog(format!("bad symbol kind {other:?}"))),
            };
            let name = get_attr(s, cs.a_name)
                .ok_or_else(|| NatixError::Catalog("symbol without name".into()))?;
            rows.push((kind, name));
        }
    }
    *repo.symbols_mut() = SymbolTable::from_rows(&rows);

    // 2. Split matrix.
    if let Some(m) = doc.first_child_element(root, cs.matrix) {
        let default = behaviour_from(get_attr(m, cs.a_default).as_deref().unwrap_or("other"))?;
        let mut matrix = SplitMatrix::with_default(default);
        let symbols = repo.symbols();
        for &r in doc.children(m) {
            if doc.data(r).label() != cs.rule {
                continue;
            }
            let p = get_attr(r, cs.a_parent)
                .and_then(|n| symbols.lookup_element(&n))
                .ok_or_else(|| NatixError::Catalog("rule parent unknown".into()))?;
            let c = get_attr(r, cs.a_child)
                .and_then(|n| symbols.lookup_element(&n))
                .ok_or_else(|| NatixError::Catalog("rule child unknown".into()))?;
            let v = behaviour_from(&get_attr(r, cs.a_value).unwrap_or_default())?;
            matrix.set(p, c, v);
        }
        drop(symbols);
        repo.tree.set_matrix(matrix);
    }

    // 3. DTDs.
    if let Some(dtds) = doc.first_child_element(root, cs.dtds) {
        for &d in doc.children(dtds) {
            if doc.data(d).label() != cs.dtd {
                continue;
            }
            let name = get_attr(d, cs.a_name)
                .ok_or_else(|| NatixError::Catalog("dtd without name".into()))?;
            let text = doc.text_content(d);
            repo.schema_mut().register_dtd(&name, &text)?;
        }
    }

    // 4. Documents (maps rebuilt eagerly so node ids are deterministic).
    if let Some(docs) = doc.first_child_element(root, cs.documents) {
        for &d in doc.children(docs) {
            if doc.data(d).label() != cs.doc {
                continue;
            }
            let name = get_attr(d, cs.a_name)
                .ok_or_else(|| NatixError::Catalog("document without name".into()))?;
            let page: u32 = get_attr(d, cs.a_page)
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| NatixError::Catalog("bad document page".into()))?;
            let slot: u16 = get_attr(d, cs.a_slot)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| NatixError::Catalog("bad document slot".into()))?;
            let state = DocState::new(name, Rid::new(page, slot));
            let id = repo.register(state);
            repo.rebuild_map(id)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;

    #[test]
    fn catalog_symbols_are_stable() {
        let a = CatalogSymbols::new();
        let b = CatalogSymbols::new();
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.a_value, b.a_value);
        // Fixed ids: user labels must never collide with these.
        assert_eq!(a.catalog, natix_xml::symbols::FIRST_USER_LABEL);
    }

    #[test]
    fn save_load_roundtrip_in_file() {
        let dir = std::env::temp_dir().join(format!("natix-cat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.natix");
        let doc_xml = "<PLAY><TITLE>Test</TITLE><ACT><SCENE><SPEECH>\
                       <SPEAKER>A</SPEAKER><LINE>line one</LINE></SPEECH></SCENE></ACT></PLAY>";
        {
            let repo = Repository::create_file(&path, RepositoryOptions::default()).unwrap();
            repo.put_xml("t1", doc_xml).unwrap();
            repo.put_xml("t2", "<a><b x=\"1\">v</b></a>").unwrap();
            repo.set_matrix_rule("SPEECH", "SPEAKER", SplitBehaviour::KeepWithParent);
            repo.schema_mut()
                .register_dtd("play", "<!ELEMENT PLAY (TITLE, ACT+)>")
                .unwrap();
            repo.checkpoint().unwrap();
        }
        {
            let repo = Repository::open_file(&path, RepositoryOptions::default()).unwrap();
            assert_eq!(repo.document_names(), vec!["t1", "t2"]);
            assert_eq!(repo.get_xml("t1").unwrap(), doc_xml);
            assert_eq!(repo.get_xml("t2").unwrap(), "<a><b x=\"1\">v</b></a>");
            // Matrix rule survived.
            let p = repo.symbols().lookup_element("SPEECH").unwrap();
            let c = repo.symbols().lookup_element("SPEAKER").unwrap();
            assert_eq!(
                repo.tree_store().matrix().get(p, c),
                SplitBehaviour::KeepWithParent
            );
            // DTD survived.
            assert!(repo.schema().dtd("play").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopened_documents_are_editable() {
        let dir = std::env::temp_dir().join(format!("natix-cat2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repo.natix");
        {
            let repo = Repository::create_file(&path, RepositoryOptions::default()).unwrap();
            repo.put_xml("d", "<list><item>one</item></list>").unwrap();
            repo.checkpoint().unwrap();
        }
        {
            let repo = Repository::open_file(&path, RepositoryOptions::default()).unwrap();
            let id = repo.doc_id("d").unwrap();
            let root = repo.root(id).unwrap();
            let item2 = repo
                .insert_element(id, root, natix_tree::InsertPos::Last, "item")
                .unwrap();
            repo.insert_text(id, item2, natix_tree::InsertPos::Last, "two")
                .unwrap();
            assert_eq!(
                repo.get_xml("d").unwrap(),
                "<list><item>one</item><item>two</item></list>"
            );
            repo.checkpoint().unwrap();
        }
        {
            let repo = Repository::open_file(&path, RepositoryOptions::default()).unwrap();
            assert_eq!(
                repo.get_xml("d").unwrap(),
                "<list><item>one</item><item>two</item></list>"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
