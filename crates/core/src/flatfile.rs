//! The flat-stream baseline (§1, first category of the taxonomy).
//!
//! > **Flat Streams**: trees are serialized into byte streams, for example
//! > by means of a markup language. [...] This method is very fast when
//! > storing or retrieving whole documents or big continuous parts of
//! > documents. Accessing the documents' structure is only possible
//! > through parsing.
//!
//! [`FlatStore`] stores serialized XML as a chain of plain pages — a
//! minimal BLOB manager that splits "at arbitrary byte positions" (§2.3.3,
//! exactly what NATIX's semantic splits avoid). It exists as a comparison
//! point: whole-document reads are sequential and fast, any structural
//! access needs a full parse, and any update rewrites the whole stream.

use natix_storage::{PageId, INVALID_PAGE};
use natix_storage::{PageKind, PAGE_HEADER_SIZE};
use natix_xml::{Document, ParserOptions, SymbolTable};

use crate::error::{NatixError, NatixResult};
use crate::repository::Repository;

/// Per-page payload layout: `u32 len` at offset 16, bytes from offset 20.
const LEN_OFF: usize = PAGE_HEADER_SIZE;
const DATA_OFF: usize = PAGE_HEADER_SIZE + 4;

/// A named byte-stream (flat file) store inside a repository's flat
/// segment. The directory is in-memory; the baseline exists for
/// measurements, not durability.
pub struct FlatStore {
    docs: std::collections::HashMap<String, (PageId, usize)>,
}

impl FlatStore {
    /// Creates an empty flat store.
    pub fn new() -> FlatStore {
        FlatStore {
            docs: std::collections::HashMap::new(),
        }
    }

    /// Stores `text` under `name`, replacing any previous stream.
    pub fn put(&mut self, repo: &Repository, name: &str, text: &str) -> NatixResult<()> {
        if self.docs.contains_key(name) {
            self.delete(repo, name)?;
        }
        let seg = repo.flat_segment();
        let sm = repo.storage();
        let chunk = sm.page_size() - DATA_OFF;
        let bytes = text.as_bytes();
        let mut first = INVALID_PAGE;
        let mut prev: Option<PageId> = None;
        for piece in bytes.chunks(chunk.max(1)) {
            let page = sm.allocate_page(seg, PageKind::Plain)?;
            {
                let pin = sm.pin(page)?;
                let mut buf = pin.write();
                buf.format(PageKind::Plain);
                buf.write_u32(LEN_OFF, piece.len() as u32);
                buf.bytes_mut()[DATA_OFF..DATA_OFF + piece.len()].copy_from_slice(piece);
            }
            if let Some(p) = prev {
                let pin = sm.pin(p)?;
                pin.write().set_next_page(page);
            } else {
                first = page;
            }
            prev = Some(page);
        }
        if bytes.is_empty() {
            first = sm.allocate_page(seg, PageKind::Plain)?;
            let pin = sm.pin(first)?;
            let mut buf = pin.write();
            buf.format(PageKind::Plain);
            buf.write_u32(LEN_OFF, 0);
        }
        self.docs.insert(name.to_string(), (first, bytes.len()));
        Ok(())
    }

    /// Reads the whole stream back (sequential page chain walk).
    pub fn get(&self, repo: &Repository, name: &str) -> NatixResult<String> {
        let &(first, len) = self
            .docs
            .get(name)
            .ok_or_else(|| NatixError::NoSuchDocument(name.to_string()))?;
        let sm = repo.storage();
        let mut out = Vec::with_capacity(len);
        let mut page = first;
        while page != INVALID_PAGE {
            let pin = sm.pin(page)?;
            let buf = pin.read();
            let n = buf.read_u32(LEN_OFF) as usize;
            out.extend_from_slice(&buf.bytes()[DATA_OFF..DATA_OFF + n]);
            page = buf.next_page();
        }
        String::from_utf8(out).map_err(|_| NatixError::Catalog("flat stream not UTF-8".into()))
    }

    /// Structural access: "only possible through parsing" — parse the
    /// whole stream into a logical document.
    pub fn parse(
        &self,
        repo: &Repository,
        name: &str,
        symbols: &mut SymbolTable,
    ) -> NatixResult<Document> {
        let text = self.get(repo, name)?;
        Ok(natix_xml::parse_document(
            &text,
            symbols,
            ParserOptions::default(),
        )?)
    }

    /// A "node update" in a flat stream: parse, let the caller mutate the
    /// document, then rewrite the whole stream. The cost asymmetry against
    /// the native store is the point of the baseline.
    pub fn update_with(
        &mut self,
        repo: &Repository,
        name: &str,
        symbols: &mut SymbolTable,
        mutate: impl FnOnce(&mut Document),
    ) -> NatixResult<()> {
        let mut doc = self.parse(repo, name, symbols)?;
        mutate(&mut doc);
        let text = natix_xml::write_document(&doc, symbols, natix_xml::WriteOptions::compact())?;
        self.put(repo, name, &text)
    }

    /// Deletes a stream, returning its pages to the free pool.
    pub fn delete(&mut self, repo: &Repository, name: &str) -> NatixResult<()> {
        let (first, _) = self
            .docs
            .remove(name)
            .ok_or_else(|| NatixError::NoSuchDocument(name.to_string()))?;
        let sm = repo.storage();
        let seg = repo.flat_segment();
        let mut page = first;
        while page != INVALID_PAGE {
            let next = {
                let pin = sm.pin(page)?;
                let next = pin.read().next_page();
                next
            };
            sm.free_page(seg, page)?;
            page = next;
        }
        Ok(())
    }

    /// Stored names.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.docs.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

impl Default for FlatStore {
    fn default() -> Self {
        FlatStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{Repository, RepositoryOptions};
    use natix_xml::NodeData;

    fn repo() -> Repository {
        Repository::create_in_memory(RepositoryOptions {
            page_size: 512,
            ..RepositoryOptions::default()
        })
        .unwrap()
    }

    #[test]
    fn put_get_roundtrip_multi_page() {
        let repo = repo();
        let mut flat = FlatStore::new();
        let text = "<doc>".to_string() + &"<x>chunky content</x>".repeat(200) + "</doc>";
        flat.put(&repo, "d", &text).unwrap();
        assert_eq!(flat.get(&repo, "d").unwrap(), text);
    }

    #[test]
    fn parse_gives_structure() {
        let repo = repo();
        let mut flat = FlatStore::new();
        flat.put(&repo, "d", "<a><b>x</b><b>y</b></a>").unwrap();
        let mut syms = SymbolTable::new();
        let doc = flat.parse(&repo, "d", &mut syms).unwrap();
        assert_eq!(doc.children(doc.root()).len(), 2);
    }

    #[test]
    fn update_rewrites_stream() {
        let repo = repo();
        let mut flat = FlatStore::new();
        flat.put(&repo, "d", "<a><b>x</b></a>").unwrap();
        let mut syms = SymbolTable::new();
        flat.update_with(&repo, "d", &mut syms, |doc| {
            let root = doc.root();
            doc.add_child(root, NodeData::text("tail"));
        })
        .unwrap();
        assert_eq!(flat.get(&repo, "d").unwrap(), "<a><b>x</b>tail</a>");
    }

    #[test]
    fn delete_recycles_pages() {
        let repo = repo();
        let mut flat = FlatStore::new();
        let text = "x".repeat(5000);
        flat.put(&repo, "d", &format!("<a>{text}</a>")).unwrap();
        let before = repo.storage().allocated_pages();
        flat.delete(&repo, "d").unwrap();
        assert!(flat.get(&repo, "d").is_err());
        // Re-inserting reuses the freed chain instead of growing the file.
        flat.put(&repo, "d2", &format!("<a>{text}</a>")).unwrap();
        assert_eq!(repo.storage().allocated_pages(), before);
    }

    #[test]
    fn empty_and_tiny_streams() {
        let repo = repo();
        let mut flat = FlatStore::new();
        flat.put(&repo, "e", "").unwrap();
        assert_eq!(flat.get(&repo, "e").unwrap(), "");
        flat.put(&repo, "t", "<t/>").unwrap();
        assert_eq!(flat.get(&repo, "t").unwrap(), "<t/>");
        assert_eq!(flat.names(), vec!["e", "t"]);
    }
}
