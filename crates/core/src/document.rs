//! The document manager (§2.1).
//!
//! > The document manager allows application access to documents on node
//! > and document granularity. It checks schema consistency, called
//! > document validation in the XML world, performs necessary index
//! > updates and integrates document fragments from other sources into a
//! > single document view for the user.
//!
//! Node-granularity access uses stable **logical node ids**: records are
//! rewritten wholesale by the tree storage manager, so physical
//! `(rid, index)` pointers are volatile. The document manager keeps a
//! bidirectional map `NodeId ↔ NodePtr`, updated from the relocation
//! events every structural operation returns. The on-disk format carries
//! no logical ids (keeping the paper's space numbers intact); the map is
//! rebuilt by one traversal when a persisted document is first touched
//! after re-opening.
//!
//! The id map lives behind a per-document mutex inside [`DocState`]:
//! read-only traversal (`children`, `parent`) binds ids lazily through
//! `&self`, so concurrent readers of different documents — and readers
//! running alongside ingestion of other documents — never serialize
//! behind a repository-wide writer lock.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use natix_storage::Rid;
use natix_tree::{BulkStats, InsertPos, NewNode, NodePtr, OpResult, TreeStore, VisitEvent};
use natix_xml::{Document, LiteralValue, NodeData, SymbolTable, LABEL_TEXT};

use crate::error::{NatixError, NatixResult};
use crate::path_summary::{PathSummary, SummaryBuilder, SummaryDelta};
use crate::repository::Repository;

/// Identifies a document within a repository.
pub type DocId = u32;

/// Stable logical node id within a document.
pub type NodeId = u64;

/// What kind of logical node an id refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Element,
    Literal,
}

/// Summary of a logical node, resolved against the symbol table.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSummary {
    pub kind: NodeKind,
    /// Label name (tag, attribute name, or `#text`/`#comment`/`#pi`).
    pub label: String,
    /// Literal value as text (`None` for elements).
    pub text: Option<String>,
}

/// The lazy `NodeId ↔ NodePtr` map of one document.
struct NodeMap {
    map: HashMap<NodeId, NodePtr>,
    rev: HashMap<NodePtr, NodeId>,
    next_id: NodeId,
}

/// The document's root record RID, versioned by publish epoch: the root
/// moves on root splits, and a snapshot reader must start from the root
/// of *its* epoch — the current RID may belong to an operation published
/// after the reader pinned (whose record images the reader must not mix
/// with its snapshot). Old entries carry the epoch from which their
/// replacement is current; `dead_from` marks document deletion.
struct RootSlot {
    current: Rid,
    /// `(valid_until, rid)` — readers pinned below `valid_until` start at
    /// `rid`. Ascending; pruned against the reader floor on every publish.
    old: Vec<(u64, Rid)>,
    /// Epoch at which the document was registered: readers pinned below
    /// it resolve to "no such document" — a snapshot predating the
    /// document must not see it, even if it re-resolves the name after a
    /// deleted predecessor's slot was reused.
    born_at: u64,
    dead_from: Option<u64>,
}

/// Per-document state. Shared as `Arc<DocState>`; the volatile pieces
/// (the id map and the epoch-versioned root slot) sit behind their own
/// mutexes so readers take `&self`.
pub(crate) struct DocState {
    pub name: String,
    root: Mutex<RootSlot>,
    /// The root's logical id — the first id handed out, always 0.
    pub root_id: NodeId,
    ids: Mutex<NodeMap>,
    /// Serialises structural edits of this document: writers of one
    /// document go one at a time (as in the paper), writers of different
    /// documents — and any number of snapshot readers — do not contend on
    /// it. First element of the writer's acquisition order (see the lock
    /// hierarchy in [`crate::repository`]).
    pub(crate) edit_latch: Mutex<()>,
}

impl DocState {
    pub(crate) fn new(name: String, root_rid: Rid) -> DocState {
        let root_ptr = NodePtr::new(root_rid, 0);
        let mut ids = NodeMap {
            map: HashMap::new(),
            rev: HashMap::new(),
            next_id: 0,
        };
        let root_id = fresh(&mut ids, root_ptr);
        DocState {
            name,
            root: Mutex::with_rank(
                &parking_lot::rank::DOC_ROOT,
                RootSlot {
                    current: root_rid,
                    old: Vec::new(),
                    born_at: 0,
                    dead_from: None,
                },
            ),
            root_id,
            ids: Mutex::with_rank(&parking_lot::rank::DOC_IDS, ids),
            edit_latch: Mutex::with_rank(&parking_lot::rank::DOC_EDIT_LATCH, ()),
        }
    }

    /// Current RID of the record holding the document root (writers and
    /// unpinned readers).
    pub(crate) fn root_rid(&self) -> Rid {
        self.root.lock().current
    }

    /// Root RID as of `epoch`; `None` when the document did not exist at
    /// that epoch (deleted at or before it, or registered after it).
    pub(crate) fn root_rid_at(&self, epoch: u64) -> Option<Rid> {
        let r = self.root.lock();
        if epoch < r.born_at || r.dead_from.is_some_and(|d| epoch >= d) {
            return None;
        }
        // natix-model fail point: reverting the epoch re-check hands a
        // pinned reader the *current* root — possibly published after the
        // reader pinned, whose record images belong to a later epoch. The
        // model suite's root-publish scenario catches the resulting
        // snapshot instability.
        if parking_lot::fail_point("root-slot.epoch-recheck") {
            return Some(r.current);
        }
        Some(
            r.old
                .iter()
                .find(|&&(valid_until, _)| valid_until > epoch)
                .map(|&(_, rid)| rid)
                .unwrap_or(r.current),
        )
    }

    /// Publish hook of a root move: runs inside the version store's
    /// publish critical section, so the new root becomes current exactly
    /// when the moving operation's epoch does. Readers pinned below
    /// `epoch` keep starting from `old` (whose pre-image the operation
    /// deposited).
    fn publish_root_move(&self, old: Rid, new: Rid, epoch: u64, floor: u64) {
        let mut r = self.root.lock();
        if r.current == old {
            r.old.push((epoch, old));
            r.current = new;
        }
        r.old.retain(|&(valid_until, _)| valid_until > floor);
    }

    /// Publish hook of a document deletion: readers pinned below `epoch`
    /// keep reading the deposited records, later ones get "no such
    /// document".
    fn retire(&self, epoch: u64, floor: u64) {
        let mut r = self.root.lock();
        r.dead_from = Some(epoch);
        r.old.retain(|&(valid_until, _)| valid_until > floor);
    }

    /// Immediate root swap for unpublished paths (per-node loads of
    /// not-yet-registered documents, reopened catalogs).
    fn set_root_now(&self, old: Rid, new: Rid) {
        let mut r = self.root.lock();
        if r.current == old {
            r.current = new;
        }
    }

    /// Stamps the registration epoch (called once, by
    /// [`Repository::register`]).
    pub(crate) fn set_born(&self, epoch: u64) {
        self.root.lock().born_at = epoch;
    }

    /// True once the document has been deleted (its publish hook ran).
    pub(crate) fn is_dead(&self) -> bool {
        self.root.lock().dead_from.is_some()
    }

    /// Resolves a logical id to its current physical pointer.
    pub(crate) fn resolve(&self, id: NodeId) -> Option<NodePtr> {
        self.ids.lock().map.get(&id).copied()
    }

    /// The id already bound to `ptr`, if any (no binding).
    pub(crate) fn lookup_ptr(&self, ptr: NodePtr) -> Option<NodeId> {
        self.ids.lock().rev.get(&ptr).copied()
    }

    /// The id bound to `ptr`, binding a fresh one if it was never seen —
    /// the lazy-id path of read-only navigation.
    pub(crate) fn bind(&self, ptr: NodePtr) -> NodeId {
        let mut ids = self.ids.lock();
        match ids.rev.get(&ptr) {
            Some(&id) => id,
            None => fresh(&mut ids, ptr),
        }
    }

    /// Binds a fresh id to `ptr` (insertion results).
    pub(crate) fn fresh_id(&self, ptr: NodePtr) -> NodeId {
        fresh(&mut self.ids.lock(), ptr)
    }

    /// Applies relocation events (two-phase so intra-record shifts cannot
    /// collide). Does not touch the root slot — published edits defer the
    /// root move to the publish hook, unpublished paths use
    /// [`apply`](Self::apply).
    pub(crate) fn apply_relocations(&self, res: &OpResult) {
        let mut ids = self.ids.lock();
        let moved: Vec<(Option<NodeId>, NodePtr)> = res
            .relocations
            .iter()
            .map(|r| (ids.rev.remove(&r.old), r.new))
            .collect();
        for (id, new) in moved {
            if let Some(i) = id {
                ids.map.insert(i, new);
                ids.rev.insert(new, i);
            }
        }
    }

    /// Applies an operation result with an *immediate* root swap — only
    /// for documents no reader can see yet (per-node loads before
    /// registration). Published edits go through
    /// [`Repository::finish_edit`].
    pub(crate) fn apply(&self, res: &OpResult) {
        self.apply_relocations(res);
        if let Some((old, new)) = res.root_moved {
            self.set_root_now(old, new);
        }
    }

    /// Drops the subtree's ids (before applying relocations of the same
    /// operation — survivors may move into freed addresses).
    pub(crate) fn purge(&self, victims: &[NodeId]) {
        let mut ids = self.ids.lock();
        for id in victims {
            if let Some(p) = ids.map.remove(id) {
                ids.rev.remove(&p);
            }
        }
    }

    /// Rebinds the whole map to `ptrs` in order, ids starting at 0 (used
    /// when a persisted document is reopened).
    pub(crate) fn reset_map(&self, ptrs: &[NodePtr]) {
        let mut ids = self.ids.lock();
        ids.map.clear();
        ids.rev.clear();
        ids.next_id = 0;
        for &ptr in ptrs {
            fresh(&mut ids, ptr);
        }
    }
}

fn fresh(ids: &mut NodeMap, ptr: NodePtr) -> NodeId {
    let id = ids.next_id;
    ids.next_id += 1;
    ids.map.insert(id, ptr);
    ids.rev.insert(ptr, id);
    id
}

/// How much text goes into one literal node before the document manager
/// chunks it: the tree layer cannot split a single node across records, so
/// long text becomes consecutive literal siblings (serialisation-identical
/// for XML character data).
pub(crate) fn chunk_limit(net_capacity: usize) -> usize {
    (net_capacity / 2).max(64)
}

/// What a structural edit did to the set of indexed (facade) nodes —
/// drives attached-index maintenance (see
/// [`crate::index::LabelIndex::apply_relocations`]).
#[derive(Clone, Copy, PartialEq, Eq)]
enum EditImpact {
    /// Nodes were added or removed: per-label occurrence numbering
    /// shifted, the document's index entries go stale.
    NodeSet,
    /// Only literal values changed (plus any record moves/splits/
    /// normalizations they caused): the indexed node set is intact and
    /// relocated entries can be patched in place.
    Values,
}

impl Repository {
    /// Completes one published structural edit: applies relocation events
    /// to the id map immediately (the writer needs them for its next
    /// operation) and schedules the root move, if any, for the ambient
    /// write operation's publish point — the root RID must switch
    /// *atomically with the epoch*, or a reader could pair a fresh epoch
    /// with the stale root (or vice versa) and walk a mixed record graph.
    /// Rejects edits of a deleted document. Called after acquiring the
    /// edit latch: the deleting operation retires the document (publish
    /// hook) *before* releasing its latch, so this check is race-free.
    fn check_live(&self, state: &DocState) -> NatixResult<()> {
        if state.is_dead() {
            return Err(NatixError::NoSuchDocument(state.name.clone()));
        }
        Ok(())
    }

    fn finish_edit(&self, state: &Arc<DocState>, res: &OpResult) {
        self.finish_edit_impact(state, res, EditImpact::NodeSet);
    }

    /// [`finish_edit`](Self::finish_edit) with an explicit index impact:
    /// `Values` tells an attached [`crate::index::LabelIndex`] that the
    /// edit introduced/removed no indexed nodes, so its entries are
    /// patched from the relocation events instead of invalidating the
    /// document.
    fn finish_edit_impact(&self, state: &Arc<DocState>, res: &OpResult, impact: EditImpact) {
        state.apply_relocations(res);
        if let Some((old, new)) = res.root_moved {
            let st = Arc::clone(state);
            let deferred = self
                .tree
                .versions()
                .defer_until_publish(move |epoch, floor| {
                    st.publish_root_move(old, new, epoch, floor)
                });
            if !deferred {
                state.set_root_now(old, new);
            }
        }
        let attached = self.attached_index.lock().clone();
        if let Some(index) = attached {
            if let Ok(doc) = self.doc_id(&state.name) {
                let mut index = index.lock();
                match impact {
                    EditImpact::NodeSet => index.mark_stale(doc),
                    EditImpact::Values => {
                        // Best effort: a failed patch falls back to the
                        // rescan the patch exists to avoid.
                        if index
                            .apply_relocations(self, doc, &res.relocations)
                            .is_err()
                        {
                            index.mark_stale(doc);
                        }
                    }
                }
            }
        }
    }

    /// Binds logical node ids for pointers discovered under the calling
    /// thread's read snapshot, **validated against the version store under
    /// the document's edit latch**: a reader that raced a structural edit
    /// may hold addresses the edit has already superseded — node identity
    /// at such an address belongs to the reader's epoch, not to the live
    /// record, and binding it would poison the id map (a later writer's
    /// relocations only track entries that were current when it ran). The
    /// latch makes {validate, insert} atomic against writers of this
    /// document; a superseded address surfaces as
    /// [`NatixError::SnapshotRace`] instead of a silently wrong id.
    /// Without an ambient snapshot the bind is unvalidated (nothing can
    /// have raced a read that has no epoch).
    pub(crate) fn bind_snapshot(
        &self,
        state: &DocState,
        ptrs: impl IntoIterator<Item = NodePtr>,
    ) -> NatixResult<Vec<NodeId>> {
        let Some(epoch) = self.tree.ambient_read_epoch() else {
            return Ok(ptrs.into_iter().map(|p| state.bind(p)).collect());
        };
        let _latch = state.edit_latch.lock();
        let versions = self.tree.versions();
        let mut out = Vec::new();
        for p in ptrs {
            if versions.lookup(p.rid, epoch).is_some() {
                return Err(NatixError::SnapshotRace(state.name.clone()));
            }
            out.push(state.bind(p));
        }
        Ok(out)
    }

    /// Runs a structural edit, normalizing depth-aware-packed clusters on
    /// demand: a bulkloaded deep document stores late children in
    /// continuation-group records whose layout in-place edits cannot
    /// preserve, so the tree layer reports [`TreeError::PackedRecord`];
    /// the cluster is then rewritten into plain records (relocations
    /// applied to the id map) and the edit retried with fresh pointers —
    /// which is why `f` must re-resolve its node ids on every attempt.
    ///
    /// [`TreeError::PackedRecord`]: natix_tree::TreeError::PackedRecord
    fn edit_with_normalize<T>(
        &self,
        state: &Arc<DocState>,
        mut f: impl FnMut(&Self) -> NatixResult<T>,
    ) -> NatixResult<T> {
        // Each round eliminates the packed cluster it tripped over; a
        // bounded retry count turns a (logically impossible) livelock into
        // a clean error.
        for _ in 0..64 {
            match f(self) {
                Err(NatixError::Tree(natix_tree::TreeError::PackedRecord(rid))) => {
                    let res = self.tree.normalize_packed(rid)?;
                    // Normalization is a pure re-clustering: relocations
                    // only, no logical nodes added or removed.
                    self.finish_edit_impact(state, &res, EditImpact::Values);
                }
                other => return other,
            }
        }
        Err(NatixError::Validation(
            "structural edit kept hitting packed records".into(),
        ))
    }

    // ==================================================================
    // Document granularity.
    // ==================================================================

    /// Stores a logical document under `name` through the streaming
    /// bulkloader: records are built bottom-up and written once each,
    /// instead of rewriting the enclosing record for every node (see
    /// [`natix_tree::bulkload`]). [`put_document_per_node`] keeps the
    /// node-by-node path as the differential-testing oracle.
    ///
    /// [`put_document_per_node`]: Self::put_document_per_node
    pub fn put_document(&self, name: &str, doc: &Document) -> NatixResult<DocId> {
        self.claim_name(name)?;
        let load = || -> NatixResult<BulkStats> {
            if !matches!(doc.data(doc.root()), NodeData::Element(_)) {
                return Err(NatixError::Validation(
                    "document root must be an element".into(),
                ));
            }
            let limit = chunk_limit(self.tree.net_capacity());
            Ok(natix_tree::bulkload_document(&self.tree, doc, Some(limit))?)
        };
        match load() {
            // Node ids are handed out lazily as the document is navigated
            // (`children`/`parent` bind unseen pointers); only the root is
            // bound eagerly. The loader's operation has published (and
            // logged) by now, so registration — and then the durability
            // gate — come strictly after the content commit.
            Ok(stats) => {
                let id = self.register(DocState::new(name.to_string(), stats.root_rid));
                self.summaries
                    .install(id, Arc::new(self.dom_summary(doc, stats.records)), 0);
                self.durable_gate()?;
                Ok(id)
            }
            Err(e) => {
                self.abandon_claim(name);
                Err(e)
            }
        }
    }

    /// Stores a logical document by inserting one node at a time through
    /// the incremental tree-growth procedure — the pre-bulkloader storage
    /// path, kept as the oracle for differential tests and benchmarks of
    /// the bulkloader.
    pub fn put_document_per_node(&self, name: &str, doc: &Document) -> NatixResult<DocId> {
        self.claim_name(name)?;
        match self.per_node_load(name, doc) {
            Ok(state) => {
                let id = self.register(state);
                self.durable_gate()?;
                Ok(id)
            }
            Err(e) => {
                self.abandon_claim(name);
                Err(e)
            }
        }
    }

    fn per_node_load(&self, name: &str, doc: &Document) -> NatixResult<DocState> {
        let NodeData::Element(root_label) = doc.data(doc.root()) else {
            return Err(NatixError::Validation(
                "document root must be an element".into(),
            ));
        };
        // One write operation for the whole load: the version layer logs
        // the created records, and the publish on return commits them.
        let _op = self.tree.begin_write();
        let root_rid = self.tree.create_tree(*root_label)?;
        let state = DocState::new(name.to_string(), root_rid);
        let limit = chunk_limit(self.tree.net_capacity());
        // Pre-order walk, inserting every node as the last child of its
        // (already inserted) parent.
        let mut shadow_ids: HashMap<natix_xml::NodeIdx, NodeId> = HashMap::new();
        shadow_ids.insert(doc.root(), state.root_id);
        for n in doc.pre_order() {
            let Some(parent) = doc.parent(n) else {
                continue;
            };
            let parent_id = shadow_ids[&parent];
            let parent_ptr = state.resolve(parent_id).expect("parent id is bound");
            match doc.data(n) {
                NodeData::Element(label) => {
                    let res =
                        self.tree
                            .insert(parent_ptr, InsertPos::Last, *label, NewNode::Element)?;
                    state.apply(&res);
                    let id = state.fresh_id(res.new_node.expect("insert yields node"));
                    shadow_ids.insert(n, id);
                }
                NodeData::Literal { label, value } => {
                    // Long character data is chunked into sibling literals
                    // on UTF-8 boundaries; other labels (attributes,
                    // comments, PIs) stay whole — splitting them would
                    // change the serialisation.
                    let texts: Vec<LiteralValue> = match value {
                        LiteralValue::String(s) if s.len() > limit && *label == LABEL_TEXT => {
                            natix_xml::chunk_str(s, limit)
                                .map(|c| LiteralValue::String(c.to_owned()))
                                .collect()
                        }
                        other => vec![other.clone()],
                    };
                    for v in texts {
                        // Re-resolve the parent for every chunk: inserting
                        // the previous chunk may have split or moved the
                        // parent's record, invalidating the old pointer.
                        let ptr = state.resolve(parent_id).expect("parent id is bound");
                        let res =
                            self.tree
                                .insert(ptr, InsertPos::Last, *label, NewNode::Literal(v))?;
                        state.apply(&res);
                        let id = state.fresh_id(res.new_node.expect("insert yields node"));
                        shadow_ids.insert(n, id);
                    }
                }
            }
        }
        Ok(state)
    }

    /// Builds a [`PathSummary`] from a logical document, mirroring the
    /// bulkloader's storage decisions: long character data counts once
    /// per stored chunk, so the summary equals what a walk of the stored
    /// tree would produce.
    fn dom_summary(&self, doc: &Document, records: u64) -> PathSummary {
        enum Walk {
            Enter(natix_xml::NodeIdx),
            Leave,
        }
        let limit = chunk_limit(self.tree.net_capacity());
        let mut b = SummaryBuilder::new();
        let mut stack = vec![Walk::Enter(doc.root())];
        while let Some(w) = stack.pop() {
            match w {
                Walk::Leave => b.end_element(),
                Walk::Enter(n) => match doc.data(n) {
                    NodeData::Element(label) => {
                        b.start_element(*label);
                        stack.push(Walk::Leave);
                        for &c in doc.children(n).iter().rev() {
                            stack.push(Walk::Enter(c));
                        }
                    }
                    NodeData::Literal { label, value } => {
                        let chunks = match value {
                            LiteralValue::String(s) if s.len() > limit && *label == LABEL_TEXT => {
                                natix_xml::chunk_str(s, limit).count()
                            }
                            _ => 1,
                        };
                        for _ in 0..chunks {
                            b.literal(*label);
                        }
                    }
                },
            }
        }
        b.finish(records)
    }

    /// Schedules a path-summary increment for a node just inserted at
    /// `new_ptr`, to apply atomically when the surrounding write
    /// operation publishes. Must be called inside the write operation
    /// (after the edit succeeded) so the label path reads the writer's
    /// own, not-yet-published state. If the update cannot be deferred the
    /// summary is dropped — a later query rebuilds it lazily.
    fn note_summary_insert(&self, doc: DocId, new_ptr: NodePtr, literal: bool) {
        if !self.summaries.has_slot(doc) {
            return;
        }
        match self.tree.label_path(new_ptr) {
            Ok(path) => {
                let store = Arc::clone(&self.summaries);
                let delta = SummaryDelta::Insert {
                    path,
                    literal,
                    count: 1,
                };
                let deferred = self
                    .tree
                    .versions()
                    .defer_until_publish(move |epoch, floor| {
                        store.apply_delta(doc, &delta, epoch, floor);
                    });
                if !deferred {
                    self.summaries.remove(doc);
                }
            }
            Err(_) => {
                // The new node's label path could not be read; mark the
                // summary stale from this edit's epoch on — readers pinned
                // before it keep their versions.
                let store = Arc::clone(&self.summaries);
                let deferred = self
                    .tree
                    .versions()
                    .defer_until_publish(move |epoch, floor| store.invalidate(doc, epoch, floor));
                if !deferred {
                    self.summaries.remove(doc);
                }
            }
        }
    }

    /// Schedules the path-summary decrements of a just-deleted subtree
    /// (per-path node counts collected by the delete's own traversal).
    /// Same deferral protocol as [`Self::note_summary_insert`].
    fn note_summary_remove(&self, doc: DocId, decrements: HashMap<Vec<natix_xml::LabelId>, u64>) {
        if decrements.is_empty() || !self.summaries.has_slot(doc) {
            return;
        }
        let store = Arc::clone(&self.summaries);
        let delta = SummaryDelta::Remove {
            decrements: decrements.into_iter().collect(),
        };
        let deferred = self
            .tree
            .versions()
            .defer_until_publish(move |epoch, floor| {
                store.apply_delta(doc, &delta, epoch, floor);
            });
        if !deferred {
            self.summaries.remove(doc);
        }
    }

    /// Parses and stores XML text.
    pub fn put_xml(&self, name: &str, xml: &str) -> NatixResult<DocId> {
        let options = self.parser_options();
        let doc = {
            let mut symbols = self.symbols.write();
            natix_xml::parse_document(xml, &mut symbols, options)?
        };
        self.put_document(name, &doc)
    }

    /// Streams XML text straight into storage, one parse event at a time,
    /// without materialising a DOM — the paper's storage operation ("we
    /// used an XML parser ... and inserted the document tree", §4.3).
    ///
    /// Parse events feed the streaming bulkloader directly: records are
    /// assembled bottom-up, each page is written once via the append fast
    /// path, and peak memory is the right spine of open subtrees (bounded
    /// by the page capacity times the element depth), independent of
    /// document size — node ids are bound lazily on navigation, never
    /// materialised for the whole document. A failed load deletes every
    /// record it had already flushed and releases its name claim.
    pub fn put_xml_streaming(&self, name: &str, xml: &str) -> NatixResult<DocId> {
        // Takes `&self`: the load is one write operation of the
        // record-version layer, so queries — of other documents *and of
        // this name, which simply does not exist until the publish point*
        // — run concurrently with the ingestion and never observe a
        // half-loaded document. Same claim → load → publish protocol as
        // one concurrent ingestion job, over the main document store.
        self.ingest_one(&self.tree, name, xml)
    }

    /// The shared streaming-load engine: parses `xml` and feeds the event
    /// stream to a bulkloader over `tree` (the main document store, or a
    /// per-worker ingestion store — see [`Self::put_documents_parallel`]).
    /// Labels are interned through the read-locked fast path, so any
    /// number of these can run concurrently. On failure every flushed
    /// record has been rolled back; registry bookkeeping is the caller's.
    /// Returns the bulkload stats together with a [`PathSummary`] built
    /// from the same event stream — one literal per *stored* node, so
    /// chunked long text counts once per chunk, exactly as a walk of the
    /// stored tree would count it.
    pub(crate) fn stream_load(
        &self,
        tree: &TreeStore,
        xml: &str,
    ) -> NatixResult<(BulkStats, PathSummary)> {
        use natix_xml::{LabelKind, PullParser, XmlEvent};
        let options = self.parser_options();
        let limit = chunk_limit(tree.net_capacity());
        let mut parser = PullParser::new(xml, options);
        let mut loader = natix_tree::BulkLoader::new(tree);
        let mut builder = SummaryBuilder::new();
        let mut feed = |loader: &mut natix_tree::BulkLoader<'_>,
                        builder: &mut SummaryBuilder|
         -> NatixResult<()> {
            let mut seen_root = false;
            while let Some(event) = parser.next_event()? {
                match event {
                    XmlEvent::StartElement { name: tag, attrs } => {
                        // A second root element is rejected by the parser
                        // itself (`XmlError::Structure`).
                        seen_root = true;
                        let tag_label = self.intern_shared(LabelKind::Element, tag);
                        loader.start_element(tag_label)?;
                        builder.start_element(tag_label);
                        for (attr_name, value) in attrs {
                            let label = self.intern_shared(LabelKind::Attribute, attr_name);
                            loader.literal(label, LiteralValue::String(value))?;
                            builder.literal(label);
                        }
                    }
                    XmlEvent::EndElement { .. } => {
                        loader.end_element()?;
                        builder.end_element();
                    }
                    XmlEvent::Text(t) => {
                        if !seen_root || parser.depth() == 0 {
                            return Err(NatixError::Validation("text outside root".into()));
                        }
                        // Long text becomes consecutive sibling literals,
                        // split on UTF-8 character boundaries
                        // (serialisation-identical for XML character data).
                        if t.len() > limit {
                            for chunk in natix_xml::chunk_str(&t, limit) {
                                loader
                                    .literal(LABEL_TEXT, LiteralValue::String(chunk.to_owned()))?;
                                builder.literal(LABEL_TEXT);
                            }
                        } else {
                            loader.literal(LABEL_TEXT, LiteralValue::String(t))?;
                            builder.literal(LABEL_TEXT);
                        }
                    }
                    XmlEvent::Comment(c) => {
                        // Comments outside the root element are dropped, as
                        // in the per-node path.
                        if parser.depth() > 0 {
                            loader.literal(
                                natix_xml::LABEL_COMMENT,
                                LiteralValue::String(c.to_string()),
                            )?;
                            builder.literal(natix_xml::LABEL_COMMENT);
                        }
                    }
                    XmlEvent::Pi { target, data } => {
                        if parser.depth() > 0 {
                            let body = if data.is_empty() {
                                target.to_string()
                            } else {
                                format!("{target} {data}")
                            };
                            loader.literal(natix_xml::LABEL_PI, LiteralValue::String(body))?;
                            builder.literal(natix_xml::LABEL_PI);
                        }
                    }
                    XmlEvent::Doctype { .. } => {}
                }
            }
            if !seen_root {
                return Err(NatixError::Validation("empty document".into()));
            }
            Ok(())
        };
        match feed(&mut loader, &mut builder) {
            Ok(()) => {
                let stats = loader.finish()?;
                let summary = builder.finish(stats.records);
                Ok((stats, summary))
            }
            Err(e) => {
                // Never leak the records flushed before the failure.
                loader.abort();
                Err(e)
            }
        }
    }

    /// Creates an empty document with the given root tag.
    pub fn create_document(&self, name: &str, root_tag: &str) -> NatixResult<DocId> {
        self.claim_name(name)?;
        let label = self.symbols.write().intern_element(root_tag);
        let created = {
            // Scoped write operation: it publishes (and logs its commit)
            // before the registration below is appended to the log.
            let _op = self.tree.begin_write();
            self.tree.create_tree(label)
        };
        match created {
            Ok(root_rid) => {
                let id = self.register(DocState::new(name.to_string(), root_rid));
                self.durable_gate()?;
                Ok(id)
            }
            Err(e) => {
                self.abandon_claim(name);
                Err(e.into())
            }
        }
    }

    /// Reconstructs the whole logical document (§2.3.3: proxy
    /// substitution). Snapshot-consistent under concurrent edits.
    pub fn get_document(&self, name: &str) -> NatixResult<Document> {
        let id = self.doc_id(name)?;
        let st = self.state(id)?;
        let _pin = self.tree.begin_read();
        let root = self.snapshot_root(&st)?;
        Ok(natix_tree::reconstruct_document(&self.tree, root)?)
    }

    /// Recreates the textual representation, streamed from the records.
    pub fn get_xml(&self, name: &str) -> NatixResult<String> {
        let id = self.doc_id(name)?;
        let st = self.state(id)?;
        // Record-version snapshot: the whole-document walk observes one
        // epoch even while writers edit the same document.
        let _pin = self.tree.begin_read();
        // Serialize against a snapshot: holding the read lock across a
        // whole-document walk (buffer misses included) would let one
        // queued intern from an ingestion worker stall every other
        // reader behind the writer for the duration. The alphabet is
        // small and append-only, so a clone is cheap and never stale
        // for labels this document can reference.
        let symbols = self.symbols.read().clone();
        let root = self.snapshot_root(&st)?;
        Ok(natix_tree::serialize_xml(
            &self.tree,
            NodePtr::new(root, 0),
            &symbols,
        )?)
    }

    /// Deletes a document and all its records. Readers that already hold
    /// a snapshot (or are mid-query) keep reading the superseded records;
    /// readers arriving after the drop see [`NatixError::NoSuchDocument`].
    pub fn delete_document(&self, name: &str) -> NatixResult<()> {
        let id = self.doc_id(name)?;
        let state = self.state(id)?;
        let result = {
            let _latch = state.edit_latch.lock();
            // The document may have been deleted while this writer waited
            // on the latch: proceeding would mutate (or double-free)
            // records whose slots another document may already own.
            self.check_live(&state)?;
            // Outer write operation: publishes (epoch advance + root-move
            // hook) after the edit's bookkeeping below, before the latch
            // releases (drop order is reverse declaration order).
            let _op = self.tree.begin_write();
            let op_id = _op.id();
            let result = self.tree.drop_tree(state.root_rid());
            // Unregister and retire atomically with the publish: readers
            // pinned earlier keep both name resolution and the deposited
            // records; readers pinned later get a clean NoSuchDocument, and
            // the name only becomes re-claimable once the delete's epoch
            // exists. On a failed cascade the document is retired anyway —
            // a half-freed tree must not stay addressable (the unfreed
            // records leak, which beats dangling-pointer walks).
            let st = Arc::clone(&state);
            let registry = Arc::clone(&self.registry);
            let doc_name = state.name.clone();
            let wal = self.wal.clone();
            let summaries = Arc::clone(&self.summaries);
            self.tree
                .versions()
                .defer_until_publish(move |epoch, floor| {
                    st.retire(epoch, floor);
                    summaries.remove(id);
                    let mut reg = registry.lock();
                    if reg.by_name.get(&doc_name) == Some(&id) {
                        reg.by_name.remove(&doc_name);
                        reg.docs[id as usize] = None;
                        // Logged under the registry lock, like every other
                        // directory mutation: the log's order matches the
                        // registry's, so a racing registration whose
                        // payload still lists this document cannot land
                        // *after* the deletion and resurrect it.
                        if let Some(w) = &wal {
                            w.append(&natix_storage::WalRecord::DocDelete {
                                op: op_id,
                                name: doc_name.clone(),
                            });
                        }
                    }
                });
            result
        };
        self.durable_gate()?;
        Ok(result?)
    }

    // ==================================================================
    // Node granularity.
    // ==================================================================

    /// Summary (kind, label, text) of a node.
    pub fn node_summary(&self, doc: DocId, node: NodeId) -> NatixResult<NodeSummary> {
        let _pin = self.tree.begin_read();
        let ptr = self.resolve(doc, node)?;
        let info = self.tree.node_info(ptr)?;
        Ok(NodeSummary {
            kind: if info.value.is_some() {
                NodeKind::Literal
            } else {
                NodeKind::Element
            },
            label: self.symbols.read().name(info.label).to_string(),
            text: info.value.map(|v| v.to_text()),
        })
    }

    /// Logical children of a node, in document order. Read-only: unseen
    /// pointers are bound to fresh ids through the document's own id-map
    /// mutex, so concurrent readers never block behind writers of other
    /// documents.
    pub fn children(&self, doc: DocId, node: NodeId) -> NatixResult<Vec<NodeId>> {
        let _pin = self.tree.begin_read();
        let ptr = self.resolve(doc, node)?;
        let ptrs = self.tree.logical_children(ptr)?;
        let state = self.state(doc)?;
        self.bind_snapshot(&state, ptrs)
    }

    /// Logical parent of a node (`None` at the root). Read-only, like
    /// [`children`](Self::children).
    pub fn parent(&self, doc: DocId, node: NodeId) -> NatixResult<Option<NodeId>> {
        let _pin = self.tree.begin_read();
        let ptr = self.resolve(doc, node)?;
        let parent = self.tree.logical_parent(ptr)?;
        let state = self.state(doc)?;
        Ok(self.bind_snapshot(&state, parent)?.into_iter().next())
    }

    /// Calls `f` with the physical pointer of every record spanned by the
    /// subtree at `node`, in document order of first reach — built on the
    /// same record-boundary primitive
    /// ([`natix_tree::TreeStore::scan_record_subtree`]) whose
    /// `ChildRecord` entries feed the parallel descendant scans' work
    /// queue, but walked here depth-first on one thread. Read-only
    /// (`&self`); each record is loaded exactly once and its buffer pin
    /// is released before the next record is touched.
    pub fn for_each_subtree_record(
        &self,
        doc: DocId,
        node: NodeId,
        f: &mut impl FnMut(NodePtr),
    ) -> NatixResult<()> {
        let _pin = self.tree.begin_read();
        let start = self.resolve(doc, node)?;
        let mut stack = vec![start];
        let mut found = Vec::new();
        while let Some(p) = stack.pop() {
            f(p);
            self.tree.scan_record_subtree(p, &mut |entry| {
                if let natix_tree::RecordEntry::ChildRecord { ptr, .. } = *entry {
                    found.push(ptr);
                }
                Ok(true)
            })?;
            // Reverse so the leftmost child record is reached first.
            stack.extend(found.drain(..).rev());
        }
        Ok(())
    }

    /// Number of records the subtree at `node` spans (the work-queue size
    /// of a parallel scan over it).
    pub fn subtree_record_count(&self, doc: DocId, node: NodeId) -> NatixResult<usize> {
        let mut n = 0usize;
        self.for_each_subtree_record(doc, node, &mut |_| n += 1)?;
        Ok(n)
    }

    /// Inserts a new element under `parent`. Takes `&self`: the
    /// document's edit latch serialises writers of *this* document;
    /// readers and writers of other documents proceed concurrently.
    pub fn insert_element(
        &self,
        doc: DocId,
        parent: NodeId,
        pos: InsertPos,
        tag: &str,
    ) -> NatixResult<NodeId> {
        let state = self.state(doc)?;
        let id = {
            let _latch = state.edit_latch.lock();
            // The document may have been deleted while this writer waited
            // on the latch: proceeding would mutate (or double-free)
            // records whose slots another document may already own.
            self.check_live(&state)?;
            // Outer write operation: publishes (epoch advance + root-move
            // hook) after the edit's bookkeeping below, before the latch
            // releases (drop order is reverse declaration order).
            let _op = self.tree.begin_write();
            let label = self.symbols.write().intern_element(tag);
            let res = self.edit_with_normalize(&state, |repo| {
                let ptr = state
                    .resolve(parent)
                    .ok_or(NatixError::NoSuchNode(parent))?;
                Ok(repo.tree.insert(ptr, pos, label, NewNode::Element)?)
            })?;
            self.finish_edit(&state, &res);
            let new_ptr = res.new_node.expect("insert yields node");
            self.note_summary_insert(doc, new_ptr, false);
            state.fresh_id(new_ptr)
        };
        self.durable_gate()?;
        Ok(id)
    }

    /// Inserts a text literal under `parent`; long text is chunked into
    /// several sibling literals and all their ids are returned.
    pub fn insert_text(
        &self,
        doc: DocId,
        parent: NodeId,
        pos: InsertPos,
        text: &str,
    ) -> NatixResult<Vec<NodeId>> {
        let state = self.state(doc)?;
        let ids = self.insert_text_inner(doc, &state, parent, pos, text)?;
        self.durable_gate()?;
        Ok(ids)
    }

    fn insert_text_inner(
        &self,
        doc: DocId,
        state: &Arc<DocState>,
        parent: NodeId,
        pos: InsertPos,
        text: &str,
    ) -> NatixResult<Vec<NodeId>> {
        let state = Arc::clone(state);
        let _latch = state.edit_latch.lock();
        // The document may have been deleted while this writer waited on
        // the latch: proceeding would mutate (or double-free) records
        // whose slots another document may already own.
        self.check_live(&state)?;
        // Outer write operation: publishes (epoch advance + root-move
        // hook) after the edit's bookkeeping below, before the latch
        // releases (drop order is reverse declaration order).
        let _op = self.tree.begin_write();
        let limit = chunk_limit(self.tree.net_capacity());
        let chunks: Vec<String> = if text.len() > limit {
            // Split on UTF-8 character boundaries: a byte split would
            // corrupt multi-byte characters straddling a chunk edge.
            natix_xml::chunk_str(text, limit)
                .map(str::to_owned)
                .collect()
        } else {
            vec![text.to_string()]
        };
        let mut ids = Vec::with_capacity(chunks.len());
        let mut insert_pos = pos;
        for chunk in chunks {
            // Re-resolve the parent for every chunk: inserting the
            // previous chunk may have split or moved its record.
            let res = self.edit_with_normalize(&state, |repo| {
                let ptr = state
                    .resolve(parent)
                    .ok_or(NatixError::NoSuchNode(parent))?;
                Ok(repo.tree.insert(
                    ptr,
                    insert_pos,
                    LABEL_TEXT,
                    NewNode::Literal(LiteralValue::String(chunk.clone())),
                )?)
            })?;
            self.finish_edit(&state, &res);
            let new_ptr = res.new_node.expect("insert yields node");
            self.note_summary_insert(doc, new_ptr, true);
            let id = state.fresh_id(new_ptr);
            // Subsequent chunks follow the one just inserted.
            insert_pos = match insert_pos {
                InsertPos::First => InsertPos::At(1),
                InsertPos::At(k) => InsertPos::At(k + 1),
                InsertPos::Last => InsertPos::Last,
            };
            ids.push(id);
        }
        Ok(ids)
    }

    /// Inserts an element as the next sibling of `sibling`.
    pub fn insert_element_after(
        &self,
        doc: DocId,
        sibling: NodeId,
        tag: &str,
    ) -> NatixResult<NodeId> {
        let state = self.state(doc)?;
        let id = {
            let _latch = state.edit_latch.lock();
            // The document may have been deleted while this writer waited
            // on the latch: proceeding would mutate (or double-free)
            // records whose slots another document may already own.
            self.check_live(&state)?;
            // Outer write operation: publishes (epoch advance + root-move
            // hook) after the edit's bookkeeping below, before the latch
            // releases (drop order is reverse declaration order).
            let _op = self.tree.begin_write();
            let label = self.symbols.write().intern_element(tag);
            let res = self.edit_with_normalize(&state, |repo| {
                let ptr = state
                    .resolve(sibling)
                    .ok_or(NatixError::NoSuchNode(sibling))?;
                Ok(repo.tree.insert_after(ptr, label, NewNode::Element)?)
            })?;
            self.finish_edit(&state, &res);
            let new_ptr = res.new_node.expect("insert yields node");
            self.note_summary_insert(doc, new_ptr, false);
            state.fresh_id(new_ptr)
        };
        self.durable_gate()?;
        Ok(id)
    }

    /// Inserts a literal as the next sibling of `sibling`.
    pub fn insert_literal_after(
        &self,
        doc: DocId,
        sibling: NodeId,
        label: natix_xml::LabelId,
        value: LiteralValue,
    ) -> NatixResult<NodeId> {
        let state = self.state(doc)?;
        let id = {
            let _latch = state.edit_latch.lock();
            // The document may have been deleted while this writer waited
            // on the latch: proceeding would mutate (or double-free)
            // records whose slots another document may already own.
            self.check_live(&state)?;
            // Outer write operation: publishes (epoch advance + root-move
            // hook) after the edit's bookkeeping below, before the latch
            // releases (drop order is reverse declaration order).
            let _op = self.tree.begin_write();
            let res = self.edit_with_normalize(&state, |repo| {
                let ptr = state
                    .resolve(sibling)
                    .ok_or(NatixError::NoSuchNode(sibling))?;
                Ok(repo
                    .tree
                    .insert_after(ptr, label, NewNode::Literal(value.clone()))?)
            })?;
            self.finish_edit(&state, &res);
            let new_ptr = res.new_node.expect("insert yields node");
            self.note_summary_insert(doc, new_ptr, true);
            state.fresh_id(new_ptr)
        };
        self.durable_gate()?;
        Ok(id)
    }

    /// Generic insert used by the benchmark harness (label id + payload).
    pub fn insert_node(
        &self,
        doc: DocId,
        parent: NodeId,
        pos: InsertPos,
        label: natix_xml::LabelId,
        node: NewNode,
    ) -> NatixResult<NodeId> {
        let state = self.state(doc)?;
        let id = {
            let _latch = state.edit_latch.lock();
            // The document may have been deleted while this writer waited
            // on the latch: proceeding would mutate (or double-free)
            // records whose slots another document may already own.
            self.check_live(&state)?;
            // Outer write operation: publishes (epoch advance + root-move
            // hook) after the edit's bookkeeping below, before the latch
            // releases (drop order is reverse declaration order).
            let _op = self.tree.begin_write();
            let literal = matches!(node, NewNode::Literal(_));
            let res = self.edit_with_normalize(&state, |repo| {
                let ptr = state
                    .resolve(parent)
                    .ok_or(NatixError::NoSuchNode(parent))?;
                Ok(repo.tree.insert(ptr, pos, label, node.clone())?)
            })?;
            self.finish_edit(&state, &res);
            let new_ptr = res.new_node.expect("insert yields node");
            self.note_summary_insert(doc, new_ptr, literal);
            state.fresh_id(new_ptr)
        };
        self.durable_gate()?;
        Ok(id)
    }

    /// Generic sibling insert used by the benchmark harness.
    pub fn insert_node_after(
        &self,
        doc: DocId,
        sibling: NodeId,
        label: natix_xml::LabelId,
        node: NewNode,
    ) -> NatixResult<NodeId> {
        let state = self.state(doc)?;
        let id = {
            let _latch = state.edit_latch.lock();
            // The document may have been deleted while this writer waited
            // on the latch: proceeding would mutate (or double-free)
            // records whose slots another document may already own.
            self.check_live(&state)?;
            // Outer write operation: publishes (epoch advance + root-move
            // hook) after the edit's bookkeeping below, before the latch
            // releases (drop order is reverse declaration order).
            let _op = self.tree.begin_write();
            let literal = matches!(node, NewNode::Literal(_));
            let res = self.edit_with_normalize(&state, |repo| {
                let ptr = state
                    .resolve(sibling)
                    .ok_or(NatixError::NoSuchNode(sibling))?;
                Ok(repo.tree.insert_after(ptr, label, node.clone())?)
            })?;
            self.finish_edit(&state, &res);
            let new_ptr = res.new_node.expect("insert yields node");
            self.note_summary_insert(doc, new_ptr, literal);
            state.fresh_id(new_ptr)
        };
        self.durable_gate()?;
        Ok(id)
    }

    /// Deletes the subtree rooted at `node`.
    pub fn delete_node(&self, doc: DocId, node: NodeId) -> NatixResult<()> {
        let state = self.state(doc)?;
        {
            let _latch = state.edit_latch.lock();
            // The document may have been deleted while this writer waited
            // on the latch: proceeding would mutate (or double-free)
            // records whose slots another document may already own.
            self.check_live(&state)?;
            // Outer write operation: publishes (epoch advance + root-move
            // hook) after the edit's bookkeeping below, before the latch
            // releases (drop order is reverse declaration order).
            let _op = self.tree.begin_write();
            let (res, victims, decrements) = self.edit_with_normalize(&state, |repo| {
                let ptr = state.resolve(node).ok_or(NatixError::NoSuchNode(node))?;
                // Collect the subtree's logical ids first (their pointers are
                // purged before relocations are applied); recollected on every
                // attempt, since normalization relocates them. The same walk
                // tallies per-path node counts for the summary decrement,
                // keyed by root-to-node label path: `prefix` starts as the
                // victim root's *ancestor* path and tracks the walk depth.
                let mut victims = Vec::new();
                let mut decrements: HashMap<Vec<natix_xml::LabelId>, u64> = HashMap::new();
                let mut prefix = repo.tree.label_path(ptr)?;
                prefix.pop();
                natix_tree::traverse(&repo.tree, ptr, &mut |ev| {
                    match ev {
                        VisitEvent::Enter { ptr, label } => {
                            if let Some(id) = state.lookup_ptr(ptr) {
                                victims.push(id);
                            }
                            prefix.push(label);
                            *decrements.entry(prefix.clone()).or_default() += 1;
                        }
                        VisitEvent::Literal { ptr, label, .. } => {
                            if let Some(id) = state.lookup_ptr(ptr) {
                                victims.push(id);
                            }
                            prefix.push(label);
                            *decrements.entry(prefix.clone()).or_default() += 1;
                            prefix.pop();
                        }
                        VisitEvent::Leave { .. } => {
                            prefix.pop();
                        }
                    }
                    true
                })?;
                let res = repo.tree.delete_subtree(ptr)?;
                Ok((res, victims, decrements))
            })?;
            state.purge(&victims);
            self.finish_edit(&state, &res);
            self.note_summary_remove(doc, decrements);
        }
        self.durable_gate()?;
        Ok(())
    }

    /// Replaces the value of a text/literal node.
    pub fn update_text(&self, doc: DocId, node: NodeId, text: &str) -> NatixResult<()> {
        let state = self.state(doc)?;
        {
            let _latch = state.edit_latch.lock();
            // The document may have been deleted while this writer waited
            // on the latch: proceeding would mutate (or double-free)
            // records whose slots another document may already own.
            self.check_live(&state)?;
            // Outer write operation: publishes (epoch advance + root-move
            // hook) after the edit's bookkeeping below, before the latch
            // releases (drop order is reverse declaration order).
            let _op = self.tree.begin_write();
            let res = self.edit_with_normalize(&state, |repo| {
                let ptr = state.resolve(node).ok_or(NatixError::NoSuchNode(node))?;
                Ok(repo
                    .tree
                    .update_literal(ptr, LiteralValue::String(text.to_string()))?)
            })?;
            // A value update adds/removes no indexed nodes: an attached
            // label index is patched from the relocations, not invalidated.
            self.finish_edit_impact(&state, &res, EditImpact::Values);
        }
        self.durable_gate()?;
        Ok(())
    }

    /// Concatenated text content of a subtree (Query 2/3 style reads).
    pub fn text_content(&self, doc: DocId, node: NodeId) -> NatixResult<String> {
        let _pin = self.tree.begin_read();
        let ptr = self.resolve(doc, node)?;
        Ok(natix_tree::subtree_text(&self.tree, ptr)?)
    }

    /// Serialises a subtree back to XML text.
    pub fn serialize_node(&self, doc: DocId, node: NodeId) -> NatixResult<String> {
        let _pin = self.tree.begin_read();
        let ptr = self.resolve(doc, node)?;
        // Snapshot, not guard: see `get_xml`.
        let symbols = self.symbols.read().clone();
        Ok(natix_tree::serialize_xml(&self.tree, ptr, &symbols)?)
    }

    /// Full pre-order traversal of a document, calling `f(depth, summary)`
    /// for every node — the paper's "full tree traversal" operation.
    pub fn traverse_document(
        &self,
        doc: DocId,
        mut f: impl FnMut(usize, NodeSummary),
    ) -> NatixResult<()> {
        let st = self.state(doc)?;
        let _pin = self.tree.begin_read();
        // Snapshot, not guard: see `get_xml`.
        let symbols: SymbolTable = self.symbols.read().clone();
        let symbols: &SymbolTable = &symbols;
        let mut depth = 0usize;
        let root = self.snapshot_root(&st)?;
        natix_tree::traverse(&self.tree, NodePtr::new(root, 0), &mut |ev| {
            match ev {
                VisitEvent::Enter { label, .. } => {
                    f(
                        depth,
                        NodeSummary {
                            kind: NodeKind::Element,
                            label: symbols.name(label).to_string(),
                            text: None,
                        },
                    );
                    depth += 1;
                }
                VisitEvent::Literal { label, value, .. } => f(
                    depth,
                    NodeSummary {
                        kind: NodeKind::Literal,
                        label: symbols.name(label).to_string(),
                        text: Some(value.to_text()),
                    },
                ),
                VisitEvent::Leave { .. } => depth -= 1,
            }
            true
        })?;
        Ok(())
    }

    /// Rebuilds the logical-node map of a re-opened document by one full
    /// traversal (ids are assigned in pre-order). Called by the catalog
    /// loader; for freshly stored documents the map is already current.
    pub(crate) fn rebuild_map(&self, doc: DocId) -> NatixResult<()> {
        let state = self.state(doc)?;
        let mut ptrs = Vec::new();
        natix_tree::traverse(&self.tree, NodePtr::new(state.root_rid(), 0), &mut |ev| {
            match ev {
                VisitEvent::Enter { ptr, .. } | VisitEvent::Literal { ptr, .. } => ptrs.push(ptr),
                VisitEvent::Leave { .. } => {}
            }
            true
        })?;
        state.reset_map(&ptrs);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;

    fn small_repo() -> Repository {
        Repository::create_in_memory(RepositoryOptions {
            page_size: 1024,
            ..RepositoryOptions::default()
        })
        .unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let repo = small_repo();
        let xml = "<PLAY><TITLE>Hamlet</TITLE><ACT><SCENE><SPEECH>\
                   <SPEAKER>HAMLET</SPEAKER><LINE>To be, or not to be</LINE>\
                   </SPEECH></SCENE></ACT></PLAY>";
        repo.put_xml("hamlet", xml).unwrap();
        assert_eq!(repo.get_xml("hamlet").unwrap(), xml);
    }

    #[test]
    fn node_navigation() {
        let repo = small_repo();
        let id = repo.put_xml("d", "<a><b>x</b><c><d/>tail</c></a>").unwrap();
        let root = repo.root(id).unwrap();
        let kids = repo.children(id, root).unwrap();
        assert_eq!(kids.len(), 2);
        let b = repo.node_summary(id, kids[0]).unwrap();
        assert_eq!(b.label, "b");
        assert_eq!(b.kind, NodeKind::Element);
        let c_kids = repo.children(id, kids[1]).unwrap();
        assert_eq!(c_kids.len(), 2);
        let tail = repo.node_summary(id, c_kids[1]).unwrap();
        assert_eq!(tail.text.as_deref(), Some("tail"));
        assert_eq!(repo.parent(id, kids[0]).unwrap(), Some(root));
        assert_eq!(repo.parent(id, root).unwrap(), None);
    }

    #[test]
    fn readers_navigate_through_shared_reference() {
        // `children`/`parent`/`node_summary` take `&self`: a read-only
        // traversal needs no exclusive access to the repository.
        let repo = small_repo();
        let id = repo.put_xml("d", "<a><b>x</b><c>y</c></a>").unwrap();
        let shared: &Repository = &repo;
        let root = shared.root(id).unwrap();
        let kids = shared.children(id, root).unwrap();
        assert_eq!(kids.len(), 2);
        assert_eq!(shared.parent(id, kids[1]).unwrap(), Some(root));
        assert_eq!(shared.node_summary(id, kids[0]).unwrap().label, "b");
    }

    #[test]
    fn insert_and_serialize_subtree() {
        let repo = small_repo();
        let id = repo.create_document("d", "SPEECH").unwrap();
        let root = repo.root(id).unwrap();
        let speaker = repo
            .insert_element(id, root, InsertPos::Last, "SPEAKER")
            .unwrap();
        repo.insert_text(id, speaker, InsertPos::Last, "OTHELLO")
            .unwrap();
        let line = repo.insert_element_after(id, speaker, "LINE").unwrap();
        repo.insert_text(id, line, InsertPos::Last, "Look in my face.")
            .unwrap();
        assert_eq!(
            repo.get_xml("d").unwrap(),
            "<SPEECH><SPEAKER>OTHELLO</SPEAKER><LINE>Look in my face.</LINE></SPEECH>"
        );
        assert_eq!(
            repo.serialize_node(id, speaker).unwrap(),
            "<SPEAKER>OTHELLO</SPEAKER>"
        );
        assert_eq!(
            repo.text_content(id, root).unwrap(),
            "OTHELLOLook in my face."
        );
    }

    #[test]
    fn growth_across_many_records_keeps_ids_stable() {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 512,
            ..RepositoryOptions::default()
        })
        .unwrap();
        let id = repo.create_document("d", "root").unwrap();
        let root = repo.root(id).unwrap();
        let mut ids = Vec::new();
        for i in 0..150 {
            let e = repo
                .insert_element(id, root, InsertPos::Last, "item")
                .unwrap();
            repo.insert_text(
                id,
                e,
                InsertPos::Last,
                &format!("payload {i} {}", "x".repeat(i % 40)),
            )
            .unwrap();
            ids.push((e, i));
        }
        // Every element id still resolves and reads back its own payload.
        for (e, i) in ids {
            let text = repo.text_content(id, e).unwrap();
            assert!(
                text.starts_with(&format!("payload {i} ")),
                "node {e}: {text}"
            );
        }
        repo.physical_stats("d").unwrap();
    }

    #[test]
    fn delete_node_updates_view() {
        let repo = small_repo();
        let id = repo
            .put_xml("d", "<a><b>one</b><c>two</c><d>three</d></a>")
            .unwrap();
        let root = repo.root(id).unwrap();
        let kids = repo.children(id, root).unwrap();
        repo.delete_node(id, kids[1]).unwrap();
        assert_eq!(repo.get_xml("d").unwrap(), "<a><b>one</b><d>three</d></a>");
        assert!(matches!(
            repo.node_summary(id, kids[1]),
            Err(NatixError::NoSuchNode(_))
        ));
        // Remaining ids still work.
        assert_eq!(repo.text_content(id, kids[0]).unwrap(), "one");
        assert_eq!(repo.text_content(id, kids[2]).unwrap(), "three");
    }

    #[test]
    fn update_text_in_place_and_grown() {
        let repo = small_repo();
        let id = repo.put_xml("d", "<a><b>small</b></a>").unwrap();
        let root = repo.root(id).unwrap();
        let b = repo.children(id, root).unwrap()[0];
        let t = repo.children(id, b).unwrap()[0];
        repo.update_text(id, t, "replaced").unwrap();
        assert_eq!(repo.get_xml("d").unwrap(), "<a><b>replaced</b></a>");
        let big = "B".repeat(400);
        repo.update_text(id, t, &big).unwrap();
        assert_eq!(repo.text_content(id, b).unwrap(), big);
    }

    #[test]
    fn long_text_is_chunked_but_serialises_identically() {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 512,
            ..RepositoryOptions::default()
        })
        .unwrap();
        let id = repo.create_document("d", "a").unwrap();
        let root = repo.root(id).unwrap();
        let long = "abcdefgh".repeat(200); // 1600 bytes > net capacity
        let ids = repo.insert_text(id, root, InsertPos::Last, &long).unwrap();
        assert!(ids.len() > 1, "must be chunked");
        assert_eq!(repo.get_xml("d").unwrap(), format!("<a>{long}</a>"));
        repo.physical_stats("d").unwrap();
    }

    #[test]
    fn traverse_document_visits_everything() {
        let repo = small_repo();
        let id = repo.put_xml("d", "<a><b>x</b><c><d>y</d></c></a>").unwrap();
        let mut labels = Vec::new();
        repo.traverse_document(id, |depth, s| labels.push((depth, s.label)))
            .unwrap();
        assert_eq!(
            labels,
            vec![
                (0, "a".to_string()),
                (1, "b".to_string()),
                (2, "#text".to_string()),
                (1, "c".to_string()),
                (2, "d".to_string()),
                (3, "#text".to_string()),
            ]
        );
    }

    #[test]
    fn streaming_load_equals_dom_load() {
        let xml = "<PLAY id=\"x\"><TITLE>T &amp; T</TITLE><ACT><SCENE>\
                   <!--note--><SPEECH><SPEAKER>A</SPEAKER>\
                   <LINE>one</LINE><LINE>two</LINE></SPEECH>\
                   <?render fast?></SCENE></ACT></PLAY>";
        let a = small_repo();
        a.put_xml("d", xml).unwrap();
        let b = small_repo();
        b.put_xml_streaming("d", xml).unwrap();
        assert_eq!(a.get_xml("d").unwrap(), b.get_xml("d").unwrap());
        b.physical_stats("d").unwrap();
        // The streamed document is immediately editable.
        let id = b.doc_id("d").unwrap();
        let speakers = b.query("d", "//SPEAKER").unwrap();
        assert_eq!(speakers.len(), 1);
        let text_node = b.children(id, speakers[0]).unwrap()[0];
        b.update_text(id, text_node, "B").unwrap();
        assert!(b.get_xml("d").unwrap().contains("<SPEAKER>B</SPEAKER>"));
    }

    #[test]
    fn streaming_load_rejects_garbage() {
        let repo = small_repo();
        assert!(repo.put_xml_streaming("d", "<a><b></a>").is_err());
        assert!(repo.put_xml_streaming("d2", "").is_err());
        // Failed loads release their claims: the names are free again.
        repo.put_xml_streaming("d", "<a/>").unwrap();
        repo.put_xml_streaming("d2", "<b/>").unwrap();
    }

    #[test]
    fn streaming_load_chunks_long_text() {
        let repo = Repository::create_in_memory(RepositoryOptions {
            page_size: 512,
            ..RepositoryOptions::default()
        })
        .unwrap();
        let long = "y".repeat(1500);
        repo.put_xml_streaming("d", &format!("<a>{long}</a>"))
            .unwrap();
        assert_eq!(repo.get_xml("d").unwrap(), format!("<a>{long}</a>"));
        repo.physical_stats("d").unwrap();
    }

    #[test]
    fn edits_after_delete_fail_cleanly() {
        let repo = small_repo();
        let id = repo.put_xml("d", "<a><b>x</b></a>").unwrap();
        let root = repo.root(id).unwrap();
        repo.delete_document("d").unwrap();
        assert!(matches!(
            repo.insert_element(id, root, InsertPos::Last, "c"),
            Err(NatixError::NoSuchDocument(_))
        ));
        assert!(matches!(
            repo.delete_node(id, root),
            Err(NatixError::NoSuchDocument(_))
        ));
        assert!(matches!(
            repo.delete_document("d"),
            Err(NatixError::NoSuchDocument(_))
        ));
        // The name is reusable and old ids do not resurrect onto the new
        // document.
        let id2 = repo.put_xml("d", "<z/>").unwrap();
        assert_eq!(repo.get_xml("d").unwrap(), "<z/>");
        assert_ne!(id, id2);
    }

    #[test]
    fn concurrent_edit_and_delete_serialize_cleanly() {
        // A writer mid-stream of inserts races delete_document: once the
        // delete publishes, every further edit fails with a clean
        // NoSuchDocument — never a dangling-record error, never a write
        // into freed slots (the edit latch plus the post-latch liveness
        // check close that window).
        for round in 0..20 {
            let repo = small_repo();
            let id = repo.put_xml("d", "<a><b>x</b></a>").unwrap();
            let root = repo.root(id).unwrap();
            let repo = &repo;
            std::thread::scope(|s| {
                let editor = s.spawn(move || {
                    let mut inserted = 0usize;
                    loop {
                        match repo.insert_element(id, root, InsertPos::Last, "x") {
                            Ok(_) => inserted += 1,
                            Err(NatixError::NoSuchDocument(_)) => break inserted,
                            Err(e) => panic!("round {round}: {e}"),
                        }
                    }
                });
                s.spawn(move || {
                    repo.delete_document("d").unwrap();
                });
                editor.join().unwrap();
            });
            // The storage is fully reclaimed and the name reusable.
            repo.put_xml("d", "<fresh/>").unwrap();
            assert_eq!(repo.get_xml("d").unwrap(), "<fresh/>");
            repo.physical_stats("d").unwrap();
        }
    }

    #[test]
    fn delete_document_frees_space_for_reuse() {
        let repo = small_repo();
        repo.put_xml("d", "<a><b>some content here</b></a>")
            .unwrap();
        repo.delete_document("d").unwrap();
        assert!(matches!(
            repo.get_xml("d"),
            Err(NatixError::NoSuchDocument(_))
        ));
        repo.put_xml("d", "<fresh/>").unwrap();
        assert_eq!(repo.get_xml("d").unwrap(), "<fresh/>");
    }
}
