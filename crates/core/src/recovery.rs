//! Crash recovery: analysis / redo / undo over the write-ahead log.
//!
//! The log (see [`natix_storage::wal`]) carries four kinds of information:
//!
//! * **Checkpoints** — an allocator snapshot ([`StoreSnapshot`]) plus an
//!   opaque *directory payload* (encoded by this module) describing the
//!   repository directory: symbol alphabet, document roots, split matrix,
//!   DTDs. The last checkpoint is where analysis starts.
//! * **Redo** — full page images captured when an operation publishes,
//!   followed by its `Commit` record. Committed images at or above the
//!   checkpoint's redo horizon are replayed; everything below it was
//!   flushed to the base file by the checkpoint itself.
//! * **Undo** — record pre-images and creation notices deposited by the
//!   record-version layer before an operation first touches a stored
//!   record. Operations without a `Commit` record (in flight at the
//!   crash) are rolled back from these, in reverse log order.
//! * **Allocation** — `Alloc`/`Free`/`SegCreate` events after the
//!   checkpoint, folded into the snapshot's free list and segment
//!   directory.
//!
//! The catalog *document* (the XML form of the directory, see
//! [`crate::catalog`]) is **not** recovered from its pages: its rewrite
//! during a checkpoint runs log-suppressed, so its page states after a
//! crash are untrustworthy. Recovery instead returns the catalog
//! segment's pages to the free pool (unless a committed operation
//! re-used them since the checkpoint) and rebuilds the directory from
//! the logged payload; the checkpoint that ends recovery writes a fresh
//! catalog document.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use natix_storage::slotted::SlottedPage;
use natix_storage::wal::{StoreSnapshot, WalRecord, NO_ALLOC_SEGMENT};
use natix_storage::{BufferManager, PageId, PageKind, Rid, StorageError, StorageManager};
use natix_tree::{SplitBehaviour, SplitMatrix};
use natix_xml::{LabelKind, SymbolTable};

use crate::document::DocState;
use crate::error::{NatixError, NatixResult};
use crate::repository::{DocRegistry, Repository};
use crate::schema::SchemaManager;

// ======================================================================
// Directory payload: the repository directory in a flat, parser-free
// encoding (the catalog *document* needs the symbol table to decode —
// the payload must not).
// ======================================================================

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn kind_code(kind: LabelKind) -> u8 {
    match kind {
        LabelKind::Element => 0,
        LabelKind::Attribute => 1,
        LabelKind::Builtin => 2,
    }
}

fn kind_from(code: u8) -> NatixResult<LabelKind> {
    Ok(match code {
        0 => LabelKind::Element,
        1 => LabelKind::Attribute,
        2 => LabelKind::Builtin,
        other => {
            return Err(NatixError::Catalog(format!(
                "recovery: bad label kind {other}"
            )))
        }
    })
}

fn behaviour_code(b: SplitBehaviour) -> u8 {
    match b {
        SplitBehaviour::Standalone => 0,
        SplitBehaviour::KeepWithParent => 1,
        SplitBehaviour::Other => 2,
    }
}

fn behaviour_from(code: u8) -> NatixResult<SplitBehaviour> {
    Ok(match code {
        0 => SplitBehaviour::Standalone,
        1 => SplitBehaviour::KeepWithParent,
        2 => SplitBehaviour::Other,
        other => {
            return Err(NatixError::Catalog(format!(
                "recovery: bad split behaviour {other}"
            )))
        }
    })
}

/// Encodes the repository directory. The caller holds the symbol-table
/// read lock, the registry lock, and the matrix/schema read locks, so
/// the four sections are one consistent cut.
pub(crate) fn capture_directory(
    symbols: &SymbolTable,
    registry: &DocRegistry,
    matrix: &SplitMatrix,
    schema: &SchemaManager,
) -> Vec<u8> {
    let mut out = Vec::new();

    // 1. User labels, in id order (ids are implied by position).
    let rows: Vec<(LabelKind, &str)> = symbols
        .iter()
        .skip(natix_xml::symbols::FIRST_USER_LABEL as usize)
        .map(|(_, k, n)| (k, n))
        .collect();
    put_u32(&mut out, rows.len() as u32);
    for (kind, name) in rows {
        out.push(kind_code(kind));
        put_str(&mut out, name);
    }

    // 2. Documents: name → root RID, in id order.
    let mut docs: Vec<(crate::document::DocId, &str, Rid)> = registry
        .by_name
        .iter()
        .filter_map(|(n, &id)| {
            registry
                .docs
                .get(id as usize)
                .and_then(|d| d.as_ref())
                .map(|st| (id, n.as_str(), st.root_rid()))
        })
        .collect();
    docs.sort_by_key(|&(id, _, _)| id);
    put_u32(&mut out, docs.len() as u32);
    for (_, name, rid) in docs {
        put_str(&mut out, name);
        put_u32(&mut out, rid.page);
        out.extend_from_slice(&rid.slot.to_le_bytes());
    }

    // 3. Split matrix: default + overrides by element *name* (label ids
    //    are only stable relative to the alphabet above).
    out.push(behaviour_code(matrix.default_behaviour()));
    // Skip rules whose labels are not interned yet: they cannot have
    // influenced stored content, and ids without names cannot be encoded.
    let known = symbols.len() as u16;
    let mut rules: Vec<(&str, &str, SplitBehaviour)> = matrix
        .overrides()
        .filter(|&(p, c, _)| p < known && c < known)
        .map(|(p, c, b)| (symbols.name(p), symbols.name(c), b))
        .collect();
    rules.sort_by_key(|&(p, c, _)| (p, c));
    put_u32(&mut out, rules.len() as u32);
    for (p, c, b) in rules {
        put_str(&mut out, p);
        put_str(&mut out, c);
        out.push(behaviour_code(b));
    }

    // 4. DTD sources.
    let dtds: Vec<(&str, &str)> = schema.dtd_sources().collect();
    put_u32(&mut out, dtds.len() as u32);
    for (name, text) in dtds {
        put_str(&mut out, name);
        put_str(&mut out, text);
    }
    out
}

/// A bounds-checked little-endian reader over a directory payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> NatixResult<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(NatixError::Catalog(
                "recovery: short directory payload".into(),
            ));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> NatixResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> NatixResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> NatixResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> NatixResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NatixError::Catalog("recovery: directory payload not UTF-8".into()))
    }
}

/// Applies a captured directory to a freshly built repository: restores
/// the alphabet, the split matrix, the DTDs, and registers every
/// document (minus `deletions` — documents whose committed deletion
/// post-dates the payload). The caller runs this under log suppression;
/// [`Repository::register`] skips its directory logging accordingly.
pub(crate) fn apply_directory(
    repo: &mut Repository,
    payload: &[u8],
    deletions: &HashSet<String>,
    symbol_batches: &[(u32, Vec<(u8, String)>)],
) -> NatixResult<()> {
    if payload.is_empty() {
        return Ok(()); // repository checkpointed before any directory existed
    }
    let mut cur = Cursor {
        bytes: payload,
        at: 0,
    };

    // 1. Symbols: builtin prefix + stored user rows, ids by position.
    let mut rows: Vec<(LabelKind, String)> = SymbolTable::new()
        .iter()
        .map(|(_, k, n)| (k, n.to_string()))
        .collect();
    let nsyms = cur.u32()?;
    for _ in 0..nsyms {
        let kind = kind_from(cur.u8()?)?;
        rows.push((kind, cur.str()?));
    }
    // Alphabet growth logged by commit hooks after the payload was
    // captured. Ids are positional, so a batch row extends the table
    // only when it lands exactly at the end; rows the payload already
    // covers (a later catalog dump superseded the batch) are skipped.
    // Applied in log order and unconditionally — a loser operation's
    // labels keep their slots so every later id stays aligned.
    for (base, batch) in symbol_batches {
        for (i, (code, name)) in batch.iter().enumerate() {
            if *base as usize + i == rows.len() {
                rows.push((kind_from(*code)?, name.clone()));
            }
        }
    }
    *repo.symbols_mut() = SymbolTable::from_rows(&rows);

    // 2. Documents (registered after the matrix/DTDs below — map
    //    rebuilds only need the alphabet, but keep the catalog's order
    //    of restoration: alphabet, matrix, schema, then documents).
    let ndocs = cur.u32()?;
    let mut docs = Vec::with_capacity(ndocs as usize);
    for _ in 0..ndocs {
        let name = cur.str()?;
        let page = cur.u32()?;
        let slot = cur.u16()?;
        docs.push((name, Rid::new(page, slot)));
    }

    // 3. Split matrix.
    let default = behaviour_from(cur.u8()?)?;
    let mut matrix = SplitMatrix::with_default(default);
    {
        let symbols = repo.symbols();
        let nrules = cur.u32()?;
        for _ in 0..nrules {
            let p = cur.str()?;
            let c = cur.str()?;
            let b = behaviour_from(cur.u8()?)?;
            let p = symbols
                .lookup_element(&p)
                .ok_or_else(|| NatixError::Catalog(format!("recovery: rule parent '{p}'")))?;
            let c = symbols
                .lookup_element(&c)
                .ok_or_else(|| NatixError::Catalog(format!("recovery: rule child '{c}'")))?;
            matrix.set(p, c, b);
        }
    }
    repo.tree_store().set_matrix(matrix);

    // 4. DTDs.
    let ndtds = cur.u32()?;
    for _ in 0..ndtds {
        let name = cur.str()?;
        let text = cur.str()?;
        repo.schema_mut().register_dtd(&name, &text)?;
    }

    // 5. Register the documents.
    for (name, rid) in docs {
        if deletions.contains(&name) {
            continue;
        }
        let state = DocState::new(name, rid);
        let id = repo.register(state);
        repo.rebuild_map(id)?;
    }
    Ok(())
}

// ======================================================================
// Analysis / redo / undo.
// ======================================================================

/// What [`replay`] hands back to [`Repository::build`]: the restored
/// storage manager plus the directory to re-apply once the repository
/// object exists.
pub(crate) struct RecoveryOutcome {
    pub(crate) sm: Arc<StorageManager>,
    /// Latest effective directory payload.
    pub(crate) directory: Vec<u8>,
    /// Documents whose committed deletion post-dates `directory`.
    pub(crate) deletions: HashSet<String>,
    /// Alphabet-growth batches (`Symbols` records) in log order.
    pub(crate) symbols: Vec<(u32, Vec<(u8, String)>)>,
}

/// Replays the log against `buffer`'s backend: restores the allocator
/// from the last checkpoint, folds post-checkpoint allocation events,
/// redoes committed page images, rolls back in-flight operations from
/// their pre-images, and folds the directory. `catalog_segment` names
/// the segment whose pages are rebuilt rather than recovered (see the
/// module docs).
pub(crate) fn replay(
    buffer: Arc<BufferManager>,
    records: &[(u64, WalRecord)],
    catalog_segment: &str,
) -> NatixResult<RecoveryOutcome> {
    let (ckpt_lsn, last_snap) = records
        .iter()
        .rev()
        .find_map(|(lsn, r)| match r {
            WalRecord::Checkpoint(s) => Some((*lsn, s.as_ref())),
            _ => None,
        })
        .ok_or_else(|| NatixError::Catalog("recovery: no checkpoint in log".into()))?;

    // --- Analysis: which operations committed, which pages they redo.
    let mut committed: HashSet<u64> = HashSet::new();
    for (_, r) in records {
        if let WalRecord::Commit { op } = r {
            committed.insert(*op);
        }
    }
    let mut committed_pages: HashSet<PageId> = HashSet::new();
    for (_, r) in records {
        if let WalRecord::PageImage { op, page, .. } = r {
            if committed.contains(op) {
                committed_pages.insert(*page);
            }
        }
    }

    // The checkpoint's catalog pages are not recovered (their rewrite is
    // log-suppressed): drop them from the segment and return them to the
    // free pool — unless a committed operation re-allocated one since
    // the checkpoint, in which case redo below owns its content.
    let mut snap: StoreSnapshot = last_snap.clone();
    snap.user_root.clear(); // the old catalog root is gone either way
    if let Some(cat) = snap.segments.iter_mut().find(|s| s.name == catalog_segment) {
        for (p, _) in std::mem::take(&mut cat.pages) {
            if !committed_pages.contains(&p) && !snap.free_list.contains(&p) {
                snap.free_list.push(p);
            }
        }
    }

    // --- Restore the allocator and fold post-checkpoint allocation.
    let sm = Arc::new(StorageManager::restore_from_snapshot(
        Arc::clone(&buffer),
        &snap,
    )?);
    let mut free: Vec<PageId> = snap.free_list.clone();
    let mut next = snap.next_unallocated.max(1);
    // Pages allocated since the checkpoint, with the inventory that owns
    // them: the snapshot's segment lists predate these allocations, so
    // each survivor must be adopted back into its inventory below.
    let mut adopted: BTreeMap<PageId, u16> = BTreeMap::new();
    for (lsn, r) in records {
        if *lsn <= ckpt_lsn {
            continue;
        }
        match r {
            WalRecord::SegCreate { name } => {
                sm.create_segment(name)?;
            }
            WalRecord::Alloc { page, segment } => {
                free.retain(|p| p != page);
                next = next.max(page + 1);
                if *segment == NO_ALLOC_SEGMENT {
                    adopted.remove(page);
                } else {
                    adopted.insert(*page, *segment);
                }
            }
            WalRecord::Free { page } => {
                free.push(*page);
                adopted.remove(page);
            }
            _ => {}
        }
    }
    sm.set_next_unallocated(next)?;

    // --- Redo: committed page images at/above the horizon, log order.
    let page_size = buffer.page_size();
    for (lsn, r) in records {
        if let WalRecord::PageImage { op, page, image } = r {
            if *lsn < snap.redo_horizon || !committed.contains(op) {
                continue;
            }
            if image.len() != page_size {
                return Err(NatixError::Catalog(format!(
                    "recovery: page image of {} bytes on a {page_size}-byte store",
                    image.len()
                )));
            }
            buffer.discard(*page)?;
            let pin = buffer.pin_new(*page)?;
            pin.write().bytes_mut().copy_from_slice(image);
        }
    }

    // --- Undo: roll back in-flight operations, reverse log order.
    for (_, r) in records.iter().rev() {
        match r {
            WalRecord::Created { op, rid } if !committed.contains(op) => {
                let pin = buffer.pin(rid.page)?;
                let mut buf = pin.write();
                if matches!(buf.kind(), Ok(PageKind::Slotted)) {
                    let mut sp = SlottedPage::open(&mut buf)?;
                    if sp.is_live(rid.slot) {
                        sp.delete(rid.slot)?;
                    }
                }
            }
            WalRecord::PreImage {
                op,
                rid,
                table,
                bytes,
            } if !committed.contains(op) => {
                let pin = buffer.pin(rid.page)?;
                let mut buf = pin.write();
                if !matches!(buf.kind(), Ok(PageKind::Slotted)) {
                    SlottedPage::format(&mut buf);
                }
                let mut sp = SlottedPage::open(&mut buf)?;
                // Slot 0 is the page's node-type table. Type tables only
                // grow, so the longest encoding seen is the superset every
                // record on the page can decode through.
                let cur_table = if sp.is_live(0) {
                    sp.get(0).map(|b| b.len()).unwrap_or(0)
                } else {
                    0
                };
                if table.len() > cur_table {
                    if sp.is_live(0) {
                        sp.update(0, table)?;
                    } else {
                        sp.insert_at(0, table)?;
                    }
                }
                if sp.is_live(rid.slot) {
                    match sp.update(rid.slot, bytes) {
                        Ok(()) => {}
                        Err(StorageError::PageFull { .. }) => {
                            // The live payload is larger than the page can
                            // grow it in place; replace it outright.
                            sp.delete(rid.slot)?;
                            sp.insert_at(rid.slot, bytes)?;
                        }
                        Err(e) => return Err(e.into()),
                    }
                } else {
                    sp.insert_at(rid.slot, bytes)?;
                }
            }
            _ => {}
        }
    }

    // --- Install the folded free list, then re-derive every cached
    //     free-space value from the final page states.
    sm.install_free_list(&free)?;
    for (page, segment) in &adopted {
        if !free.contains(page) {
            sm.adopt_page(*segment, *page);
        }
    }
    sm.refresh_fsi_from_pages()?;

    // Loser allocations: `Alloc` records carry no operation id, so the
    // fold above re-adopted every post-checkpoint allocation, and the
    // refresh just dropped the ones whose content never reached disk.
    // Without this sweep those pages stay allocated but unreachable —
    // invisible to the inventories and to every later snapshot — until a
    // full checkpoint happens to rebuild the free list. Release them now.
    sm.reclaim_untracked_pages()?;

    // --- Directory fold: the snapshot's payload, superseded by any
    //     later unconditional (op 0) or committed directory record;
    //     committed deletions after that base drop their document.
    let mut directory = snap.catalog.clone();
    let mut dir_lsn = ckpt_lsn;
    for (lsn, r) in records {
        if *lsn <= ckpt_lsn {
            continue;
        }
        if let WalRecord::Catalog { op, payload } = r {
            if *op == 0 || committed.contains(op) {
                directory = payload.clone();
                dir_lsn = *lsn;
            }
        }
    }
    let mut deletions = HashSet::new();
    for (lsn, r) in records {
        if let WalRecord::DocDelete { op, name } = r {
            if *lsn > dir_lsn && committed.contains(op) {
                deletions.insert(name.clone());
            }
        }
    }
    let mut symbols = Vec::new();
    for (_, r) in records {
        if let WalRecord::Symbols { base, rows } = r {
            symbols.push((*base, rows.clone()));
        }
    }

    Ok(RecoveryOutcome {
        sm,
        directory,
        deletions,
        symbols,
    })
}
