//! Path-summary index: per-document statistics over distinct root-to-node
//! label paths, and the path-level query matcher the cost-based planner is
//! built on.
//!
//! A *label path* is the sequence of labels from the document root down to
//! a node (inclusive). Documents repeat structure heavily, so the set of
//! distinct label paths is tiny compared to the node count — the summary
//! stores one [`PathNode`] per distinct path with the number of facade
//! nodes bearing it. Following Arion et al.'s path-summary argument, a
//! path query without positional predicates can then be answered *at path
//! level*: a node matches iff its label path is in the computed match set,
//! so match counts come straight from summary counts (no record access),
//! and node enumeration can prune its descent to the ancestor closure of
//! the matching paths.
//!
//! # Versioning
//!
//! Summaries follow the same epoch protocol as document root slots
//! (`DocState::root`): a [`SummarySlot`] holds the current summary plus a
//! chain of `(valid_until, summary)` pre-images. Structural edits compute
//! a [`SummaryDelta`] under the edit latch and defer its application to
//! publish time, so the summary version chain advances atomically with
//! the version-store epoch. A delta that fails to apply (or an edit whose
//! path could not be computed) *invalidates* the current summary instead
//! of corrupting it: the slot records a `None` current, readers fall back
//! to record scans, and the next planned query rebuilds from the tree.
//! The slot map lock is ranked `PATH_SUMMARY` (920): below the version
//! store (publish hooks apply deltas while holding it) and the document
//! root slot, above the id map and the storage band.
//!
//! # Multiplicity and enumerability
//!
//! The step evaluators emit matches *per context*: a descendant step over
//! nested contexts reports a node once per matching ancestor, and nested
//! context subtrees emit out of document order. Both effects are
//! path-computable. [`PathMatch`] therefore carries per-path
//! *multiplicities* (making summary-only counts exact even with nested
//! contexts) and an `enumerable` flag: true iff every intermediate
//! context path set is prefix-free, in which case the evaluators' output
//! is exactly the document-order enumeration of nodes whose path is a
//! final match, each once — the contract the summary-seeded plan relies
//! on.

use std::collections::HashMap;
use std::sync::Arc;

use crate::document::DocId;
use crate::query::{Step, Test};
use natix_xml::{LabelId, SymbolTable, LABEL_TEXT};
use parking_lot::{rank, Mutex};

/// One distinct root-to-node label path.
#[derive(Debug, Clone)]
struct PathNode {
    /// Parent path, `None` for the root path (id 0). Parents are always
    /// created before children, so `parent < own id` everywhere.
    parent: Option<u32>,
    /// Last label on the path (the node's own label).
    label: LabelId,
    /// Whether nodes on this path are literals (text/comment/PI chunks,
    /// attribute values) rather than element facades. Element and
    /// attribute label ids never collide and builtin labels are
    /// literal-only, so `(parent, label)` still identifies the path.
    literal: bool,
    /// Number of facade nodes bearing this path. May drop to zero after
    /// deletes; the path entry is retained (it then contributes nothing).
    nodes: u64,
}

/// Immutable per-document path statistics for one epoch range.
#[derive(Debug, Clone, Default)]
pub struct PathSummary {
    paths: Vec<PathNode>,
    /// `(parent path, child label) -> child path`.
    children: HashMap<(u32, LabelId), u32>,
    total_nodes: u64,
    /// Records backing the document when the summary was built. Exact
    /// only for freshly built summaries; structural edits keep node
    /// counts exact but cannot see record boundaries, so this degrades
    /// to an estimate (`records_exact` flips off).
    total_records: u64,
    records_exact: bool,
}

impl PathSummary {
    /// Number of distinct label paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Total facade nodes in the document.
    pub fn total_nodes(&self) -> u64 {
        self.total_nodes
    }

    /// Records backing the document (see `records_exact`).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Whether `total_records` is exact or a stale-after-edits estimate.
    pub fn records_exact(&self) -> bool {
        self.records_exact
    }

    fn child(&self, parent: u32, label: LabelId) -> Option<u32> {
        self.children.get(&(parent, label)).copied()
    }

    /// Find-or-create the path `parent`/`label`. `parent == None` means
    /// the root path; an existing root must carry the same label.
    fn ensure_child(
        &mut self,
        parent: Option<u32>,
        label: LabelId,
        literal: bool,
    ) -> Result<u32, ()> {
        match parent {
            None => {
                if self.paths.is_empty() {
                    self.paths.push(PathNode {
                        parent: None,
                        label,
                        literal,
                        nodes: 0,
                    });
                    Ok(0)
                } else if self.paths[0].label == label {
                    Ok(0)
                } else {
                    Err(())
                }
            }
            Some(p) => {
                if let Some(c) = self.child(p, label) {
                    return Ok(c);
                }
                let id = self.paths.len() as u32;
                self.paths.push(PathNode {
                    parent: Some(p),
                    label,
                    literal,
                    nodes: 0,
                });
                self.children.insert((p, label), id);
                Ok(id)
            }
        }
    }

    /// Resolve a full root-to-node label path to its path id.
    fn resolve(&self, path: &[LabelId]) -> Option<u32> {
        let (&root, rest) = path.split_first()?;
        if self.paths.is_empty() || self.paths[0].label != root {
            return None;
        }
        let mut cur = 0u32;
        for &l in rest {
            cur = self.child(cur, l)?;
        }
        Some(cur)
    }

    /// Apply a structural-edit delta, producing the successor summary.
    /// `Err` means the delta is inconsistent with this summary (a missing
    /// path, a count underflow) — the caller must invalidate rather than
    /// guess.
    fn apply(&self, delta: &SummaryDelta) -> Result<PathSummary, ()> {
        let mut next = self.clone();
        match delta {
            SummaryDelta::Insert {
                path,
                literal,
                count,
            } => {
                let (&last, prefix) = path.split_last().ok_or(())?;
                let parent = if prefix.is_empty() {
                    None
                } else {
                    Some(next.resolve(prefix).ok_or(())?)
                };
                let id = next.ensure_child(parent, last, *literal)?;
                next.paths[id as usize].nodes += count;
                next.total_nodes += count;
            }
            SummaryDelta::Remove { decrements } => {
                for (path, count) in decrements {
                    let id = next.resolve(path).ok_or(())?;
                    let n = &mut next.paths[id as usize].nodes;
                    *n = n.checked_sub(*count).ok_or(())?;
                    next.total_nodes = next.total_nodes.checked_sub(*count).ok_or(())?;
                }
            }
        }
        next.records_exact = false;
        Ok(next)
    }

    /// Canonical, symbol-resolved form: sorted `(label names root-first,
    /// literal, node count)` triples, zero-count paths dropped. Two
    /// summaries describe the same document iff their canonical forms are
    /// equal — the comparison the reopen/recovery tests rest on.
    pub fn canonical(&self, symbols: &SymbolTable) -> Vec<(Vec<String>, bool, u64)> {
        let mut out = Vec::with_capacity(self.paths.len());
        for (id, p) in self.paths.iter().enumerate() {
            if p.nodes == 0 {
                continue;
            }
            let mut names = Vec::new();
            let mut cur = Some(id as u32);
            while let Some(c) = cur {
                let node = &self.paths[c as usize];
                names.push(symbols.name(node.label).to_string());
                cur = node.parent;
            }
            names.reverse();
            out.push((names, p.literal, p.nodes));
        }
        out.sort();
        out
    }

    fn test_matches(&self, id: u32, test: &Test, resolved: Option<LabelId>) -> bool {
        let p = &self.paths[id as usize];
        match test {
            Test::Name(_) => !p.literal && resolved.is_some_and(|l| p.label == l),
            Test::Any => !p.literal,
            Test::Text => p.literal && p.label == LABEL_TEXT,
        }
    }

    /// `true` iff no path in `set` (mult > 0) has a strict path-ancestor
    /// also in `set`.
    fn prefix_free(&self, set: &[u64]) -> bool {
        // `covered[q]` = some ancestor-or-self of q is in the set. Parents
        // precede children by id, so one ascending pass suffices.
        let mut covered = vec![false; self.paths.len()];
        for q in 0..self.paths.len() {
            let anc = self.paths[q].parent.is_some_and(|p| covered[p as usize]);
            if set[q] > 0 && anc {
                return false;
            }
            covered[q] = anc || set[q] > 0;
        }
        true
    }

    /// Match a resolved, positional-free query at path level. Returns
    /// `None` when any step carries a positional predicate (positions are
    /// not path-decidable). Mirrors the evaluators' semantics exactly:
    /// leading step matches the root itself (descendant = descendant-or-
    /// self of the root), the text test excludes the context node itself
    /// on descendant steps, and `Name` steps with an unresolved label
    /// match nothing.
    pub(crate) fn match_query(&self, steps: &[(&Step, Option<LabelId>)]) -> Option<PathMatch> {
        if steps.iter().any(|(s, _)| s.position.is_some()) {
            return None;
        }
        let n = self.paths.len();
        let mut pm = PathMatch {
            mult: vec![0u64; n],
            closure: vec![false; n],
            matched: 0,
            visited: 0,
            enumerable: true,
        };
        if n == 0 || steps.is_empty() {
            return Some(pm);
        }
        // Virtual context: the root node, multiplicity one. A leading
        // descendant step is then the generic descendant-or-self
        // propagation; a leading non-descendant step matches the context
        // itself (not its children), handled below.
        let mut cur = vec![0u64; n];
        cur[0] = 1;
        for (k, (step, resolved)) in steps.iter().enumerate() {
            let mut next = vec![0u64; n];
            if step.descendant {
                // anc[q] = Σ cur over strict path-ancestors of q; parents
                // precede children by id, so one ascending pass computes
                // it. "Or-self" adds cur[q], except for the text test,
                // which never matches the context node itself.
                let mut anc = vec![0u64; n];
                for q in 0..n {
                    if let Some(p) = self.paths[q].parent {
                        anc[q] = anc[p as usize] + cur[p as usize];
                    }
                    if self.test_matches(q as u32, &step.test, *resolved) {
                        next[q] = anc[q] + if step.test == Test::Text { 0 } else { cur[q] };
                    }
                }
            } else if k == 0 {
                // Leading child-axis step tests the root node itself.
                if self.test_matches(0, &step.test, *resolved) {
                    next[0] = 1;
                }
            } else {
                for (q, slot) in next.iter_mut().enumerate() {
                    if let Some(p) = self.paths[q].parent {
                        if cur[p as usize] > 0 && self.test_matches(q as u32, &step.test, *resolved)
                        {
                            *slot = cur[p as usize];
                        }
                    }
                }
            }
            cur = next;
            // Context sets feeding a later step must be prefix-free for
            // per-context emission to equal dup-free document order.
            if k + 1 < steps.len() && !self.prefix_free(&cur) {
                pm.enumerable = false;
            }
        }
        // Final matches: multiplicities, ancestor closure, node sums.
        for q in (0..n).rev() {
            if cur[q] > 0 {
                pm.matched += cur[q] * self.paths[q].nodes;
                pm.closure[q] = true;
            }
            if pm.closure[q] {
                if let Some(p) = self.paths[q].parent {
                    pm.closure[p as usize] = true;
                }
            }
        }
        for q in 0..n {
            if pm.closure[q] {
                pm.visited += self.paths[q].nodes;
            }
        }
        if cur.iter().any(|&m| m > 1) {
            pm.enumerable = false;
        }
        pm.mult = cur;
        Some(pm)
    }

    /// Child path id for `label` under `parent`, for the summary-seeded
    /// descent.
    pub(crate) fn step_child(&self, parent: u32, label: LabelId) -> Option<u32> {
        self.child(parent, label)
    }
}

/// Path-level result of [`PathSummary::match_query`].
#[derive(Debug)]
pub(crate) struct PathMatch {
    /// Per-path multiplicity of the final match set: how many times each
    /// node bearing the path appears in the evaluators' output (0 = not a
    /// match). Uniform across nodes of one path.
    pub(crate) mult: Vec<u64>,
    /// Ancestor-or-self closure of the final match set: the only paths a
    /// pruned descent needs to visit.
    pub(crate) closure: Vec<bool>,
    /// Exact output cardinality: Σ mult · nodes.
    pub(crate) matched: u64,
    /// Σ nodes over the closure — the pruned descent's visit estimate.
    pub(crate) visited: u64,
    /// Whether the evaluators' output equals the dup-free document-order
    /// enumeration of final-match nodes (see module docs); required by
    /// the summary-seeded plan, irrelevant for counting.
    pub(crate) enumerable: bool,
}

impl PathMatch {
    pub(crate) fn is_empty(&self) -> bool {
        self.matched == 0
    }
}

/// Incremental maintenance unit: computed under the edit latch, applied
/// to the then-current summary inside the publish critical section.
#[derive(Debug)]
pub(crate) enum SummaryDelta {
    /// `count` nodes inserted at the full root-to-node label `path`.
    Insert {
        path: Vec<LabelId>,
        literal: bool,
        count: u64,
    },
    /// A subtree removed: per-path node decrements (full paths).
    Remove {
        decrements: Vec<(Vec<LabelId>, u64)>,
    },
}

/// Epoch-versioned summary holder for one document; mirrors the
/// `DocState::root` slot protocol.
#[derive(Debug, Default)]
struct SummarySlot {
    /// Summary valid from `current_from` onwards; `None` = stale (an edit
    /// delta failed, or a rebuild is pending).
    current: Option<Arc<PathSummary>>,
    current_from: u64,
    /// Superseded summaries: `(valid_until, summary)`, oldest first. A
    /// `None` summary marks an epoch range that was stale.
    old: Vec<(u64, Option<Arc<PathSummary>>)>,
    /// Epochs below this predate the first build — no summary exists for
    /// them.
    born_from: u64,
}

impl SummarySlot {
    fn at(&self, epoch: u64) -> Option<Arc<PathSummary>> {
        if epoch < self.born_from {
            return None;
        }
        for (valid_until, s) in &self.old {
            if *valid_until > epoch {
                return s.clone();
            }
        }
        if epoch >= self.current_from {
            self.current.clone()
        } else {
            None
        }
    }

    fn supersede(&mut self, next: Option<Arc<PathSummary>>, epoch: u64, floor: u64) {
        let prev = self.current.take();
        self.old.push((epoch, prev));
        self.current = next;
        self.current_from = epoch;
        // Pruning a pre-image loses the lower bound of the epoch range it
        // covered, so epochs at or below the pruned boundary must resolve
        // to "no summary" rather than a neighbouring version. No reader
        // can pin below `floor`, so the information is unneeded anyway.
        if let Some(pruned) = self
            .old
            .iter()
            .map(|&(valid_until, _)| valid_until)
            .filter(|&valid_until| valid_until <= floor)
            .max()
        {
            self.born_from = self.born_from.max(pruned);
        }
        self.old.retain(|(valid_until, _)| *valid_until > floor);
    }
}

/// All documents' summary slots, under the `PATH_SUMMARY` lock rank.
#[derive(Debug)]
pub(crate) struct SummaryStore {
    slots: Mutex<HashMap<DocId, SummarySlot>>,
}

impl SummaryStore {
    pub(crate) fn new() -> SummaryStore {
        SummaryStore {
            slots: Mutex::with_rank(&rank::PATH_SUMMARY, HashMap::new()),
        }
    }

    /// Whether the document has a live (non-stale) current summary.
    pub(crate) fn has_current(&self, doc: DocId) -> bool {
        self.slots
            .lock()
            .get(&doc)
            .is_some_and(|s| s.current.is_some())
    }

    /// Whether any slot exists — i.e. whether edits must bother computing
    /// deltas for this document at all.
    pub(crate) fn has_slot(&self, doc: DocId) -> bool {
        self.slots.lock().contains_key(&doc)
    }

    /// Summary visible at `epoch` (`None` epoch = unpinned, current).
    pub(crate) fn summary_at(&self, doc: DocId, epoch: Option<u64>) -> Option<Arc<PathSummary>> {
        let slots = self.slots.lock();
        let slot = slots.get(&doc)?;
        match epoch {
            None => slot.current.clone(),
            Some(e) => slot.at(e),
        }
    }

    /// Install a freshly built summary valid from `from` onwards. Keeps
    /// an existing live summary (a racing rebuild lost); a stale slot
    /// records the gap so older pins keep falling back.
    pub(crate) fn install(&self, doc: DocId, summary: Arc<PathSummary>, from: u64) {
        let mut slots = self.slots.lock();
        let slot = slots.entry(doc).or_insert_with(|| SummarySlot {
            current: None,
            current_from: from,
            old: Vec::new(),
            born_from: from,
        });
        if slot.current.is_some() {
            return;
        }
        if !slot.old.is_empty() || slot.born_from != from {
            slot.old.push((from, None));
        }
        slot.current = Some(summary);
        slot.current_from = from;
    }

    /// Publish-time delta application. A failing delta flips the slot to
    /// stale instead of corrupting it. No-op when the document was never
    /// summarised.
    pub(crate) fn apply_delta(&self, doc: DocId, delta: &SummaryDelta, epoch: u64, floor: u64) {
        let mut slots = self.slots.lock();
        let Some(slot) = slots.get_mut(&doc) else {
            return;
        };
        let Some(cur) = slot.current.clone() else {
            slot.old.retain(|(valid_until, _)| *valid_until > floor);
            return;
        };
        let next = cur.apply(delta).ok().map(Arc::new);
        slot.supersede(next, epoch, floor);
    }

    /// Publish-time invalidation: the edit could not describe itself as a
    /// delta; readers at `epoch` and beyond fall back until a rebuild.
    pub(crate) fn invalidate(&self, doc: DocId, epoch: u64, floor: u64) {
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(&doc) {
            if slot.current.is_some() {
                slot.supersede(None, epoch, floor);
            }
        }
    }

    /// Drop the document's slot entirely (document deleted, or a test
    /// forcing the rebuild path). Pinned readers fall back to scans.
    pub(crate) fn remove(&self, doc: DocId) {
        self.slots.lock().remove(&doc);
    }
}

/// Streaming summary builder: fed the same event order as the bulkloader
/// (or a DOM walk), one call per stored facade node.
#[derive(Debug, Default)]
pub(crate) struct SummaryBuilder {
    summary: PathSummary,
    stack: Vec<u32>,
}

impl SummaryBuilder {
    pub(crate) fn new() -> SummaryBuilder {
        SummaryBuilder::default()
    }

    fn bump(&mut self, label: LabelId, literal: bool) -> u32 {
        let parent = self.stack.last().copied();
        // Infallible: ensure_child only errs on a root-label mismatch,
        // and the builder only ever sees one root.
        let id = self
            .summary
            .ensure_child(parent, label, literal)
            .expect("builder paths are consistent");
        self.summary.paths[id as usize].nodes += 1;
        self.summary.total_nodes += 1;
        id
    }

    pub(crate) fn start_element(&mut self, label: LabelId) {
        let id = self.bump(label, false);
        self.stack.push(id);
    }

    pub(crate) fn literal(&mut self, label: LabelId) {
        self.bump(label, true);
    }

    pub(crate) fn end_element(&mut self) {
        self.stack.pop();
    }

    pub(crate) fn finish(mut self, records: u64) -> PathSummary {
        self.summary.total_records = records;
        self.summary.records_exact = true;
        self.summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PathQuery;

    fn syms() -> (SymbolTable, LabelId, LabelId, LabelId) {
        let mut t = SymbolTable::new();
        let a = t.intern(natix_xml::LabelKind::Element, "a");
        let b = t.intern(natix_xml::LabelKind::Element, "b");
        let c = t.intern(natix_xml::LabelKind::Element, "c");
        (t, a, b, c)
    }

    /// `<a><b><c/><c/>x</b><b/></a>` as builder events.
    fn sample(a: LabelId, b: LabelId, c: LabelId) -> PathSummary {
        let mut s = SummaryBuilder::new();
        s.start_element(a);
        s.start_element(b);
        s.start_element(c);
        s.end_element();
        s.start_element(c);
        s.end_element();
        s.literal(LABEL_TEXT);
        s.end_element();
        s.start_element(b);
        s.end_element();
        s.end_element();
        s.finish(3)
    }

    fn matched(summary: &PathSummary, q: &str, table: &SymbolTable) -> (u64, u64, bool) {
        let q = PathQuery::parse(q).unwrap();
        let resolved: Vec<_> = q
            .steps
            .iter()
            .map(|s| {
                let l = match &s.test {
                    Test::Name(n) => table.lookup_element(n),
                    _ => None,
                };
                (s, l)
            })
            .collect();
        let pm = summary.match_query(&resolved).unwrap();
        (pm.matched, pm.visited, pm.enumerable)
    }

    #[test]
    fn builder_counts_paths_and_nodes() {
        let (table, a, b, c) = syms();
        let s = sample(a, b, c);
        assert_eq!(s.total_nodes(), 6);
        assert_eq!(s.path_count(), 4); // a, a/b, a/b/c, a/b/#text
        assert_eq!(s.total_records(), 3);
        assert!(s.records_exact());
        let canon = s.canonical(&table);
        assert_eq!(canon.len(), 4);
        assert!(canon
            .iter()
            .any(|(p, lit, n)| p == &["a", "b", "c"] && !lit && *n == 2));
    }

    #[test]
    fn match_counts_follow_query_semantics() {
        let (table, a, b, c) = syms();
        let s = sample(a, b, c);
        assert_eq!(matched(&s, "/a/b/c", &table).0, 2);
        assert_eq!(matched(&s, "//c", &table).0, 2);
        assert_eq!(matched(&s, "//b", &table).0, 2);
        assert_eq!(matched(&s, "/a//text()", &table).0, 1);
        assert_eq!(matched(&s, "//zz", &table).0, 0);
        // Pruned visit set for /a/b/c: a(1) + b(2) + c(2) = 5 of 6 nodes.
        let (m, v, enumerable) = matched(&s, "/a/b/c", &table);
        assert_eq!((m, v), (2, 5));
        assert!(enumerable);
    }

    #[test]
    fn nested_contexts_gain_multiplicity_and_lose_enumerability() {
        let (table, a, b, _) = syms();
        // <a><a><b/></a></a>: //a//b emits the b twice (once per `a`).
        let mut s = SummaryBuilder::new();
        s.start_element(a);
        s.start_element(a);
        s.start_element(b);
        s.end_element();
        s.end_element();
        s.end_element();
        let s = s.finish(1);
        let (m, _, enumerable) = matched(&s, "//a//b", &table);
        assert_eq!(m, 2);
        assert!(!enumerable);
        // Single-step queries are always enumerable.
        assert!(matched(&s, "//a", &table).2);
    }

    #[test]
    fn deltas_apply_and_underflow_invalidates() {
        let (_, a, b, c) = syms();
        let s = sample(a, b, c);
        let grown = s
            .apply(&SummaryDelta::Insert {
                path: vec![a, b, c],
                literal: false,
                count: 1,
            })
            .unwrap();
        assert_eq!(grown.total_nodes(), 7);
        assert!(!grown.records_exact());
        let shrunk = grown
            .apply(&SummaryDelta::Remove {
                decrements: vec![(vec![a, b, c], 3)],
            })
            .unwrap();
        assert_eq!(shrunk.total_nodes(), 4);
        assert!(shrunk
            .apply(&SummaryDelta::Remove {
                decrements: vec![(vec![a, b, c], 1)],
            })
            .is_err());
        assert!(s
            .apply(&SummaryDelta::Insert {
                path: vec![b],
                literal: false,
                count: 1,
            })
            .is_err());
    }

    #[test]
    fn slot_versioning_mirrors_root_slot_protocol() {
        let store = SummaryStore::new();
        let (_, a, b, c) = syms();
        let v1 = Arc::new(sample(a, b, c));
        store.install(7, v1.clone(), 0);
        assert!(store.has_current(7));
        assert_eq!(store.summary_at(7, Some(5)).unwrap().total_nodes(), 6);
        // Publish an insert at epoch 10: pins below keep v1.
        store.apply_delta(
            7,
            &SummaryDelta::Insert {
                path: vec![a, b],
                literal: false,
                count: 1,
            },
            10,
            0,
        );
        assert_eq!(store.summary_at(7, Some(9)).unwrap().total_nodes(), 6);
        assert_eq!(store.summary_at(7, Some(10)).unwrap().total_nodes(), 7);
        assert_eq!(store.summary_at(7, None).unwrap().total_nodes(), 7);
        // A failing delta goes stale, not wrong.
        store.apply_delta(
            7,
            &SummaryDelta::Remove {
                decrements: vec![(vec![a, b, c], 100)],
            },
            20,
            0,
        );
        assert!(store.summary_at(7, Some(20)).is_none());
        assert_eq!(store.summary_at(7, Some(12)).unwrap().total_nodes(), 7);
        // Rebuild at epoch 30: the stale gap stays visible to old pins.
        store.install(7, v1, 30);
        assert!(store.summary_at(7, Some(25)).is_none());
        assert!(store.summary_at(7, Some(30)).is_some());
        // Floor-based pruning drops pre-images nobody can pin.
        store.apply_delta(
            7,
            &SummaryDelta::Insert {
                path: vec![a, b],
                literal: false,
                count: 1,
            },
            40,
            35,
        );
        assert!(store.summary_at(7, Some(5)).is_none());
        store.remove(7);
        assert!(!store.has_slot(7));
    }
}
