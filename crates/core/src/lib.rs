//! # natix — a native XML repository
//!
//! Rust reproduction of **NATIX**, the system of *Efficient Storage of XML
//! Data* (Kanne & Moerkotte, ICDE 2000): "an efficient, native repository
//! for storing, retrieving and managing tree-structured large objects,
//! preferably XML documents."
//!
//! The crate wires the paper's architecture (figure 1) together:
//!
//! * the physical **record manager** ([`natix_storage`]): slotted pages,
//!   segments, buffering;
//! * the **tree storage manager** ([`natix_tree`]): the paper's primary
//!   contribution — dynamic clustering of subtrees into records with a
//!   tree-structured split algorithm and split matrix;
//! * the **document manager** ([`document`]): document- and
//!   node-granularity access, schema validation, long-text chunking,
//!   stable logical node ids maintained from relocation events;
//! * the **schema manager** ([`schema`]) and the **system catalog**
//!   ([`catalog`]) — stored, as in the paper, *as an XML document inside
//!   the system itself*;
//! * **index management** ([`index`]) on the page-level B+-tree;
//! * a small **path query evaluator** ([`query`]) sufficient for the
//!   paper's evaluation queries (the full query engine is "not yet
//!   implemented" in the paper as well), plus **parallel query
//!   execution** ([`parallel_query`]): multi-document fan-out and
//!   intra-document descendant scans split at record boundaries;
//! * the **flat-stream baseline** ([`flatfile`]) of §1's taxonomy.
//!
//! ## Quickstart
//!
//! ```
//! use natix::{Repository, RepositoryOptions};
//!
//! let mut repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
//! repo.put_xml("hello", "<SPEECH><SPEAKER>OTHELLO</SPEAKER>\
//!                        <LINE>Let me see your eyes;</LINE></SPEECH>").unwrap();
//! let back = repo.get_xml("hello").unwrap();
//! assert!(back.contains("OTHELLO"));
//! let speakers = repo.query("hello", "/SPEECH/SPEAKER").unwrap();
//! assert_eq!(speakers.len(), 1);
//! ```

pub mod catalog;
pub mod document;
pub mod error;
pub mod flatfile;
pub mod index;
pub mod ingest;
pub mod parallel_query;
pub mod path_summary;
pub mod query;
pub(crate) mod recovery;
pub mod repository;
pub mod schema;

pub use document::{DocId, NodeId, NodeKind, NodeSummary};
pub use error::{NatixError, NatixResult};
pub use flatfile::FlatStore;
pub use index::LabelIndex;
pub use parallel_query::ParallelQueryOptions;
pub use path_summary::PathSummary;
pub use query::{PathQuery, PlanExplain, PlanShape, PlannerOptions};
pub use repository::{Repository, RepositoryOptions};
pub use schema::SchemaManager;

// Re-exports for downstream crates (harness, examples).
pub use natix_storage::{DiskProfile, IoStats, Rid};
pub use natix_tree::{PhysicalStats, ReadPin, SplitBehaviour, SplitMatrix, TreeConfig};
pub use natix_xml::{Document, LiteralValue, NodeData, SymbolTable};
