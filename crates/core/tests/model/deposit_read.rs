//! Scenario 2: deposit-before-write vs a concurrent snapshot load.
//!
//! Record-level versioning's core rule: a writer must deposit a record's
//! pre-image into the version store *before* overwriting the record in
//! place, so a reader pinned at an older epoch resolves the deposited
//! image via `lookup` instead of the writer's in-progress bytes. The
//! scenario pins a reader, lets a writer replace a text value (an
//! in-place record update, no structural move), and asserts the pinned
//! view is stable at every point of every interleaving.

use std::sync::Arc;

use natix::{NodeKind, Repository, RepositoryOptions};
use parking_lot::model;

use crate::util;

fn scenario() {
    let r = Arc::new(
        Repository::create_in_memory(RepositoryOptions {
            page_size: 512,
            ..RepositoryOptions::default()
        })
        .unwrap(),
    );
    let doc = r
        .put_xml_streaming("doc", "<r><a>alpha</a><b>beta</b></r>")
        .unwrap();
    let root = r.root(doc).unwrap();
    // The text node under <a>: the in-place update target.
    let a_el = r.children(doc, root).unwrap()[0];
    let a_text = r.children(doc, a_el).unwrap()[0];
    assert_eq!(r.node_summary(doc, a_text).unwrap().kind, NodeKind::Literal);

    let snap = r.read_snapshot();
    let before = r.get_xml("doc").unwrap();
    assert!(before.contains("alpha"));

    let writer = {
        let r = Arc::clone(&r);
        model::spawn(move || {
            r.update_text(doc, a_text, "REPLACED").unwrap();
        })
    };

    // Races the writer's deposit + in-place overwrite + publish.
    let mid = r.get_xml("doc").unwrap();
    assert_eq!(
        mid, before,
        "pinned reader mixed a writer's in-progress image into its snapshot"
    );

    writer.join();
    let after = r.get_xml("doc").unwrap();
    assert_eq!(after, before, "pinned reader saw the published overwrite");

    drop(snap);
    let fresh = r.get_xml("doc").unwrap();
    assert!(fresh.contains("REPLACED"), "fresh read must see the update");
    assert!(!fresh.contains("alpha"));
}

#[test]
fn pinned_reader_resolves_deposited_preimage() {
    util::assert_clean("deposit-read", 60, 60, scenario);
}
