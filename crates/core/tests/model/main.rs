//! Deterministic model-checking suite (natix-model) for the engine's
//! concurrency protocols. Compiled only with the `model` feature:
//!
//! ```text
//! cargo test -p natix --features model --test model
//! ```
//!
//! Each scenario runs its protocol under the shim's deterministic
//! scheduler in two modes — bounded-exhaustive DFS and seeded random
//! (PCT-flavoured) — and every failure prints a schedule token that
//! replays the exact interleaving. The mutation tests revert a named
//! production guard via the fail-point registry
//! ([`parking_lot::fail_point`]) and assert the checker catches the
//! resulting protocol violation, then replays the reported token to
//! prove the catch is deterministic.
//!
//! Environment knobs (used by the CI `model-check` job):
//! - `NATIX_MODEL_SEED`: base seed for the random mode (default fixed);
//! - `NATIX_MODEL_SCHEDULES`: random schedules per scenario.
#![cfg(feature = "model")]

mod util;

mod buffer_coalesce;
mod deposit_read;
mod path_summary;
mod root_publish;
mod wal_commit;
