//! Shared driver helpers for the model scenarios: run a body clean under
//! both exploration modes (logging the seed so CI output is replayable),
//! and the mutation harness (catch + deterministic replay).

use parking_lot::model::{self, Config};

/// Base seed for the random mode; override with `NATIX_MODEL_SEED`.
pub fn base_seed() -> u64 {
    std::env::var("NATIX_MODEL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x4E41_5449_5830)
}

/// Random schedules per scenario; override with `NATIX_MODEL_SCHEDULES`.
pub fn random_schedules(default: usize) -> usize {
    std::env::var("NATIX_MODEL_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Explore `body` with no mutations under bounded-exhaustive DFS and
/// then under seeded random scheduling; panic (with a replay token) on
/// any failing schedule.
pub fn assert_clean<F: Fn()>(name: &str, exhaustive_cap: usize, rand_default: usize, body: F) {
    let cfg = Config::exhaustive().with_max_schedules(exhaustive_cap);
    let r = model::explore(&cfg, &body);
    println!(
        "model[{name}]: exhaustive clean over {} schedules ({} pruned)",
        r.schedules, r.pruned
    );
    let seed = base_seed();
    let n = random_schedules(rand_default);
    let r = model::explore(&Config::random(seed, n), &body);
    println!(
        "model[{name}]: random clean over {} schedules (seed {seed:#x})",
        r.schedules
    );
}

/// Revert the named production guard and assert the checker catches the
/// violation, that the failure carries `needle`, and that replaying the
/// reported token reproduces the identical failure.
///
/// Detection first tries `cap` bounded-exhaustive schedules; if the
/// buggy interleaving diverges early (DFS backtracks tail-first, so
/// early divergences are reached last) it falls back to seeded random
/// exploration, which preempts anywhere.
pub fn assert_mutation_caught<F: Fn()>(
    name: &str,
    mutation: &str,
    needle: &str,
    cap: usize,
    body: F,
) {
    let cfg = Config::exhaustive()
        .with_max_schedules(cap)
        .with_mutation(mutation);
    let failure = match model::explore_result(&cfg, &body) {
        Err(f) => f,
        Ok(_) => {
            let seed = base_seed();
            let n = random_schedules(300).max(cap);
            model::explore_result(&Config::random(seed, n).with_mutation(mutation), &body)
                .expect_err(&format!(
                    "model[{name}]: reverting guard '{mutation}' went undetected over \
                     {cap} exhaustive + {n} random schedules (seed {seed:#x})"
                ))
        }
    };
    assert!(
        failure.message.contains(needle),
        "model[{name}]: unexpected failure for '{mutation}': {failure}"
    );
    println!("model[{name}]: mutation '{mutation}' caught — {failure}");
    let replay_cfg = Config::replay(&failure.token).with_mutation(mutation);
    let replay = model::explore_result(&replay_cfg, &body).expect_err(&format!(
        "model[{name}]: token '{}' did not replay the '{mutation}' failure",
        failure.token
    ));
    assert_eq!(
        replay.message, failure.message,
        "model[{name}]: replay of '{}' reproduced a different failure",
        failure.token
    );
}
