//! Scenario 4: WAL group commit and the force-before-write-back rule.
//!
//! Two protocols share the log's watermark pair (`appended`, `durable`),
//! both tracked atomics under the model:
//!
//! - **Group commit**: concurrent committers append, then `sync_to`
//!   their own end LSN. One becomes the sync leader and flushes the
//!   shared tail; followers wait on the log's condvar and re-check the
//!   durable watermark. Whatever the interleaving, a committer returning
//!   from `sync_to` must observe `durable >= its own LSN`.
//! - **The WAL rule**: the buffer manager must force the log before a
//!   dirty page steal overwrites the page's base image on disk
//!   (`BufferManager::wal_barrier`). [`LsnCheckDisk`] turns the rule
//!   into a checkable assertion: `write_page` of a page covered by a
//!   commit record fails unless the log is already durable past that
//!   record.
//!
//! Named guard: `wal.force-before-write-back` (`wal_barrier`). Reverting
//! it lets a steal write a committed page whose log tail is still
//! buffered — the classic lost-redo crash window — which the LSN check
//! catches on the very write.

use std::collections::HashMap;
use std::sync::{Arc, Mutex as StdMutex, OnceLock};

use natix_storage::{
    BufferManager, DiskBackend, EvictionPolicy, IoStats, MemLogDevice, MemStorage, PageId,
    StorageResult, Wal, WalSyncMode,
};
use parking_lot::model;

use crate::util;

/// A disk that enforces the WAL rule as a hard assertion: pages with a
/// registered requirement may only be written back once the log is
/// durable past the commit record that covered them.
struct LsnCheckDisk {
    inner: MemStorage,
    wal: OnceLock<Arc<Wal>>,
    /// Harness bookkeeping (std mutex): the map is copied out before the
    /// tracked `durable_lsn` load so no model decision point runs under
    /// this lock.
    required: StdMutex<HashMap<PageId, u64>>,
}

impl LsnCheckDisk {
    fn new(page_size: usize) -> LsnCheckDisk {
        let inner = MemStorage::new(page_size).unwrap();
        inner.grow(8).unwrap();
        LsnCheckDisk {
            inner,
            wal: OnceLock::new(),
            required: StdMutex::new(HashMap::new()),
        }
    }

    fn set_wal(&self, wal: Arc<Wal>) {
        let _ = self.wal.set(wal);
    }

    /// From now on, writing `page` back requires `durable_lsn >= lsn`.
    fn require(&self, page: PageId, lsn: u64) {
        self.required.lock().unwrap().insert(page, lsn);
    }
}

impl DiskBackend for LsnCheckDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        self.inner.read_page(page, buf)
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        let required = self.required.lock().unwrap().get(&page).copied();
        if let Some(lsn) = required {
            let durable = self.wal.get().expect("wal attached").durable_lsn();
            assert!(
                durable >= lsn,
                "WAL rule violated: page {page} written back at durable_lsn {durable} \
                 but its commit record ends at {lsn}"
            );
        }
        self.inner.write_page(page, buf)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        self.inner.grow(new_count)
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }
}

/// Two committers race through group commit; each must come back with
/// its own record durable, and draining both leaves no unsynced tail.
fn group_commit() {
    let wal = Arc::new(Wal::new(Box::new(MemLogDevice::new()), WalSyncMode::Group));

    let committers: Vec<_> = (0..2u64)
        .map(|op| {
            let wal = Arc::clone(&wal);
            model::spawn(move || {
                let lsn = wal.append_commit_batch(op, vec![(op as PageId, vec![op as u8; 16])]);
                wal.sync_to(lsn).unwrap();
                let durable = wal.durable_lsn();
                assert!(
                    durable >= lsn,
                    "committer {op} returned from sync_to with durable_lsn {durable} < its LSN {lsn}"
                );
            })
        })
        .collect();
    for c in committers {
        c.join();
    }

    assert_eq!(
        wal.durable_lsn(),
        wal.appended_lsn(),
        "both committers synced, so the log has no unsynced tail"
    );
}

/// Dirties two pages, logs their commit record *without* syncing it
/// (group mode buffers), then forces steals. The write-backs are legal
/// only because `wal_barrier` forces the log first — which the disk
/// checks on every write.
fn steal_forces_log() {
    let disk = Arc::new(LsnCheckDisk::new(512));
    let bm = BufferManager::new(
        Arc::clone(&disk) as Arc<dyn DiskBackend>,
        2,
        EvictionPolicy::Lru,
        IoStats::new_shared(),
    );
    let wal = Arc::new(Wal::new(Box::new(MemLogDevice::new()), WalSyncMode::Group));
    disk.set_wal(Arc::clone(&wal));
    bm.set_wal(Arc::clone(&wal));

    // Dirty pages 0 and 1 (pin_new zero-fills and marks dirty).
    drop(bm.pin_new(0).unwrap());
    drop(bm.pin_new(1).unwrap());

    // Commit both pages; group mode leaves the record buffered.
    let lsn = wal.append_commit_batch(7, vec![(0, vec![0xAA; 16]), (1, vec![0xBB; 16])]);
    assert!(
        wal.durable_lsn() < lsn,
        "the commit must still be buffered for the scenario to exercise the barrier"
    );
    disk.require(0, lsn);
    disk.require(1, lsn);

    // A third page in a two-frame pool steals a dirty frame; the barrier
    // must make the log durable before the victim's bytes reach disk.
    drop(bm.pin_new(2).unwrap());
    assert!(
        wal.durable_lsn() >= lsn,
        "a dirty steal ran, so the barrier must have forced the log"
    );
    bm.validate_frame_table().unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn group_commit_watermarks_hold_in_every_interleaving() {
    util::assert_clean("wal-commit/group", 300, 150, group_commit);
}

#[test]
fn steal_write_back_forces_the_log_first() {
    util::assert_clean("wal-commit/steal", 20, 20, steal_forces_log);
}

#[test]
fn mutation_force_before_write_back_is_caught() {
    // The body is sequential, so the reverted barrier trips the disk's
    // LSN check in the very first schedule.
    util::assert_mutation_caught(
        "wal-commit/steal",
        "wal.force-before-write-back",
        "WAL rule violated",
        10,
        steal_forces_log,
    );
}
