//! Scenario 5: path-summary delta publication vs an epoch-pinned reader.
//!
//! The path summary follows the same epoch protocol as document root
//! slots: a structural edit publishes a superseding summary and pushes
//! the pre-image onto a `(valid_until, summary)` chain, so a reader
//! pinned behind the edit keeps resolving *its* epoch's statistics. The
//! scenario pins a reader and runs summary-served counts against a
//! concurrent writer appending matching elements, differentially checked
//! against the forced sequential lazy walk (which answers from the
//! record store, not the summary) — the two must agree at every point of
//! every interleaving, and stay at the pinned epoch's value until the
//! pin drops.

use std::sync::Arc;

use natix::{ParallelQueryOptions, PlanShape, PlannerOptions, Repository, RepositoryOptions};
use natix_tree::InsertPos;
use parking_lot::model;

use crate::util;

const INSERTS: u64 = 3;

/// Planner options pinned to one worker thread: the model only schedules
/// threads it spawned itself, so scenarios must keep the engine's own
/// thread pools out of play.
fn opts(force: Option<PlanShape>) -> PlannerOptions {
    PlannerOptions {
        force,
        exec: ParallelQueryOptions {
            threads: 1,
            ..ParallelQueryOptions::default()
        },
        ..PlannerOptions::default()
    }
}

/// Counts `//a` twice — planner's choice (summary-served when current)
/// and the forced lazy walk — and requires them to agree.
fn count_both(r: &Repository) -> u64 {
    let (summary, _) = r.count_planned("doc", "//a", &opts(None)).unwrap();
    let (walked, _) = r
        .count_planned("doc", "//a", &opts(Some(PlanShape::LazyWalk)))
        .unwrap();
    assert_eq!(
        summary, walked,
        "summary-served count disagrees with the lazy reference walk"
    );
    summary
}

fn scenario() {
    let r = Arc::new(
        Repository::create_in_memory(RepositoryOptions {
            page_size: 512,
            ..RepositoryOptions::default()
        })
        .unwrap(),
    );
    let doc = r
        .put_xml_streaming("doc", "<r><a>x</a><b>y</b></r>")
        .unwrap();
    let root = r.root(doc).unwrap();

    let snap = r.read_snapshot();
    let before = count_both(&r);
    assert_eq!(before, 1);

    let writer = {
        let r = Arc::clone(&r);
        model::spawn(move || {
            for _ in 0..INSERTS {
                r.insert_element(doc, root, InsertPos::Last, "a").unwrap();
            }
        })
    };

    // Races the writer's summary-delta publications.
    let mid = count_both(&r);
    assert_eq!(mid, before, "pinned count drifted mid-publication");

    writer.join();
    // All deltas are published; the pin still resolves the old summary.
    let after = count_both(&r);
    assert_eq!(after, before, "pinned reader saw a published summary delta");

    drop(snap);
    let fresh = count_both(&r);
    assert_eq!(
        fresh,
        before + INSERTS,
        "unpinned read must see every published delta"
    );
}

#[test]
fn pinned_reader_keeps_its_epochs_summary() {
    util::assert_clean("path-summary", 60, 60, scenario);
}
