//! Scenario 3: buffer-pool in-flight coalescing between demand pins and
//! prefetch, plus the condvar lost-wakeup protocol of the in-flight wait.
//!
//! The pool's contract: at most one frame ever loads a given page, no
//! matter how a demand pin races a prefetch of the same page. Both sides
//! rely on the `io_in_flight` set — a demand pin finding its page in
//! flight blocks on the `io_done` condvar and *re-checks the whole
//! predicate* after every wake (wakes can be spurious or for another
//! page), and a prefetch skips pages already in flight.
//!
//! To create the race window deterministically the scenarios wrap the
//! disk in [`GatedDisk`]: the first physical read of a target page
//! signals the main task and then blocks on a shim condvar (a
//! model-visible decision point) until the scenario opens the gate —
//! guaranteeing the overlap exists in every explored schedule.
//!
//! Named guards:
//! - `buffer.inflight-recheck` (`BufferManager::pin_inner`): reverting
//!   the predicate re-check treats any wake as "my page is ready" — the
//!   lost-wakeup/spurious-wakeup bug — and claims a second frame for a
//!   page already being loaded.
//! - `buffer.prefetch-coalesce` (`BufferManager::prefetch`): reverting
//!   the in-flight skip makes read-ahead double-load a page a demand pin
//!   is fetching right now.
//!
//! Both revertions are caught by [`BufferManager::validate_frame_table`]
//! as a duplicate-frame state.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use natix_storage::{
    BufferManager, DiskBackend, EvictionPolicy, IoStats, MemStorage, PageId, StorageResult,
};
use parking_lot::{model, Condvar, Mutex};

use crate::util;

const TARGET: PageId = 0;
const FRAMES: usize = 4;

#[derive(Default)]
struct GateState {
    /// First physical read of the target page has started.
    claimed: bool,
    /// The scenario has released the blocked reader.
    open: bool,
}

/// A disk whose *first* physical read of `TARGET` announces itself and
/// then blocks until the scenario opens the gate. The gate uses the shim
/// `Mutex`/`Condvar`, so blocking and waking are schedule decision
/// points the model explores like any other. Later reads of the target
/// pass straight through (that is the double-load the mutations cause),
/// counted in `target_reads`.
struct GatedDisk {
    inner: MemStorage,
    gate: Mutex<GateState>,
    gate_cv: Condvar,
    /// Harness bookkeeping only (read after the tasks join) — a plain
    /// std atomic keeps it out of the explored schedule space.
    target_reads: AtomicUsize,
}

impl GatedDisk {
    fn new(page_size: usize) -> GatedDisk {
        let inner = MemStorage::new(page_size).unwrap();
        inner.grow(4).unwrap();
        GatedDisk {
            inner,
            gate: Mutex::new(GateState::default()),
            gate_cv: Condvar::new(),
            target_reads: AtomicUsize::new(0),
        }
    }

    /// Blocks the caller until the first target read is inside the gate
    /// (at which point the page is claimed and marked in flight).
    fn wait_claimed(&self) {
        let mut st = self.gate.lock();
        while !st.claimed {
            st = self.gate_cv.wait(st);
        }
    }

    fn open(&self) {
        self.gate.lock().open = true;
        self.gate_cv.notify_all();
    }
}

impl DiskBackend for GatedDisk {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, page: PageId, buf: &mut [u8]) -> StorageResult<()> {
        if page == TARGET {
            let first = self.target_reads.fetch_add(1, Ordering::SeqCst) == 0;
            if first {
                let mut st = self.gate.lock();
                st.claimed = true;
                self.gate_cv.notify_all();
                while !st.open {
                    st = self.gate_cv.wait(st);
                }
            }
        }
        self.inner.read_page(page, buf)
    }

    fn write_page(&self, page: PageId, buf: &[u8]) -> StorageResult<()> {
        self.inner.write_page(page, buf)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn grow(&self, new_count: u64) -> StorageResult<()> {
        self.inner.grow(new_count)
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }
}

fn pool() -> (Arc<GatedDisk>, Arc<BufferManager>) {
    let disk = Arc::new(GatedDisk::new(512));
    let bm = Arc::new(BufferManager::new(
        Arc::clone(&disk) as Arc<dyn DiskBackend>,
        FRAMES,
        EvictionPolicy::Lru,
        IoStats::new_shared(),
    ));
    (disk, bm)
}

/// Prefetch claims the target and blocks in the gate; a demand pin then
/// arrives, finds the page in flight, and must coalesce: wait on
/// `io_done`, re-check after every wake, and end up a table hit. One
/// physical read total. This is also the lost-wakeup protocol proof —
/// the model's condvar injects spurious wakeups, so clean exploration
/// shows the wait survives wakes that are not "page ready".
fn prefetch_then_pin() {
    let (disk, bm) = pool();

    let prefetcher = {
        let bm = Arc::clone(&bm);
        model::spawn(move || bm.prefetch(&[TARGET]).unwrap())
    };
    disk.wait_claimed();

    // The target is claimed and in flight; this pin must coalesce on it.
    let pinner = {
        let bm = Arc::clone(&bm);
        model::spawn(move || {
            let p = bm.pin(TARGET).unwrap();
            drop(p);
        })
    };
    disk.open();

    let prefetched = prefetcher.join();
    pinner.join();

    bm.validate_frame_table().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(prefetched, 1, "prefetch claimed the target, so it read it");
    assert_eq!(
        disk.target_reads.load(Ordering::SeqCst),
        1,
        "demand pin racing an in-flight prefetch must coalesce, not re-read"
    );
}

/// The mirror image: a demand pin claims the target and blocks in the
/// gate; a prefetch of the same page then runs and must skip it as
/// in-flight (returning 0 pages read) instead of claiming a second
/// frame.
fn pin_then_prefetch() {
    let (disk, bm) = pool();

    let pinner = {
        let bm = Arc::clone(&bm);
        model::spawn(move || {
            let p = bm.pin(TARGET).unwrap();
            drop(p);
        })
    };
    disk.wait_claimed();

    // The target is in flight: read-ahead must coalesce (skip it).
    let prefetched = bm.prefetch(&[TARGET]).unwrap();

    disk.open();
    pinner.join();

    bm.validate_frame_table().unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(
        prefetched, 0,
        "prefetch must skip a page a demand pin is loading right now"
    );
    assert_eq!(disk.target_reads.load(Ordering::SeqCst), 1);
}

#[test]
fn demand_pin_coalesces_with_inflight_prefetch() {
    util::assert_clean(
        "buffer-coalesce/prefetch-then-pin",
        200,
        100,
        prefetch_then_pin,
    );
}

#[test]
fn prefetch_coalesces_with_inflight_demand_pin() {
    util::assert_clean(
        "buffer-coalesce/pin-then-prefetch",
        200,
        100,
        pin_then_prefetch,
    );
}

/// Satellite (d): the lost-wakeup mutation. Reverting the wait's
/// predicate re-check makes the demand pin treat its first wake —
/// spurious or merely "some I/O settled" — as "my page is resident" and
/// fall through to claim a second frame for the in-flight page.
#[test]
fn mutation_inflight_recheck_is_caught() {
    util::assert_mutation_caught(
        "buffer-coalesce/prefetch-then-pin",
        "buffer.inflight-recheck",
        "buffer invariant violated",
        200,
        prefetch_then_pin,
    );
}

#[test]
fn mutation_prefetch_coalesce_is_caught() {
    util::assert_mutation_caught(
        "buffer-coalesce/pin-then-prefetch",
        "buffer.prefetch-coalesce",
        "buffer invariant violated",
        50,
        pin_then_prefetch,
    );
}
