//! Scenario 1: root-slot publish vs a pinned snapshot reader.
//!
//! A reader pins a snapshot and serialises the document; a concurrent
//! writer inserts enough children to force a record split of the *root
//! record*, which relocates the root and publishes a root move through
//! the epoch-versioned root slot. Snapshot isolation demands the pinned
//! reader keep resolving the root of *its* epoch — before, during, and
//! after the publish.
//!
//! Named guard: `root-slot.epoch-recheck` (`DocState::root_rid_at`).
//! Reverting it hands the pinned reader the current root, whose record
//! images belong to a later epoch — the reads below stop agreeing.

use std::sync::Arc;

use natix::{Repository, RepositoryOptions};
use natix_tree::InsertPos;
use parking_lot::model;

use crate::util;

fn repo() -> Arc<Repository> {
    Arc::new(
        Repository::create_in_memory(RepositoryOptions {
            page_size: 512,
            ..RepositoryOptions::default()
        })
        .unwrap(),
    )
}

const SEED_XML: &str = "<r><a>seed</a></r>";

/// Smallest number of root-appended elements that relocates the root
/// record (a root split) at this page size — measured outside the model
/// so the scenario stays as small as possible.
fn root_move_inserts() -> usize {
    let r = repo();
    let doc = r.put_xml_streaming("doc", SEED_XML).unwrap();
    let root = r.root(doc).unwrap();
    let rid0 = r.root_rid(doc).unwrap();
    for i in 1..=400 {
        r.insert_element(doc, root, InsertPos::Last, "padpadpad")
            .unwrap();
        if r.root_rid(doc).unwrap() != rid0 {
            return i;
        }
    }
    panic!("400 inserts never moved the root record");
}

fn scenario(inserts: usize) {
    let r = repo();
    let doc = r.put_xml_streaming("doc", SEED_XML).unwrap();
    let root = r.root(doc).unwrap();
    let rid0 = r.root_rid(doc).unwrap();

    let snap = r.read_snapshot();
    let before = r.get_xml("doc").unwrap();

    let writer = {
        let r = Arc::clone(&r);
        model::spawn(move || {
            for _ in 0..inserts {
                r.insert_element(doc, root, InsertPos::Last, "padpadpad")
                    .unwrap();
            }
            // Unpinned thread: sees the current (post-publish) root.
            r.root_rid(doc).unwrap()
        })
    };

    // Concurrent with the writer: the pinned view must not drift no
    // matter where the root move lands between these reads.
    let mid = r.get_xml("doc").unwrap();
    assert_eq!(mid, before, "pinned snapshot drifted mid-write");

    let rid_published = writer.join();
    assert_ne!(
        rid_published, rid0,
        "scenario must force a root move to be meaningful"
    );

    // The writer has fully published a root move; the pin still resolves
    // the old epoch's root.
    let after = r.get_xml("doc").unwrap();
    assert_eq!(after, before, "pinned snapshot saw a published root move");

    drop(snap);
    let fresh = r.get_xml("doc").unwrap();
    assert!(
        fresh.len() > before.len(),
        "unpinned read must see the writer's inserts"
    );
}

#[test]
fn pinned_reader_survives_published_root_move() {
    let inserts = root_move_inserts();
    util::assert_clean("root-publish", 40, 40, || scenario(inserts));
}

#[test]
fn mutation_root_slot_epoch_recheck_is_caught() {
    let inserts = root_move_inserts();
    // Any schedule catches this: the post-join reads are sequential with
    // the fully published root move, so the reverted guard resolves the
    // new root under the old pin deterministically.
    util::assert_mutation_caught("root-publish", "root-slot.epoch-recheck", "", 10, || {
        scenario(inserts)
    });
}
