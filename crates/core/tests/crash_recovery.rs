//! Crash-injection recovery tests: nothing committed is ever lost.
//!
//! The harness runs a deterministic workload (ingest / edit / delete /
//! checkpoint over corpus documents) against a repository whose page store
//! and log device share one [`FaultControl`] write budget. When the budget
//! runs out the "machine" dies fail-stop: every further write and fsync
//! fails, and only what an fsync already made durable survives. The
//! workload stops at the first error, the dead repository is dropped, and
//! the store is reopened over the durable images — recovery replays the
//! log.
//!
//! After reopen the harness asserts, for every kill point:
//!
//! * every **acknowledged** operation (its API call returned `Ok`) is
//!   byte-for-byte present: each committed document serializes exactly to
//!   the oracle copy recorded when the operation returned;
//! * the single **in-flight** operation is atomic: the affected document
//!   is either untouched (its pre-state) or carries the complete effect of
//!   the operation (computed by replaying the same step on a scratch
//!   repository) — never a torn intermediate;
//! * no other document exists, and the recovered repository is fully
//!   writable (a fresh document round-trips, and survives a second
//!   clean reopen).
//!
//! Kill points sweep the whole post-creation write sequence: a baseline
//! run counts the writes of the uncrashed workload, then `KILL_POINTS`
//! budgets are spread evenly across that range, so crashes land inside
//! bulkloads, edits, commit syncs and checkpoints alike. Everything is
//! seeded — failures reproduce exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use natix::{NatixResult, PlanShape, PlannerOptions, Repository, RepositoryOptions};
use natix_corpus::{
    generate_deep, generate_orders, generate_play, CorpusConfig, DeepConfig, OrdersConfig,
};
use natix_storage::wal::{MemLogDevice, Wal, WalRecord, WalSyncMode};
use natix_storage::{DiskBackend, FaultControl, FaultDisk, MemStorage};
use natix_tree::InsertPos;
use natix_xml::{write_document, SymbolTable, WriteOptions};

/// Kill points per corpus (the CI floor is 50).
const KILL_POINTS: u64 = 50;

const PAGE: usize = 4096;

fn options() -> RepositoryOptions {
    RepositoryOptions {
        page_size: PAGE,
        // A small pool forces evictions mid-operation, exercising the
        // write-ahead rule (log forced before a dirty page leaves the
        // pool) and mid-operation log syncs.
        buffer_bytes: 48 * PAGE,
        ..RepositoryOptions::default()
    }
}

// ---------------------------------------------------------------------------
// Corpora: small deterministic documents from the three generators.
// ---------------------------------------------------------------------------

fn shakespeare_docs() -> Vec<(String, String)> {
    let mut syms = SymbolTable::new();
    let cfg = CorpusConfig {
        plays: 37,
        seed: 0x5EED_CAFE,
        scale: 0.02,
    };
    (0..5)
        .map(|i| {
            let play = generate_play(&cfg, i, &mut syms);
            let xml = write_document(&play.doc, &syms, WriteOptions::compact()).unwrap();
            (format!("play{i}"), xml)
        })
        .collect()
}

fn orders_docs() -> Vec<(String, String)> {
    (0..5)
        .map(|i| {
            let mut syms = SymbolTable::new();
            let cfg = OrdersConfig {
                orders: 25,
                seed: 0xBEEF_0000 + i as u64,
            };
            let doc = generate_orders(&cfg, &mut syms);
            let xml = write_document(&doc, &syms, WriteOptions::compact()).unwrap();
            (format!("orders{i}"), xml)
        })
        .collect()
}

fn deep_docs() -> Vec<(String, String)> {
    (0..5)
        .map(|i| {
            let mut syms = SymbolTable::new();
            let cfg = DeepConfig {
                depth: 80 + 15 * i,
                payload_every: 2,
                sidecar_every: 3,
                straggler_every: 4,
                seed: 0xDE00_0000 + i as u64,
            };
            let doc = generate_deep(&cfg, &mut syms);
            let xml = write_document(&doc, &syms, WriteOptions::compact()).unwrap();
            (format!("deep{i}"), xml)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Workload: a fixed step script, each step one acknowledged operation.
// ---------------------------------------------------------------------------

/// One durable operation. Steps are *structural* — they resolve their
/// target nodes relative to the document root at execution time — so the
/// same step applied to the same document bytes has the same effect on
/// any repository (which is what lets a scratch repository compute the
/// expected post-state of an in-flight step).
#[derive(Clone, Debug)]
enum Step {
    /// Ingest `docs[i]` through the streaming bulkloader.
    Put(usize),
    /// Delete document `i`.
    Delete(usize),
    /// Append `<ANNEXk/>` under the root of document `i`.
    AnnexEl(usize, u32),
    /// Append a text literal under the root of document `i`.
    AnnexText(usize, u32),
    /// Delete the last child of the root of document `i`.
    Prune(usize),
    /// Checkpoint: flush everything, truncate the log if quiesced.
    Checkpoint,
}

impl Step {
    /// The document a step touches (`None` for checkpoints).
    fn doc(&self) -> Option<usize> {
        match *self {
            Step::Put(i)
            | Step::Delete(i)
            | Step::AnnexEl(i, _)
            | Step::AnnexText(i, _)
            | Step::Prune(i) => Some(i),
            Step::Checkpoint => None,
        }
    }
}

/// The script: ingests all five documents with edits, deletions,
/// re-ingestion and checkpoints interleaved.
fn script() -> Vec<Step> {
    use Step::*;
    vec![
        Put(0),
        Put(1),
        AnnexText(0, 1),
        Checkpoint,
        Put(2),
        AnnexEl(1, 1),
        Delete(0),
        Put(3),
        Prune(1),
        AnnexText(2, 2),
        Checkpoint,
        Put(4),
        Put(0),
        AnnexEl(4, 2),
        Delete(2),
        AnnexText(3, 3),
        Prune(3),
        Checkpoint,
        AnnexText(4, 4),
    ]
}

fn apply_step(repo: &Repository, docs: &[(String, String)], step: &Step) -> NatixResult<()> {
    match *step {
        Step::Put(i) => {
            repo.put_xml_streaming(&docs[i].0, &docs[i].1)?;
        }
        Step::Delete(i) => repo.delete_document(&docs[i].0)?,
        Step::AnnexEl(i, k) => {
            let d = repo.doc_id(&docs[i].0)?;
            let root = repo.root(d)?;
            repo.insert_element(d, root, InsertPos::Last, &format!("ANNEX{k}"))?;
        }
        Step::AnnexText(i, k) => {
            let d = repo.doc_id(&docs[i].0)?;
            let root = repo.root(d)?;
            repo.insert_text(
                d,
                root,
                InsertPos::Last,
                &format!("crash harness payload {k}"),
            )?;
        }
        Step::Prune(i) => {
            let d = repo.doc_id(&docs[i].0)?;
            let root = repo.root(d)?;
            let kids = repo.children(d, root)?;
            if let Some(&last) = kids.last() {
                repo.delete_node(d, last)?;
            }
        }
        Step::Checkpoint => repo.checkpoint()?,
    }
    Ok(())
}

/// What the fault run reports back: the oracle of acknowledged state and
/// the step (if any) that was cut down by the injected crash.
struct DriveOutcome {
    /// name → last acknowledged serialization, for every live document.
    oracle: BTreeMap<String, String>,
    /// The in-flight step, with the affected document's pre-state.
    crashed: Option<(Step, Option<String>)>,
}

/// Runs the script until the first error (fail-stop), maintaining the
/// oracle from re-serialization after every acknowledged step.
fn drive(repo: &Repository, docs: &[(String, String)]) -> DriveOutcome {
    let mut oracle = BTreeMap::new();
    for step in script() {
        let pre = step
            .doc()
            .and_then(|i| oracle.get(&docs[i].0 as &str).cloned());
        if apply_step(repo, docs, &step).is_err() {
            return DriveOutcome {
                oracle,
                crashed: Some((step, pre)),
            };
        }
        if let Some(i) = step.doc() {
            let name = &docs[i].0;
            match step {
                Step::Delete(_) => {
                    oracle.remove(name);
                }
                _ => {
                    // Reads survive the crash budget; the serialization a
                    // caller could take right after the Ok is the state
                    // the operation promised to make durable.
                    let xml = repo
                        .get_xml(name)
                        .expect("read-back of an acknowledged document");
                    oracle.insert(name.clone(), xml);
                }
            }
        }
    }
    DriveOutcome {
        oracle,
        crashed: None,
    }
}

/// Computes the allowed *post*-state of the in-flight step by replaying it
/// on a scratch repository seeded with the pre-state. Returns `None` when
/// the step's full effect removes the document (an in-flight delete).
fn expected_post(docs: &[(String, String)], step: &Step, pre: &Option<String>) -> Option<String> {
    let i = step.doc()?;
    let name = &docs[i].0;
    let scratch = Repository::create_in_memory(options()).unwrap();
    if let Some(pre) = pre {
        scratch.put_xml_streaming(name, pre).unwrap();
    }
    apply_step(&scratch, docs, step).unwrap();
    scratch.get_xml(name).ok()
}

// ---------------------------------------------------------------------------
// The harness.
// ---------------------------------------------------------------------------

struct Machine {
    store: Arc<MemStorage>,
    log: Arc<MemLogDevice>,
    control: Arc<FaultControl>,
}

impl Machine {
    fn boot(store: Arc<MemStorage>, durable_log: Vec<u8>, budget: Option<u64>) -> Machine {
        let control = Arc::new(match budget {
            Some(b) => FaultControl::with_budget(b),
            None => FaultControl::unlimited(),
        });
        let log = Arc::new(MemLogDevice::new().with_fault(Arc::clone(&control)));
        log.restore(durable_log);
        Machine {
            store,
            log,
            control,
        }
    }

    fn backend(&self) -> Arc<dyn DiskBackend> {
        Arc::new(FaultDisk::new(
            Arc::clone(&self.store),
            Arc::clone(&self.control),
        ))
    }

    fn consumed(&self, initial: u64) -> u64 {
        initial - self.control.writes_remaining() as u64
    }
}

/// Baseline run without faults: returns (writes consumed by repository
/// creation, writes consumed by creation + the full workload).
fn baseline(docs: &[(String, String)]) -> (u64, u64) {
    let initial = i64::MAX as u64;
    let m = Machine::boot(Arc::new(MemStorage::new(PAGE).unwrap()), Vec::new(), None);
    let repo = Repository::create_on_backend_with_log(
        m.backend(),
        Box::new(Arc::clone(&m.log)),
        options(),
    )
    .unwrap();
    let create_cost = m.consumed(initial);
    let out = drive(&repo, docs);
    assert!(out.crashed.is_none(), "baseline run must not fail");
    let total = m.consumed(initial);
    assert!(
        total - create_cost > KILL_POINTS,
        "workload too small to seed {KILL_POINTS} distinct kill points"
    );
    (create_cost, total)
}

/// One kill point: create + drive under `budget`, then reopen over the
/// durable images and check the recovery contract.
fn crash_at(docs: &[(String, String)], budget: u64) {
    let store = Arc::new(MemStorage::new(PAGE).unwrap());
    let m = Machine::boot(Arc::clone(&store), Vec::new(), Some(budget));
    let repo = Repository::create_on_backend_with_log(
        m.backend(),
        Box::new(Arc::clone(&m.log)),
        options(),
    )
    .expect("budget always covers repository creation");
    let out = drive(&repo, docs);
    drop(repo);
    let durable = m.log.durable_bytes();

    // Reboot: fresh fault-free devices over the surviving images.
    let m2 = Machine::boot(Arc::clone(&store), durable, None);
    let reopened = Repository::open_on_backend_with_log(
        m2.backend(),
        Box::new(Arc::clone(&m2.log)),
        options(),
    )
    .unwrap_or_else(|e| panic!("recovery failed at budget {budget}: {e}"));

    // 0. No orphaned pages: recovery reclaims loser allocations, so
    //    every allocated page is either the header, on the free list, in
    //    a free-space inventory, or on a space-map chain.
    let orphans = reopened.storage().untracked_pages().unwrap();
    assert!(
        orphans.is_empty(),
        "budget {budget}: recovery leaked pages {orphans:?}"
    );

    // 1. Every acknowledged document is byte-for-byte intact.
    for (name, xml) in &out.oracle {
        let got = reopened
            .get_xml(name)
            .unwrap_or_else(|e| panic!("budget {budget}: committed {name} lost: {e}"));
        assert_eq!(&got, xml, "budget {budget}: committed {name} corrupted");
    }

    // 2. The in-flight operation is atomic: pre-state or full post-state.
    let affected = out
        .crashed
        .as_ref()
        .and_then(|(s, _)| s.doc())
        .map(|i| docs[i].0.clone());
    if let Some((step, pre)) = &out.crashed {
        if let Some(name) = &affected {
            let post = expected_post(docs, step, pre);
            match reopened.get_xml(name) {
                Ok(got) => {
                    let matches_pre = pre.as_ref() == Some(&got);
                    let matches_post = post.as_ref() == Some(&got);
                    assert!(
                        matches_pre || matches_post,
                        "budget {budget}: in-flight {step:?} left {name} torn"
                    );
                }
                Err(_) => {
                    // Absence is fine exactly when the step's pre- or
                    // post-state has no document.
                    assert!(
                        pre.is_none() || post.is_none(),
                        "budget {budget}: in-flight {step:?} erased committed {name}"
                    );
                }
            }
        }
    }

    // 3. No ghost documents.
    for name in reopened.document_names() {
        let known = out.oracle.contains_key(&name) || affected.as_deref() == Some(&name);
        assert!(
            known,
            "budget {budget}: ghost document {name} after recovery"
        );
    }

    // 4. Structural counts are never served wrong: path summaries are
    //    process-local, so recovery starts with none — the planner's
    //    lazily rebuilt summary must agree with a forced record scan on
    //    every surviving document (rebuild-on-recovery is the accepted
    //    strategy; equivalence is the contract).
    let scan = PlannerOptions {
        force: Some(PlanShape::ParallelScan),
        ..PlannerOptions::default()
    };
    for name in reopened.document_names() {
        for q in ["//*", "//text()"] {
            let (planned, _) = reopened
                .count_planned(&name, q, &PlannerOptions::default())
                .unwrap_or_else(|e| panic!("budget {budget}: count {name} {q}: {e}"));
            let (scanned, _) = reopened.count_planned(&name, q, &scan).unwrap();
            assert_eq!(
                planned, scanned,
                "budget {budget}: {name} '{q}': recovered structural count \
                 diverges from the record scan"
            );
        }
    }

    // 5. The recovered repository is writable, and a clean reopen keeps
    //    everything again.
    reopened
        .put_xml("fresh-after-recovery", "<ok crash=\"survived\">fresh</ok>")
        .unwrap_or_else(|e| panic!("budget {budget}: recovered repo not writable: {e}"));
    let expect_fresh = reopened.get_xml("fresh-after-recovery").unwrap();
    drop(reopened);
    let m3 = Machine::boot(Arc::clone(&store), m2.log.durable_bytes(), None);
    let again = Repository::open_on_backend_with_log(
        m3.backend(),
        Box::new(Arc::clone(&m3.log)),
        options(),
    )
    .unwrap_or_else(|e| panic!("second reopen failed at budget {budget}: {e}"));
    for (name, xml) in &out.oracle {
        assert_eq!(
            &again.get_xml(name).unwrap(),
            xml,
            "budget {budget}: {name} after second reopen"
        );
    }
    assert_eq!(again.get_xml("fresh-after-recovery").unwrap(), expect_fresh);
    let orphans = again.storage().untracked_pages().unwrap();
    assert!(
        orphans.is_empty(),
        "budget {budget}: orphaned pages {orphans:?} after second reopen"
    );
}

/// Sweeps `KILL_POINTS` budgets evenly across the post-creation write
/// sequence of the workload.
fn sweep(docs: &[(String, String)]) {
    let (create_cost, total) = baseline(docs);
    let span = total - create_cost;
    for k in 0..KILL_POINTS {
        let budget = create_cost + 1 + (span - 2) * k / (KILL_POINTS - 1);
        crash_at(docs, budget);
    }
}

/// A *loser allocation*: an `Alloc` record that became durable (riding
/// another operation's fsync or an eviction's write-ahead) while its
/// operation never committed. The random kill-point sweeps above rarely
/// produce this exact interleaving, so forge the log shape directly:
/// recovery must raise the high-water mark past the page (the Alloc is
/// durable) but hand the page back to the free pool instead of leaking
/// it until the next checkpoint.
#[test]
fn recovery_reclaims_loser_allocations() {
    let store = Arc::new(MemStorage::new(PAGE).unwrap());
    let m = Machine::boot(Arc::clone(&store), Vec::new(), None);
    let repo = Repository::create_on_backend_with_log(
        m.backend(),
        Box::new(Arc::clone(&m.log)),
        options(),
    )
    .unwrap();
    repo.put_xml("doc", "<d>survivor</d>").unwrap();
    repo.checkpoint().unwrap();
    let high_water = repo.storage().allocated_pages() as u32;
    drop(repo);

    // Append the loser's Alloc to the durable log image, commit-less.
    let forged = Arc::new(MemLogDevice::new());
    forged.restore(m.log.durable_bytes());
    let wal = Wal::new(Box::new(Arc::clone(&forged)), WalSyncMode::Group);
    wal.append(&WalRecord::Alloc {
        page: high_water,
        segment: 0,
    });
    wal.flush_buffered().unwrap();

    let m2 = Machine::boot(Arc::clone(&store), forged.durable_bytes(), None);
    let reopened = Repository::open_on_backend_with_log(
        m2.backend(),
        Box::new(Arc::clone(&m2.log)),
        options(),
    )
    .unwrap();
    assert_eq!(reopened.get_xml("doc").unwrap(), "<d>survivor</d>");
    assert!(
        reopened.storage().allocated_pages() as u32 > high_water,
        "recovery must honour the durable Alloc's high-water mark"
    );
    let orphans = reopened.storage().untracked_pages().unwrap();
    assert!(
        orphans.is_empty(),
        "loser-allocated pages {orphans:?} leaked past recovery"
    );
}

#[test]
fn crash_recovery_shakespeare() {
    sweep(&shakespeare_docs());
}

#[test]
fn crash_recovery_orders() {
    sweep(&orders_docs());
}

#[test]
fn crash_recovery_deep_nesting() {
    sweep(&deep_docs());
}
