//! Clean-shutdown reopen tests: a file-backed repository closed after a
//! checkpoint — or simply dropped, leaving the log to carry the state —
//! must serve every document byte-for-byte identical after `open_file`.
//!
//! This is the non-crash complement to `crash_recovery.rs`: no fault
//! injection, just the ordinary lifecycle (create, ingest, drop, reopen)
//! over the three corpus generators.

use std::collections::BTreeMap;
use std::path::PathBuf;

use natix::{Repository, RepositoryOptions};
use natix_corpus::{
    generate_deep, generate_orders, generate_play, CorpusConfig, DeepConfig, OrdersConfig,
};
use natix_storage::wal::FileLogDevice;
use natix_xml::{write_document, SymbolTable, WriteOptions};

const PAGE: usize = 4096;

fn options() -> RepositoryOptions {
    RepositoryOptions {
        page_size: PAGE,
        // Small pool: reopening must work even when most pages were
        // evicted (written back) rather than sitting warm in the cache.
        buffer_bytes: 64 * PAGE,
        ..RepositoryOptions::default()
    }
}

/// All three corpora in one document set, names prefixed per family.
fn corpus_docs() -> Vec<(String, String)> {
    let mut docs = Vec::new();
    let mut syms = SymbolTable::new();
    let plays = CorpusConfig {
        plays: 37,
        seed: 0x0DD5_EED5,
        scale: 0.02,
    };
    for i in 0..3 {
        let play = generate_play(&plays, i, &mut syms);
        let xml = write_document(&play.doc, &syms, WriteOptions::compact()).unwrap();
        docs.push((format!("play{i}"), xml));
    }
    for i in 0..3u64 {
        let mut syms = SymbolTable::new();
        let cfg = OrdersConfig {
            orders: 30,
            seed: 0xFEED_0000 + i,
        };
        let doc = generate_orders(&cfg, &mut syms);
        let xml = write_document(&doc, &syms, WriteOptions::compact()).unwrap();
        docs.push((format!("orders{i}"), xml));
    }
    for i in 0..3 {
        let mut syms = SymbolTable::new();
        let cfg = DeepConfig {
            depth: 90 + 20 * i,
            payload_every: 2,
            sidecar_every: 3,
            straggler_every: 4,
            seed: 0xD00D_0000 + i as u64,
        };
        let doc = generate_deep(&cfg, &mut syms);
        let xml = write_document(&doc, &syms, WriteOptions::compact()).unwrap();
        docs.push((format!("deep{i}"), xml));
    }
    docs
}

/// A scratch repo path unique to this process and test.
struct TempRepo(PathBuf);

impl TempRepo {
    fn new(tag: &str) -> TempRepo {
        TempRepo(std::env::temp_dir().join(format!("natix_reopen_{}_{tag}.db", std::process::id())))
    }
}

impl Drop for TempRepo {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(FileLogDevice::sidecar_path(&self.0));
    }
}

/// Ingest every corpus document, record the oracle bytes (what `get_xml`
/// returned at ingest time), optionally checkpoint, then drop.
fn build_repo(path: &PathBuf, checkpoint: bool) -> BTreeMap<String, String> {
    let repo = Repository::create_file(path, options()).unwrap();
    let mut oracle = BTreeMap::new();
    for (name, xml) in corpus_docs() {
        repo.put_xml(&name, &xml).unwrap();
        oracle.insert(name.clone(), repo.get_xml(&name).unwrap());
    }
    if checkpoint {
        repo.checkpoint().unwrap();
    }
    oracle
}

fn assert_identical(path: &PathBuf, oracle: &BTreeMap<String, String>) {
    let repo = Repository::open_file(path, options()).unwrap();
    let names = repo.document_names();
    assert_eq!(
        names.len(),
        oracle.len(),
        "reopened repository lists {} documents, ingested {}",
        names.len(),
        oracle.len()
    );
    for (name, bytes) in oracle {
        assert_eq!(
            &repo.get_xml(name).unwrap(),
            bytes,
            "document {name} changed across reopen"
        );
    }
}

#[test]
fn checkpoint_then_reopen_is_byte_identical() {
    let tmp = TempRepo::new("ckpt");
    let oracle = build_repo(&tmp.0, true);
    assert_identical(&tmp.0, &oracle);
}

#[test]
fn reopen_without_checkpoint_recovers_from_log() {
    // No explicit checkpoint: the base file holds whatever the buffer
    // pool happened to evict, and reopen must rebuild the rest from the
    // log alone (the ingests' committed page images).
    let tmp = TempRepo::new("log");
    let oracle = build_repo(&tmp.0, false);
    assert_identical(&tmp.0, &oracle);
}

#[test]
fn reopened_summaries_equal_from_scratch_rebuild() {
    // Path summaries are process-local (never persisted): a reopened
    // repository rebuilds them lazily on first ask. The rebuilt summary
    // must equal the summary the original process maintained, and a
    // forced from-scratch rebuild must equal it again — three ways of
    // computing the same structure, one canonical answer.
    let tmp = TempRepo::new("summary");
    let before = {
        let repo = Repository::create_file(&tmp.0, options()).unwrap();
        let mut canon = BTreeMap::new();
        for (name, xml) in corpus_docs() {
            repo.put_xml(&name, &xml).unwrap();
            canon.insert(name.clone(), repo.path_summary_canonical(&name).unwrap());
        }
        repo.checkpoint().unwrap();
        canon
    };
    let repo = Repository::open_file(&tmp.0, options()).unwrap();
    for (name, canon) in &before {
        assert_eq!(
            &repo.path_summary_canonical(name).unwrap(),
            canon,
            "{name}: lazily rebuilt summary diverges from the pre-close one"
        );
        repo.invalidate_path_summary(name).unwrap();
        assert_eq!(
            &repo.path_summary_canonical(name).unwrap(),
            canon,
            "{name}: forced from-scratch rebuild diverges"
        );
    }
    // Incremental maintenance on a reopened repository: an edit's delta
    // must leave exactly the summary a rebuild computes.
    let doc = repo.doc_id("play0").unwrap();
    let root = repo.root(doc).unwrap();
    repo.insert_element(doc, root, natix_tree::InsertPos::Last, "EPILOGUE")
        .unwrap();
    let kids = repo.children(doc, root).unwrap();
    repo.delete_node(doc, kids[0]).unwrap();
    let maintained = repo.path_summary_canonical("play0").unwrap();
    repo.invalidate_path_summary("play0").unwrap();
    assert_eq!(
        repo.path_summary_canonical("play0").unwrap(),
        maintained,
        "play0: delta-maintained summary diverges from a rebuild after edits"
    );
}

#[test]
fn reopen_twice_after_edits() {
    // Edits after the checkpoint, then two reopen generations: the first
    // reopen recovers checkpoint + log tail, re-checkpoints on open, and
    // the second reopen must still see the same bytes.
    let tmp = TempRepo::new("twice");
    let mut oracle = build_repo(&tmp.0, true);
    {
        let repo = Repository::open_file(&tmp.0, options()).unwrap();
        repo.delete_document("orders1").unwrap();
        oracle.remove("orders1");
        repo.put_xml("extra", "<extra><x>post-checkpoint</x></extra>")
            .unwrap();
        oracle.insert("extra".into(), repo.get_xml("extra").unwrap());
    }
    assert_identical(&tmp.0, &oracle);
    assert_identical(&tmp.0, &oracle);
}
