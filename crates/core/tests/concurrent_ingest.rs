//! Integration tests of the concurrent ingestion subsystem: the
//! duplicate-name race, rollback without leaked pages, persistence of
//! documents ingested into the segment pool, readers running against
//! in-flight ingestion, path queries (sequential and parallel) racing
//! ingestion of *other* documents, and — since record-level versioning —
//! queries overlapping streaming ingestion of the *same* document.

use natix::{NatixError, ParallelQueryOptions, PathQuery, Repository, RepositoryOptions};

fn repo(page_size: usize) -> Repository {
    Repository::create_in_memory(RepositoryOptions {
        page_size,
        ..RepositoryOptions::default()
    })
    .unwrap()
}

fn order_doc(i: usize, items: usize) -> String {
    let body: String = (0..items)
        .map(|j| {
            format!(
                "<order id=\"{i}-{j}\"><sku>PART-{j}</sku><qty>{}</qty>\
                 <note>synthetic payload {}</note></order>",
                j % 9 + 1,
                "n".repeat(j % 37)
            )
        })
        .collect();
    format!("<orders>{body}</orders>")
}

/// Every page of the given segment is empty apart from its node-type
/// table (authoritative free counts from the pages themselves, not the
/// free-space inventory).
fn assert_segment_empty(r: &Repository, seg_name: &str, page_size: usize) {
    let Some(seg) = r.storage().segment_by_name(seg_name) else {
        return; // never created — trivially empty
    };
    for (page, _) in r.storage().segment_pages(seg) {
        let free = r.storage().page_free_space(page).unwrap();
        assert!(
            free > page_size - 64,
            "segment {seg_name}: page {page} still holds {} bytes of leaked records",
            page_size - free
        );
    }
}

#[test]
fn duplicate_name_race_has_exactly_one_winner_and_no_leaks() {
    let page_size = 1024;
    let r = repo(page_size);
    let xml_a = order_doc(1, 120);
    let xml_b = order_doc(2, 120);

    // Two genuinely concurrent ingests of the same name, from two threads.
    let (res_a, res_b) = std::thread::scope(|s| {
        let ra = s.spawn(|| {
            r.put_documents_parallel(&[("contested".to_string(), xml_a.clone())], 1)
                .remove(0)
        });
        let rb = s.spawn(|| {
            r.put_documents_parallel(&[("contested".to_string(), xml_b.clone())], 1)
                .remove(0)
        });
        (ra.join().unwrap(), rb.join().unwrap())
    });

    let winners = [&res_a, &res_b].iter().filter(|r| r.is_ok()).count();
    assert_eq!(winners, 1, "exactly one ingest wins the name");
    let loser = if res_a.is_err() { &res_a } else { &res_b };
    assert!(
        matches!(loser, Err(NatixError::DocumentExists(_))),
        "loser gets a clean duplicate-document error: {loser:?}"
    );

    // The stored document is intact and is exactly one of the inputs.
    let stored = r.get_xml("contested").unwrap();
    assert!(stored == xml_a || stored == xml_b);
    r.physical_stats("contested").unwrap();

    // Delete the winner: every record across the document and ingestion
    // segments must be gone — the loser left nothing behind.
    let r = r;
    r.delete_document("contested").unwrap();
    assert_segment_empty(&r, "documents", page_size);
    for slot in 0..8 {
        assert_segment_empty(&r, &format!("ingest{slot}"), page_size);
    }
}

#[test]
fn failed_concurrent_load_rolls_back_all_records() {
    let page_size = 512;
    let r = repo(page_size);
    // Large enough to have flushed many records before the parse error.
    let body = "<item>payload</item>".repeat(400);
    let docs = vec![
        ("broken0".to_string(), format!("<root>{body}<oops></root>")),
        ("broken1".to_string(), format!("<root>{body}<bad></root>")),
    ];
    let results = r.put_documents_parallel(&docs, 2);
    assert!(results.iter().all(|r| r.is_err()));
    assert_segment_empty(&r, "documents", page_size);
    for slot in 0..8 {
        assert_segment_empty(&r, &format!("ingest{slot}"), page_size);
    }
    // The names and the storage are immediately reusable.
    let good = format!("<root>{body}</root>");
    let results = r.put_documents_parallel(
        &[
            ("broken0".to_string(), good.clone()),
            ("broken1".to_string(), good.clone()),
        ],
        2,
    );
    for res in &results {
        res.as_ref().unwrap();
    }
    assert_eq!(r.get_xml("broken0").unwrap(), good);
    r.physical_stats("broken0").unwrap();
    r.physical_stats("broken1").unwrap();
}

#[test]
fn parallel_ingested_documents_survive_checkpoint_and_reopen() {
    let dir = std::env::temp_dir().join(format!("natix-cing-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("repo.natix");
    let options = || RepositoryOptions {
        page_size: 2048,
        ..RepositoryOptions::default()
    };
    let docs: Vec<(String, String)> = (0..6)
        .map(|i| (format!("orders-{i}"), order_doc(i, 60)))
        .collect();
    {
        let repo = Repository::create_file(&path, options()).unwrap();
        for res in repo.put_documents_parallel(&docs, 3) {
            res.unwrap();
        }
        repo.checkpoint().unwrap();
    }
    {
        let repo = Repository::open_file(&path, options()).unwrap();
        for (name, xml) in &docs {
            assert_eq!(&repo.get_xml(name).unwrap(), xml, "{name} after reopen");
            repo.physical_stats(name).unwrap();
        }
        // Documents ingested into pool segments are ordinary documents:
        // queryable and editable after reopen.
        let hits = repo.query("orders-0", "//sku").unwrap();
        assert!(!hits.is_empty());
        let id = repo.doc_id("orders-3").unwrap();
        let root = repo.root(id).unwrap();
        repo.insert_element(id, root, natix_tree::InsertPos::Last, "appended")
            .unwrap();
        assert!(repo.get_xml("orders-3").unwrap().contains("<appended/>"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn more_writers_than_segments_share_stores_safely() {
    // The ingestion-segment pool is capped at 8; with more writers,
    // several worker threads append through one shared TreeStore into
    // the same segment (per-loader cursors keep their fill pages
    // distinct). Exercise that sharing branch explicitly.
    let r = repo(1024);
    let docs: Vec<(String, String)> = (0..24)
        .map(|i| (format!("shared-{i}"), order_doc(i, 40)))
        .collect();
    let results = r.put_documents_parallel(&docs, 12);
    for ((name, xml), res) in docs.iter().zip(&results) {
        res.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&r.get_xml(name).unwrap(), xml, "{name}");
        r.physical_stats(name).unwrap();
    }
}

#[test]
fn queries_race_ingestion_of_other_documents() {
    // Queries overlapping ingestion of *other* documents (same-document
    // overlap is covered by `queries_overlap_ingestion_of_the_same_
    // document` below). A small buffer pool makes the two workloads
    // fight for frames: query workers and ingest workers must wait on
    // in-flight I/O rather than fail with BufferExhausted, never
    // deadlock, and the query results must be exactly the pre-ingestion
    // results throughout.
    let r = Repository::create_in_memory(RepositoryOptions {
        page_size: 1024,
        buffer_bytes: 24 * 1024, // 24 frames — far smaller than the data
        ..RepositoryOptions::default()
    })
    .unwrap();
    let mut expected = Vec::new();
    for i in 0..4 {
        let name = format!("stable-{i}");
        let id = r.put_xml_streaming(&name, &order_doc(i, 60)).unwrap();
        expected.push((name, id));
    }
    let queries = ["//sku", "/orders/order[7]/qty", "//order/note/text()"];
    let parsed: Vec<PathQuery> = queries
        .iter()
        .map(|q| PathQuery::parse(q).unwrap())
        .collect();
    let baseline: Vec<Vec<Vec<natix::NodeId>>> = parsed
        .iter()
        .map(|q| {
            expected
                .iter()
                .map(|&(_, id)| r.query_parsed(id, q).unwrap())
                .collect()
        })
        .collect();
    let ids: Vec<natix::DocId> = expected.iter().map(|&(_, id)| id).collect();
    let r = &r;
    let incoming: Vec<(String, String)> = (0..10)
        .map(|i| (format!("incoming-{i}"), order_doc(100 + i, 90)))
        .collect();
    std::thread::scope(|s| {
        // One thread runs the multi-document fan-out, one runs forced
        // intra-document parallel scans, while 4 ingest workers load a
        // fresh batch — all over the same 24-frame pool.
        let fanout = s.spawn(|| {
            let opts = ParallelQueryOptions {
                threads: 3,
                parallel_record_threshold: 16,
                ..Default::default()
            };
            for _ in 0..25 {
                for (q, base) in parsed.iter().zip(&baseline) {
                    let got: Vec<Vec<natix::NodeId>> = r
                        .query_documents_opts(&ids, q, &opts)
                        .into_iter()
                        .map(|res| res.unwrap())
                        .collect();
                    assert_eq!(&got, base, "fan-out results changed under ingestion");
                }
            }
        });
        let intra = s.spawn(|| {
            let opts = ParallelQueryOptions {
                threads: 3,
                parallel_record_threshold: 1, // force the record work queue
                ..Default::default()
            };
            for _ in 0..25 {
                for (q, base) in parsed.iter().zip(&baseline) {
                    for (slot, &id) in ids.iter().enumerate() {
                        let got = r.query_parallel(id, q, &opts).unwrap();
                        assert_eq!(got, base[slot], "parallel scan changed under ingestion");
                    }
                }
            }
        });
        let writer = s.spawn(|| {
            for res in r.put_documents_parallel(&incoming, 4) {
                res.unwrap();
            }
        });
        fanout.join().unwrap();
        intra.join().unwrap();
        writer.join().unwrap();
    });
    // Everything landed intact.
    for (name, xml) in &incoming {
        assert_eq!(&r.get_xml(name).unwrap(), xml);
    }
}

#[test]
fn queries_overlap_ingestion_of_the_same_document() {
    // The PR 2/3 follow-up, closed by record-level versioning: queries
    // run *while the very document they ask for is being streamed into
    // the main store* (put_xml_streaming now takes &self). A query must
    // observe exactly one of the two serial states — "not ingested yet"
    // (NoSuchDocument) or the complete document — never a partial load.
    // Queries of a pre-existing document keep their exact pre-ingestion
    // answers throughout, and a concurrent editor of that document stays
    // serializable too.
    let r = Repository::create_in_memory(RepositoryOptions {
        page_size: 1024,
        buffer_bytes: 24 * 1024, // pool far smaller than the data
        ..RepositoryOptions::default()
    })
    .unwrap();
    let stable_id = r.put_xml_streaming("stable", &order_doc(0, 60)).unwrap();
    let incoming_xml = order_doc(7, 400);
    // Expected post-publish answers, computed on a scratch repository.
    let scratch = repo(1024);
    scratch
        .put_xml_streaming("incoming", &incoming_xml)
        .unwrap();
    let scratch_id = scratch.doc_id("incoming").unwrap();
    let q_sku = PathQuery::parse("//sku").unwrap();
    let q_qty = PathQuery::parse("/orders/order[7]/qty").unwrap();
    let expected_sku = scratch.query_content(scratch_id, &q_sku).unwrap();
    let expected_qty = scratch.query_content(scratch_id, &q_qty).unwrap();
    let stable_sku = r.query_content(stable_id, &q_sku).unwrap();

    let r = &r;
    let (q_sku, q_qty) = (&q_sku, &q_qty);
    let (expected_sku, expected_qty, stable_sku) = (&expected_sku, &expected_qty, &stable_sku);
    std::thread::scope(|s| {
        let writer = s.spawn(move || {
            r.put_xml_streaming("incoming", &incoming_xml).unwrap();
        });
        // Polling readers: every successful read of "incoming" must be
        // the complete document.
        for t in 0..2 {
            s.spawn(move || {
                let opts = ParallelQueryOptions {
                    threads: 3,
                    parallel_record_threshold: 1,
                    ..Default::default()
                };
                let mut seen_complete = false;
                for _ in 0..400 {
                    match r.doc_id("incoming") {
                        Err(NatixError::NoSuchDocument(_)) => {}
                        Err(e) => panic!("{e}"),
                        Ok(id) => {
                            let sku = if t == 0 {
                                r.query_content(id, q_sku).unwrap()
                            } else {
                                r.query_content_opts(id, q_sku, &opts).unwrap()
                            };
                            assert_eq!(&sku, expected_sku, "partial ingest visible");
                            assert_eq!(&r.query_content(id, q_qty).unwrap(), expected_qty);
                            seen_complete = true;
                        }
                    }
                    // The stable document's answers never change.
                    assert_eq!(&r.query_content(stable_id, q_sku).unwrap(), stable_sku);
                }
                // The writer publishes long before 400 polling rounds end.
                assert!(seen_complete, "reader never saw the published document");
            });
        }
        writer.join().unwrap();
    });
    assert_eq!(r.get_xml("incoming").unwrap(), order_doc(7, 400));
    r.physical_stats("incoming").unwrap();
    r.physical_stats("stable").unwrap();
    assert_eq!(
        r.tree_store().versions().retained_versions(),
        0,
        "superseded versions reclaimed after the stress"
    );
}

#[test]
fn readers_run_concurrently_with_ingestion() {
    let r = repo(1024);
    let base = order_doc(99, 80);
    let id = r.put_xml_streaming("base", &base).unwrap();
    let r = &r;
    let docs: Vec<(String, String)> = (0..8)
        .map(|i| (format!("batch-{i}"), order_doc(i, 100)))
        .collect();
    std::thread::scope(|s| {
        // Read-only traversal of an existing document through `&self`,
        // while a 4-writer batch ingests new documents.
        let reader = s.spawn(move || {
            for _ in 0..60 {
                let root = r.root(id).unwrap();
                let kids = r.children(id, root).unwrap();
                assert_eq!(kids.len(), 80);
                let first = r.children(id, kids[0]).unwrap();
                assert_eq!(r.parent(id, first[0]).unwrap(), Some(kids[0]));
                assert_eq!(r.get_xml("base").unwrap(), base);
            }
        });
        let writer = s.spawn(move || {
            for res in r.put_documents_parallel(&docs, 4) {
                res.unwrap();
            }
        });
        reader.join().unwrap();
        writer.join().unwrap();
    });
    for i in 0..8 {
        r.physical_stats(&format!("batch-{i}")).unwrap();
    }
}
