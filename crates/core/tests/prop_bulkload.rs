//! Differential property tests of the streaming bulkloader against the
//! per-node insertion oracle.
//!
//! For random documents across page sizes and split matrices, a document
//! stored through the bulkloader must
//!
//! * serialise to **byte-identical** XML (`get_xml`) as the same document
//!   stored node-by-node through the incremental tree-growth procedure;
//! * satisfy every physical invariant of `check_tree` (parseable records,
//!   capacity bounds, exact parent pointers, scaffolding placement,
//!   acyclic proxy graph) — collected as record count / record-tree
//!   height / per-record fanout statistics;
//! * be **deterministic**: loading the same document twice yields
//!   identical physical statistics;
//! * stay structurally in the same regime as the oracle: bottom-up
//!   packing fills records at least as well as incremental splitting, so
//!   the bulkloaded tree never uses more records or more height than the
//!   per-node tree allows at its loosest.
//!
//! The build environment has no network access, so instead of `proptest`
//! the cases are driven by a small deterministic SplitMix64 generator over
//! many seeds — reproducible by seed.

use natix::{Repository, RepositoryOptions};
use natix_tree::{SplitBehaviour, SplitMatrix};
use natix_xml::{Document, NodeData, SymbolTable};

use natix_corpus::SplitMix64 as Gen;

/// Builds a random element-rooted document over a tiny tag alphabet.
fn random_document(g: &mut Gen, syms: &mut SymbolTable) -> Document {
    const TAGS: &[&str] = &["a", "b", "c", "d", "e", "f"];
    let root = syms.intern_element(TAGS[g.below(TAGS.len())]);
    let mut doc = Document::new(NodeData::Element(root));
    let mut open = vec![doc.root()];
    let nodes = 1 + g.below(400);
    for _ in 0..nodes {
        let parent = open[g.below(open.len())];
        match g.below(10) {
            // Elements, sometimes nested deeper.
            0..=4 => {
                let label = syms.intern_element(TAGS[g.below(TAGS.len())]);
                let e = doc.add_child(parent, NodeData::Element(label));
                if g.below(3) > 0 && open.len() < 12 {
                    open.push(e);
                }
            }
            // Attributes on the parent element (XML forbids duplicates).
            5 => {
                let label = syms.intern_attribute(TAGS[g.below(TAGS.len())]);
                let dup = doc.children(parent).iter().any(
                    |&c| matches!(doc.data(c), NodeData::Literal { label: l, .. } if *l == label),
                );
                if !dup {
                    let len = g.below(20);
                    doc.add_child(parent, NodeData::attribute(label, "v".repeat(len)));
                }
            }
            // Text, occasionally long enough to be chunked.
            _ => {
                let len = if g.below(20) == 0 {
                    400 + g.below(1200)
                } else {
                    g.below(60)
                };
                let mut s = String::with_capacity(len + 1);
                s.push((b'a' + g.below(26) as u8) as char);
                while s.len() < len + 1 {
                    s.push((b'a' + g.below(26) as u8) as char);
                }
                doc.add_child(parent, NodeData::text(s));
            }
        }
    }
    doc
}

fn random_matrix(g: &mut Gen, syms: &SymbolTable) -> SplitMatrix {
    let mut m = SplitMatrix::all_other();
    let labels: Vec<u16> = (0..syms.len() as u16).collect();
    for _ in 0..g.below(5) {
        let b = match g.below(3) {
            0 => SplitBehaviour::Standalone,
            1 => SplitBehaviour::KeepWithParent,
            _ => SplitBehaviour::Other,
        };
        m.set(
            labels[g.below(labels.len())],
            labels[g.below(labels.len())],
            b,
        );
    }
    m
}

fn repo(page_size: usize, matrix: SplitMatrix, syms: &SymbolTable) -> Repository {
    let r = Repository::create_in_memory(RepositoryOptions {
        page_size,
        matrix,
        ..RepositoryOptions::default()
    })
    .unwrap();
    *r.symbols_mut() = syms.clone();
    r
}

#[test]
fn bulkload_matches_per_node_oracle() {
    for case in 0..40u64 {
        let mut g = Gen::new(case);
        let mut syms = SymbolTable::new();
        let doc = random_document(&mut g, &mut syms);
        let page_size = [512usize, 1024, 2048, 8192][g.below(4)];
        let matrix = random_matrix(&mut g, &syms);

        let bulk = repo(page_size, matrix.clone(), &syms);
        bulk.put_document("d", &doc).unwrap();
        let oracle = repo(page_size, matrix, &syms);
        oracle.put_document_per_node("d", &doc).unwrap();

        // Byte-identical logical documents.
        let bulk_xml = bulk.get_xml("d").unwrap();
        assert_eq!(
            bulk_xml,
            oracle.get_xml("d").unwrap(),
            "case {case}: bulkload and per-node XML diverge (page {page_size})"
        );

        // All physical invariants hold on both trees; gather the stats.
        let bs = bulk.physical_stats("d").unwrap();
        let os = oracle.physical_stats("d").unwrap();
        assert!(bs.records >= 1);
        // Bottom-up packing never produces a sparser clustering than the
        // loosest the incremental path tolerates: a generous structural
        // envelope that catches packer regressions (e.g. one record per
        // node) without demanding physical identity.
        assert!(
            bs.records <= os.records * 2 + 8,
            "case {case}: bulkload fragmented into {} records vs oracle {} (page {page_size})",
            bs.records,
            os.records
        );
        // Depth-aware packing keeps the record tree's height tracking the
        // split-matrix fanout, not the document depth: one continuation
        // placeholder per spilled piece (6 bytes per spine level instead
        // of 20) and separator-style prefix chains in the continuation
        // groups. The bulkloaded tree is usually *shallower* than the
        // oracle's; the envelope allows at most 1.1× plus one level.
        assert!(
            bs.record_depth * 10 <= os.record_depth * 11 + 10,
            "case {case}: bulkload record tree height {} vs oracle {} (>1.1x)",
            bs.record_depth,
            os.record_depth
        );
        // Same logical content stored: facade node counts agree.
        assert_eq!(
            bs.facade_nodes, os.facade_nodes,
            "case {case}: facade node counts diverge"
        );

        // Determinism: reloading the identical document reproduces the
        // identical physical structure (records, height, fanout stats).
        bulk.put_document("d2", &doc).unwrap();
        let bs2 = bulk.physical_stats("d2").unwrap();
        assert_eq!(
            (
                bs.records,
                bs.record_depth,
                bs.facade_nodes,
                bs.scaffolding_aggregates,
                bs.proxies
            ),
            (
                bs2.records,
                bs2.record_depth,
                bs2.facade_nodes,
                bs2.scaffolding_aggregates,
                bs2.proxies
            ),
            "case {case}: bulkload is not deterministic"
        );

        // The streaming XML path produces the same document, too.
        let streamed = repo(page_size, SplitMatrix::all_other(), &syms);
        let direct = repo(page_size, SplitMatrix::all_other(), &syms);
        streamed.put_xml_streaming("d", &bulk_xml).unwrap();
        direct.put_xml("d", &bulk_xml).unwrap();
        assert_eq!(
            streamed.get_xml("d").unwrap(),
            direct.get_xml("d").unwrap(),
            "case {case}: streaming load diverges from DOM load"
        );
        streamed.physical_stats("d").unwrap();
    }
}

/// Like [`random_document`] but *serializable*: attributes are attached
/// only at element creation, before any content, so `write_document`
/// (used to feed the streaming ingest path) accepts the result.
fn random_serializable_document(g: &mut Gen, syms: &mut SymbolTable) -> Document {
    const TAGS: &[&str] = &["a", "b", "c", "d", "e", "f"];
    let root = syms.intern_element(TAGS[g.below(TAGS.len())]);
    let mut doc = Document::new(NodeData::Element(root));
    let mut open = vec![doc.root()];
    for _ in 0..1 + g.below(400) {
        let parent = open[g.below(open.len())];
        if g.below(2) == 0 {
            let label = syms.intern_element(TAGS[g.below(TAGS.len())]);
            let e = doc.add_child(parent, NodeData::Element(label));
            for a in 0..g.below(3) {
                let attr = syms.intern_attribute(["p", "q", "r"][a]);
                doc.add_child(e, NodeData::attribute(attr, "v".repeat(g.below(16))));
            }
            if g.below(3) > 0 && open.len() < 12 {
                open.push(e);
            }
        } else {
            let len = if g.below(20) == 0 {
                400 + g.below(1200)
            } else {
                1 + g.below(60)
            };
            let mut s = String::with_capacity(len);
            while s.len() < len {
                s.push((b'a' + g.below(26) as u8) as char);
            }
            doc.add_child(parent, NodeData::text(s));
        }
    }
    doc
}

#[test]
fn concurrent_ingest_matches_sequential_per_node_oracle() {
    // Differential property of the concurrent ingestion subsystem: N
    // random documents loaded *concurrently* (4 writers, distinct
    // segments, shared symbol table) are byte-identical on `get_xml` to
    // the same documents loaded *sequentially* through the per-node
    // oracle, across page sizes and split matrices — and every stored
    // tree satisfies all physical invariants.
    for case in 0..12u64 {
        let mut g = Gen::new(0xC0C0 ^ case);
        let mut syms = SymbolTable::new();
        let docs: Vec<(String, Document)> = (0..6)
            .map(|i| {
                (
                    format!("doc{i}"),
                    random_serializable_document(&mut g, &mut syms),
                )
            })
            .collect();
        let page_size = [512usize, 1024, 2048, 8192][g.below(4)];
        let matrix = random_matrix(&mut g, &syms);
        let xmls: Vec<(String, String)> = docs
            .iter()
            .map(|(n, d)| {
                let xml = natix_xml::write_document(d, &syms, natix_xml::WriteOptions::compact())
                    .unwrap();
                (n.clone(), xml)
            })
            .collect();

        let parallel = repo(page_size, matrix.clone(), &syms);
        for res in parallel.put_documents_parallel(&xmls, 4) {
            res.unwrap();
        }
        let oracle = repo(page_size, matrix.clone(), &syms);
        for (name, doc) in &docs {
            oracle.put_document_per_node(name, doc).unwrap();
        }
        // And a *sequential* streaming load of the identical XML: the
        // concurrent path must reproduce its physical structure exactly
        // (scheduling must not influence packing decisions).
        let sequential = repo(page_size, matrix, &syms);
        for (name, xml) in &xmls {
            sequential.put_xml_streaming(name, xml).unwrap();
        }
        for (name, _) in &docs {
            assert_eq!(
                parallel.get_xml(name).unwrap(),
                oracle.get_xml(name).unwrap(),
                "case {case}: concurrent ingest diverges from the oracle \
                 for {name} (page {page_size})"
            );
            let ps = parallel.physical_stats(name).unwrap();
            let ss = sequential.physical_stats(name).unwrap();
            assert_eq!(
                (ps.records, ps.record_depth, ps.facade_nodes),
                (ss.records, ss.record_depth, ss.facade_nodes),
                "case {case}: {name} physical structure depends on scheduling"
            );
        }
    }
}

#[test]
fn deep_documents_match_per_node_oracle() {
    // Nesting depth alone can exceed the net page capacity; the bulkloader
    // must chain the open spine across records (with continuations for
    // content arriving after the inner chain closes) and still reproduce
    // the per-node path's document byte-for-byte.
    for case in 0..6u64 {
        let mut g = Gen::new(0xDEE9 ^ case);
        let mut syms = SymbolTable::new();
        const TAGS: &[&str] = &["a", "b", "c"];
        let root = syms.intern_element("r");
        let mut doc = Document::new(NodeData::Element(root));
        // A deep chain with occasional text, then late siblings hung off
        // ancestors at many depths.
        let depth = 200 + g.below(400);
        let mut chain = vec![doc.root()];
        for _ in 0..depth {
            let label = syms.intern_element(TAGS[g.below(TAGS.len())]);
            let e = doc.add_child(*chain.last().unwrap(), NodeData::Element(label));
            if g.below(8) == 0 {
                doc.add_child(e, NodeData::text("t"));
            }
            chain.push(e);
        }
        for _ in 0..40 {
            let anchor = chain[g.below(chain.len())];
            let label = syms.intern_element(TAGS[g.below(TAGS.len())]);
            let e = doc.add_child(anchor, NodeData::Element(label));
            doc.add_child(e, NodeData::text("late"));
        }
        let page_size = [512usize, 1024, 2048][g.below(3)];
        let bulk = repo(page_size, SplitMatrix::all_other(), &syms);
        bulk.put_document("d", &doc).unwrap();
        let oracle = repo(page_size, SplitMatrix::all_other(), &syms);
        oracle.put_document_per_node("d", &doc).unwrap();
        assert_eq!(
            bulk.get_xml("d").unwrap(),
            oracle.get_xml("d").unwrap(),
            "case {case}: deep-document XML diverges (page {page_size}, depth {depth})"
        );
        bulk.physical_stats("d").unwrap();
    }
}

#[test]
fn deep_corpus_height_tracks_the_oracle() {
    // The acceptance property of depth-aware packing: on the deep-nesting
    // corpus the bulkloaded record tree is at most 1.1× the per-node
    // path's height (it is in fact well below 1×), `get_xml` stays
    // byte-identical, and the packed layout never exceeds the legacy
    // per-level-placeholder layout (`depth_packing: false`) on height.
    let mut syms = SymbolTable::new();
    let cfg = natix_corpus::DeepConfig {
        depth: 900,
        ..natix_corpus::DeepConfig::paper()
    };
    let doc = natix_corpus::generate_deep(&cfg, &mut syms);
    for page_size in [512usize, 2048, 8192] {
        let bulk = repo(page_size, SplitMatrix::all_other(), &syms);
        bulk.put_document("d", &doc).unwrap();
        let oracle = repo(page_size, SplitMatrix::all_other(), &syms);
        oracle.put_document_per_node("d", &doc).unwrap();

        let xml = bulk.get_xml("d").unwrap();
        assert_eq!(
            xml,
            oracle.get_xml("d").unwrap(),
            "page {page_size}: deep-corpus XML diverges from the oracle"
        );
        let bs = bulk.physical_stats("d").unwrap();
        let os = oracle.physical_stats("d").unwrap();
        assert!(
            bs.record_depth * 10 <= os.record_depth * 11,
            "page {page_size}: packed height {} vs oracle {} exceeds 1.1x",
            bs.record_depth,
            os.record_depth
        );
        assert!(
            bs.records <= os.records * 2 + 8,
            "page {page_size}: packed layout fragmented into {} records vs oracle {}",
            bs.records,
            os.records
        );
    }
}

#[test]
fn depth_packing_ablation_beats_per_level_pieces() {
    // `depth_packing: false` cuts one spilled level per piece — the
    // baseline whose record-tree height tracks the document depth. The
    // packed layout must serialise identically and be no taller (it is in
    // fact several times flatter). Moderate depth: the ablation layout's
    // record chain grows linearly with depth by design.
    let mut syms = SymbolTable::new();
    let cfg = natix_corpus::DeepConfig {
        depth: 300,
        ..natix_corpus::DeepConfig::tiny()
    };
    let doc = natix_corpus::generate_deep(&cfg, &mut syms);
    for page_size in [512usize, 2048] {
        let packed = repo(page_size, SplitMatrix::all_other(), &syms);
        packed.put_document("d", &doc).unwrap();
        let legacy = Repository::create_in_memory(RepositoryOptions {
            page_size,
            matrix: SplitMatrix::all_other(),
            tree_config: natix_tree::TreeConfig {
                depth_packing: false,
                ..natix_tree::TreeConfig::paper()
            },
            ..RepositoryOptions::default()
        })
        .unwrap();
        *legacy.symbols_mut() = syms.clone();
        legacy.put_document("d", &doc).unwrap();
        assert_eq!(
            packed.get_xml("d").unwrap(),
            legacy.get_xml("d").unwrap(),
            "page {page_size}: ablation layout XML diverges"
        );
        let ps = packed.physical_stats("d").unwrap();
        let ls = legacy.physical_stats("d").unwrap();
        assert!(
            ps.record_depth <= ls.record_depth,
            "page {page_size}: packed height {} worse than per-level layout {}",
            ps.record_depth,
            ls.record_depth
        );
    }
}

#[test]
fn deep_bulkloaded_documents_are_editable() {
    // Edits anywhere in a depth-aware-packed document must work: the
    // document manager normalizes the packed cluster on demand and the
    // result keeps matching a per-node oracle given the same edits.
    let mut syms = SymbolTable::new();
    let cfg = natix_corpus::DeepConfig {
        depth: 300,
        ..natix_corpus::DeepConfig::tiny()
    };
    let doc = natix_corpus::generate_deep(&cfg, &mut syms);
    for page_size in [512usize, 1024] {
        let bulk = repo(page_size, SplitMatrix::all_other(), &syms);
        let id = bulk.put_document("d", &doc).unwrap();
        let oracle = repo(page_size, SplitMatrix::all_other(), &syms);
        let oid = oracle.put_document_per_node("d", &doc).unwrap();

        // Descend the spine via children() on both sides, editing at
        // several depths on the way down.
        let mut bn = bulk.root(id).unwrap();
        let mut on = oracle.root(oid).unwrap();
        for step in 0..250usize {
            let bks = bulk.children(id, bn).unwrap();
            let oks = oracle.children(oid, on).unwrap();
            assert_eq!(bks.len(), oks.len(), "page {page_size} step {step}");
            if step % 60 == 17 {
                let b = bulk
                    .insert_element(id, bn, natix_tree::InsertPos::Last, "EDIT")
                    .unwrap();
                bulk.insert_text(id, b, natix_tree::InsertPos::Last, "added")
                    .unwrap();
                let o = oracle
                    .insert_element(oid, on, natix_tree::InsertPos::Last, "EDIT")
                    .unwrap();
                oracle
                    .insert_text(oid, o, natix_tree::InsertPos::Last, "added")
                    .unwrap();
            }
            // The spine SECTION is the last element child named SECTION;
            // children() order is document order on both sides, so the
            // same index works for both.
            let next = bks.iter().zip(&oks).rev().find(|&(&bk, _)| {
                bulk.node_summary(id, bk)
                    .map(|s| s.label == "SECTION")
                    .unwrap_or(false)
            });
            let Some((&bk, &ok)) = next else { break };
            bn = bk;
            on = ok;
        }
        // Delete a straggler subtree found by query, on both sides.
        let btails = bulk.query("d", "//TAIL").unwrap();
        let otails = oracle.query("d", "//TAIL").unwrap();
        assert_eq!(btails.len(), otails.len());
        if !btails.is_empty() {
            let at = btails.len() / 2;
            bulk.delete_node(id, btails[at]).unwrap();
            oracle.delete_node(oid, otails[at]).unwrap();
        }
        assert_eq!(
            bulk.get_xml("d").unwrap(),
            oracle.get_xml("d").unwrap(),
            "page {page_size}: edited deep documents diverge"
        );
        bulk.physical_stats("d").unwrap();
    }
}

#[test]
fn deep_corpus_queries_match_the_lazy_oracle() {
    // Record-granular scans (sequential and forced-parallel) must agree
    // with the lazy reference walk on packed documents — continuation
    // groups are claimed as scan work at their document-order positions,
    // entered at the right prefix level.
    let mut syms = SymbolTable::new();
    let cfg = natix_corpus::DeepConfig {
        depth: 500,
        ..natix_corpus::DeepConfig::tiny()
    };
    let doc = natix_corpus::generate_deep(&cfg, &mut syms);
    let r = repo(1024, SplitMatrix::all_other(), &syms);
    let id = r.put_document("d", &doc).unwrap();
    let par = natix::ParallelQueryOptions {
        threads: 3,
        parallel_record_threshold: 1,
        ..Default::default()
    };
    for path in [
        "//TAIL",
        "//META/NOTE",
        "//NOTE/text()",
        "/SECTION/SECTION/SECTION//TAIL",
        "//SECTION/TAIL",
        "//*",
    ] {
        let q = natix::PathQuery::parse(path).unwrap();
        let lazy = r.query_parsed(id, &q).unwrap();
        let seq = r.query_sequential(id, &q).unwrap();
        let pll = r.query_parallel(id, &q, &par).unwrap();
        assert_eq!(seq, lazy, "{path}: sequential scan diverges");
        assert_eq!(pll, lazy, "{path}: parallel scan diverges");
    }
}

#[test]
fn multibyte_text_survives_chunking() {
    // Chunk boundaries must respect UTF-8 character boundaries: an 'é' is
    // two bytes, and a 512-byte page forces chunking of an 801-byte text
    // at an odd offset inside one of them. Both load paths must round-trip
    // the text byte-identically (this was a real corruption bug: byte
    // chunking + from_utf8_lossy produced U+FFFD replacement characters).
    let text = "x".to_string() + &"é".repeat(400);
    let xml = format!("<a>{text}</a>");
    for page_size in [512usize, 1024, 2048] {
        let syms = SymbolTable::new();
        let streamed = repo(page_size, SplitMatrix::all_other(), &syms);
        streamed.put_xml_streaming("d", &xml).unwrap();
        assert_eq!(
            streamed.get_xml("d").unwrap(),
            xml,
            "streamed, page {page_size}"
        );

        let dom = repo(page_size, SplitMatrix::all_other(), &syms);
        dom.put_xml("d", &xml).unwrap();
        assert_eq!(dom.get_xml("d").unwrap(), xml, "bulk DOM, page {page_size}");

        let per_node = repo(page_size, SplitMatrix::all_other(), &syms);
        let mut s2 = SymbolTable::new();
        let doc =
            natix_xml::parse_document(&xml, &mut s2, natix_xml::ParserOptions::default()).unwrap();
        *per_node.symbols_mut() = s2;
        per_node.put_document_per_node("d", &doc).unwrap();
        assert_eq!(
            per_node.get_xml("d").unwrap(),
            xml,
            "per-node, page {page_size}"
        );
    }
}

#[test]
fn failed_streaming_load_leaks_no_records() {
    // A load that fails mid-stream (mismatched tags near the end of a
    // large document) must delete every record it had already flushed;
    // otherwise repeated failing ingests grow the segment unboundedly.
    let syms = SymbolTable::new();
    let r = repo(512, SplitMatrix::all_other(), &syms);
    let body = "<item>payload</item>".repeat(500);
    let bad = format!("<root>{body}<oops></root>");
    assert!(r.put_xml_streaming("d", &bad).is_err());
    // Every page of the documents segment is empty again apart from its
    // node-type table (which is a handful of bytes).
    let seg = r.tree_store().segment();
    for (page, free) in r.storage().segment_pages(seg) {
        assert!(
            free as usize > 512 - 64,
            "page {page} still holds {} bytes of leaked records",
            512 - free as usize
        );
    }
    // And the repository is fully usable afterwards.
    let good = format!("<root>{body}</root>");
    r.put_xml_streaming("d", &good).unwrap();
    assert_eq!(r.get_xml("d").unwrap(), good);
    r.physical_stats("d").unwrap();
}

#[test]
fn bulkloaded_documents_are_editable() {
    // Bulkloaded trees must be first-class citizens of the incremental
    // path: inserts, updates and deletes on top of them keep working.
    for case in 0..10u64 {
        let mut g = Gen::new(0xED17 ^ case);
        let mut syms = SymbolTable::new();
        let doc = random_document(&mut g, &mut syms);
        let r = repo(1024, SplitMatrix::all_other(), &syms);
        let id = r.put_document("d", &doc).unwrap();
        let root = r.root(id).unwrap();
        let e = r
            .insert_element(id, root, natix_tree::InsertPos::Last, "appended")
            .unwrap();
        r.insert_text(id, e, natix_tree::InsertPos::Last, "tail text")
            .unwrap();
        let kids = r.children(id, root).unwrap();
        assert_eq!(*kids.last().unwrap(), e);
        r.delete_node(id, e).unwrap();
        r.physical_stats("d").unwrap();
        assert_eq!(r.get_xml("d").unwrap(), {
            let oracle = repo(1024, SplitMatrix::all_other(), &syms);
            oracle.put_document_per_node("d", &doc).unwrap();
            oracle.get_xml("d").unwrap()
        });
    }
}
