//! Differential property suite of the shared-state edit path: **random
//! structural edits racing random queries must equal a serialized
//! oracle.**
//!
//! The writer thread applies one random structural edit at a time
//! (element/text inserts at random positions, text updates, subtree
//! deletes) and, after every edit, records the document's full
//! serialisation plus the answers of a fixed query set — taken between
//! its own edits, these records *are* the serial execution history. The
//! reader threads race it with snapshot queries
//! ([`Repository::query_content`] / [`query_content_opts`] with forced
//! parallel record scans) and whole-document serialisations; every result
//! a reader observes must be byte-identical to **some** recorded version.
//! Record-level versioning guarantees exactly that: a reader's snapshot
//! lands on an epoch boundary, i.e. between two whole edits.
//!
//! The suite is seed-driven by the local SplitMix64 generator (no
//! proptest in the offline build), reproducible by seed.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use natix::{
    DocId, NatixError, ParallelQueryOptions, PathQuery, PlanShape, PlannerOptions, Repository,
    RepositoryOptions,
};
use natix_corpus::SplitMix64 as Gen;
use natix_tree::InsertPos;

const TAGS: &[&str] = &["a", "b", "c", "d"];

/// Queries whose answers the writer records after every edit. Texts stay
/// short (far below the chunk limit), so every repository-level edit is
/// exactly one tree operation — one epoch — and readers can only land on
/// whole-edit boundaries.
const QUERIES: &[&str] = &["//a", "//b/text()", "//c", "//*", "/r/d", "//d[2]"];

/// One query's snapshot-consistent `(label, text)` answer list.
type Answer = Vec<(String, String)>;

/// One recorded serial state: the full document text plus each query's
/// snapshot-consistent answers.
struct VersionRecord {
    xml: String,
    answers: Vec<Answer>,
}

struct Oracle {
    versions: Mutex<Vec<Arc<VersionRecord>>>,
}

impl Oracle {
    fn record(&self, repo: &Repository, doc: DocId, queries: &[PathQuery]) {
        let answers = queries
            .iter()
            .map(|q| repo.query_content(doc, q).unwrap())
            .collect();
        let xml = repo.get_xml("doc").unwrap();
        self.versions
            .lock()
            .push(Arc::new(VersionRecord { xml, answers }));
    }

    /// True when `got` matches query `qi`'s answer in some recorded
    /// version. Readers race the writer's record() call, so a result may
    /// precede its record by a moment — the caller retries briefly.
    fn matches_query(&self, qi: usize, got: &[(String, String)]) -> bool {
        self.versions.lock().iter().any(|v| v.answers[qi] == got)
    }

    fn matches_xml(&self, got: &str) -> bool {
        self.versions.lock().iter().any(|v| v.xml == got)
    }
}

/// Asserts with bounded retries: the writer records each version right
/// after publishing the edit, so a reader observing a brand-new state may
/// have to wait for the record to land.
fn assert_eventually(mut check: impl FnMut() -> bool, what: &str) {
    for _ in 0..4000 {
        if check() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_micros(250));
    }
    panic!("{what}: observed state matches no recorded serial version");
}

/// Applies one random structural edit through the `&self` edit API.
/// Element ids are tracked by the writer (the single writer of the
/// document, so its id map view is authoritative).
fn random_edit(
    repo: &Repository,
    doc: DocId,
    g: &mut Gen,
    elements: &mut Vec<natix::NodeId>,
    texts: &mut Vec<natix::NodeId>,
) {
    let root = repo.root(doc).unwrap();
    match g.below(10) {
        // Insert an element at a random position under a random parent.
        0..=3 => {
            let parent = elements[g.below(elements.len())];
            let pos = match g.below(3) {
                0 => InsertPos::First,
                1 => InsertPos::Last,
                _ => InsertPos::At(g.below(4)),
            };
            match repo.insert_element(doc, parent, pos, TAGS[g.below(TAGS.len())]) {
                Ok(id) => elements.push(id),
                // The parent died with a transitively deleted ancestor.
                Err(NatixError::NoSuchNode(_)) => {}
                Err(e) => panic!("insert_element: {e}"),
            }
        }
        // Insert a short text.
        4..=5 => {
            let parent = elements[g.below(elements.len())];
            let mut s = String::new();
            for _ in 0..1 + g.below(24) {
                s.push((b'a' + g.below(26) as u8) as char);
            }
            match repo.insert_text(doc, parent, InsertPos::Last, &s) {
                Ok(ids) => texts.extend(ids),
                Err(NatixError::NoSuchNode(_)) => {}
                Err(e) => panic!("insert_text: {e}"),
            }
        }
        // Rewrite an existing text node.
        6..=7 => {
            if let Some(&t) = texts.get(g.below(texts.len().max(1))) {
                let s = format!("upd{}", g.below(100_000));
                match repo.update_text(doc, t, &s) {
                    Ok(()) => {}
                    // The node may have been deleted with an ancestor.
                    Err(NatixError::NoSuchNode(_)) => {}
                    Err(e) => panic!("update_text: {e}"),
                }
            }
        }
        // Delete a random non-root element subtree.
        _ => {
            if elements.len() > 1 {
                let at = 1 + g.below(elements.len() - 1);
                let victim = elements[at];
                if victim != root {
                    match repo.delete_node(doc, victim) {
                        Ok(()) => {
                            elements.remove(at);
                        }
                        // Already gone with an earlier ancestor delete.
                        Err(NatixError::NoSuchNode(_)) => {
                            elements.remove(at);
                        }
                        Err(e) => panic!("delete_node: {e}"),
                    }
                }
            }
        }
    }
    // Ids of nodes deleted transitively stay in the lists; the arms above
    // tolerate NoSuchNode for them.
}

/// Builds a small random seed document (short texts only).
fn seed_doc(g: &mut Gen) -> String {
    let mut xml = String::from("<r>");
    for _ in 0..8 + g.below(20) {
        let t = TAGS[g.below(TAGS.len())];
        xml.push_str(&format!("<{t}>x{}</{t}>", g.below(1000)));
    }
    xml.push_str("</r>");
    xml
}

/// The core race: one writer editing, several readers asserting that
/// every observation equals some serial state.
fn run_race(seed: u64, edits: usize) {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 512, // many records per document
        ..RepositoryOptions::default()
    })
    .unwrap();
    let mut g = Gen::new(seed);
    let doc = repo.put_xml_streaming("doc", &seed_doc(&mut g)).unwrap();
    let queries: Vec<PathQuery> = QUERIES
        .iter()
        .map(|q| PathQuery::parse(q).unwrap())
        .collect();
    let oracle = Oracle {
        versions: Mutex::new(Vec::new()),
    };
    // Version 0: the pre-edit state, recorded before readers start.
    oracle.record(&repo, doc, &queries);

    let done = AtomicBool::new(false);
    let done = &done;
    let repo = &repo;
    let oracle = &oracle;
    let queries = &queries;
    std::thread::scope(|s| {
        // Writer: serial history of random edits, each followed by its
        // oracle record.
        s.spawn(|| {
            let mut g = Gen::new(seed ^ 0xDEAD_BEEF);
            let mut elements = vec![repo.root(doc).unwrap()];
            // Discover the seeded children once, as the writer.
            let kids = repo.children(doc, elements[0]).unwrap();
            let mut texts = Vec::new();
            for &k in &kids {
                if repo.node_summary(doc, k).unwrap().text.is_none() {
                    elements.push(k);
                }
            }
            for _ in 0..edits {
                random_edit(repo, doc, &mut g, &mut elements, &mut texts);
                oracle.record(repo, doc, queries);
            }
            done.store(true, Ordering::Release);
        });
        // Readers: lazy snapshot queries, forced-parallel scans, and
        // whole-document serialisations.
        for r in 0..3u64 {
            s.spawn(move || {
                let mut g = Gen::new(seed ^ (0xC0FFEE + r));
                let par = ParallelQueryOptions {
                    threads: 3,
                    parallel_record_threshold: 1, // force the record work queue
                    ..Default::default()
                };
                while !done.load(Ordering::Acquire) {
                    let qi = g.below(QUERIES.len());
                    match g.below(3) {
                        0 => {
                            let got = repo.query_content(doc, &queries[qi]).unwrap();
                            assert_eventually(|| oracle.matches_query(qi, &got), QUERIES[qi]);
                        }
                        1 => {
                            let got = repo.query_content_opts(doc, &queries[qi], &par).unwrap();
                            assert_eventually(|| oracle.matches_query(qi, &got), QUERIES[qi]);
                        }
                        _ => {
                            let xml = repo.get_xml("doc").unwrap();
                            assert_eventually(|| oracle.matches_xml(&xml), "get_xml");
                        }
                    }
                }
            });
        }
    });
    // Quiesced: the final state equals the last recorded version, the
    // version store drained, and the document still validates.
    let last = oracle.versions.lock().last().unwrap().clone();
    assert_eq!(repo.get_xml("doc").unwrap(), last.xml);
    repo.physical_stats("doc").unwrap();
    assert_eq!(
        repo.tree_store().versions().retained_versions(),
        0,
        "all superseded versions reclaimed once readers drained"
    );
}

#[test]
fn racing_queries_equal_serialized_oracle() {
    for seed in [1, 7, 42] {
        run_race(seed, 60);
    }
}

#[test]
fn racing_queries_equal_serialized_oracle_heavier() {
    run_race(0xFEED_F00D, 150);
}

#[test]
fn edits_of_different_documents_race_each_other_and_readers() {
    // Two writers editing two documents concurrently (per-document edit
    // latches do not serialise them against each other) while readers
    // check each document against its own serial oracle.
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 512,
        ..RepositoryOptions::default()
    })
    .unwrap();
    let mut g = Gen::new(99);
    let ids = [
        repo.put_xml_streaming("w0", &seed_doc(&mut g)).unwrap(),
        repo.put_xml_streaming("w1", &seed_doc(&mut g)).unwrap(),
    ];
    let queries: Vec<PathQuery> = ["//a", "//*", "//b/text()"]
        .iter()
        .map(|q| PathQuery::parse(q).unwrap())
        .collect();
    // Per-document answer histories (content queries only; get_xml is
    // covered by the single-document suite).
    let histories: Vec<Mutex<Vec<Vec<Answer>>>> = (0..2).map(|_| Mutex::new(Vec::new())).collect();
    let record = |doc: DocId, slot: usize| {
        let answers: Vec<_> = queries
            .iter()
            .map(|q| repo.query_content(doc, q).unwrap())
            .collect();
        histories[slot].lock().push(answers);
    };
    record(ids[0], 0);
    record(ids[1], 1);
    let finished = std::sync::atomic::AtomicUsize::new(0);
    let repo = &repo;
    let queries = &queries;
    let histories = &histories;
    let record = &record;
    let finished = &finished;
    std::thread::scope(|s| {
        for (w, &doc) in ids.iter().enumerate() {
            s.spawn(move || {
                let mut g = Gen::new(1000 + w as u64);
                let mut elements = vec![repo.root(doc).unwrap()];
                let mut texts = Vec::new();
                for _ in 0..50 {
                    random_edit(repo, doc, &mut g, &mut elements, &mut texts);
                    record(doc, w);
                }
                finished.fetch_add(1, Ordering::AcqRel);
            });
        }
        s.spawn(move || {
            let mut g = Gen::new(5555);
            while finished.load(Ordering::Acquire) < 2 {
                let slot = g.below(2);
                let qi = g.below(queries.len());
                let got = repo.query_content(ids[slot], &queries[qi]).unwrap();
                assert_eventually(
                    || histories[slot].lock().iter().any(|v| v[qi] == got),
                    "cross-document race",
                );
            }
        });
        s.spawn(move || {
            // A second reader hammering whole-document serialisation of
            // both documents: any well-formed result proves the snapshot
            // held together while both writers churned.
            let mut g = Gen::new(7777);
            while finished.load(Ordering::Acquire) < 2 {
                let name = if g.below(2) == 0 { "w0" } else { "w1" };
                let xml = repo.get_xml(name).unwrap();
                assert!(xml.starts_with("<r>") && xml.ends_with("</r>"), "{xml}");
            }
        });
    });
    repo.physical_stats("w0").unwrap();
    repo.physical_stats("w1").unwrap();
}

/// Path-summary maintenance under the race: the writer's serial history
/// records structural counts through **forced parallel scans** (the
/// record-level oracle); racing readers count through the **planner's own
/// choice** — which answers from the incrementally maintained summary
/// whenever it can — and every count a reader observes must equal some
/// recorded serial version. The summary must actually serve reads (not
/// just fall back forever), and the quiesced summary must agree with the
/// scan on every query.
#[test]
fn summary_counts_under_racing_edits_match_serial_scan_oracle() {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 512,
        ..RepositoryOptions::default()
    })
    .unwrap();
    let mut g = Gen::new(0x5CA1E);
    let doc = repo.put_xml_streaming("doc", &seed_doc(&mut g)).unwrap();
    let scan = PlannerOptions {
        force: Some(PlanShape::ParallelScan),
        exec: ParallelQueryOptions {
            threads: 2,
            parallel_record_threshold: 1,
            ..Default::default()
        },
        ..PlannerOptions::default()
    };
    // One serial version = every query's count after one whole edit.
    let versions: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());
    let record = |versions: &Mutex<Vec<Vec<u64>>>| {
        let counts: Vec<u64> = QUERIES
            .iter()
            .map(|q| repo.count_planned("doc", q, &scan).unwrap().0)
            .collect();
        versions.lock().push(counts);
    };
    record(&versions);

    let done = AtomicBool::new(false);
    let summary_hits = AtomicUsize::new(0);
    let (done, summary_hits) = (&done, &summary_hits);
    let (repo_ref, versions, scan) = (&repo, &versions, &scan);
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut g = Gen::new(0x5CA1E ^ 0xDEAD_BEEF);
            let mut elements = vec![repo_ref.root(doc).unwrap()];
            let mut texts = Vec::new();
            for &k in &repo_ref.children(doc, elements[0]).unwrap() {
                if repo_ref.node_summary(doc, k).unwrap().text.is_none() {
                    elements.push(k);
                }
            }
            for _ in 0..80 {
                random_edit(repo_ref, doc, &mut g, &mut elements, &mut texts);
                record(versions);
            }
            done.store(true, Ordering::Release);
        });
        for r in 0..2u64 {
            s.spawn(move || {
                let mut g = Gen::new(0xBEEF ^ r);
                while !done.load(Ordering::Acquire) {
                    let qi = g.below(QUERIES.len());
                    let (n, explain) = repo_ref
                        .count_planned("doc", QUERIES[qi], &PlannerOptions::default())
                        .unwrap();
                    if explain.shape == PlanShape::SummaryOnly && explain.summary_current {
                        summary_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    assert_eventually(|| versions.lock().iter().any(|v| v[qi] == n), QUERIES[qi]);
                }
            });
        }
    });
    assert!(
        summary_hits.load(Ordering::Relaxed) > 0,
        "the maintained summary never served a racing count"
    );
    // Quiesced: planner counts (summary) equal forced-scan counts on every
    // query, and both equal the last recorded serial version.
    let last = versions.lock().last().unwrap().clone();
    for (qi, q) in QUERIES.iter().enumerate() {
        let (planned, _) = repo
            .count_planned("doc", q, &PlannerOptions::default())
            .unwrap();
        let (scanned, _) = repo.count_planned("doc", q, scan).unwrap();
        assert_eq!(planned, scanned, "{q}: summary diverged from the scan");
        assert_eq!(
            planned, last[qi],
            "{q}: final count diverged from the oracle"
        );
    }
}

/// The stale-summary fallback, exercised deterministically: with the
/// summary slot dropped and a pinned ambient snapshot (under which the
/// planner refuses to rebuild), a count must fall back to a record scan —
/// and still be right; once the pin is gone, the next query rebuilds the
/// summary and answers from it again.
#[test]
fn stale_summary_falls_back_to_scan_then_rebuilds() {
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 512,
        ..RepositoryOptions::default()
    })
    .unwrap();
    let mut g = Gen::new(0x57A1E);
    repo.put_xml_streaming("doc", &seed_doc(&mut g)).unwrap();

    // Fresh load: the summary is current and answers the count.
    let (n0, explain) = repo
        .count_planned("doc", "//a", &PlannerOptions::default())
        .unwrap();
    assert_eq!(explain.shape, PlanShape::SummaryOnly);
    assert!(explain.summary_current);

    // Drop the slot (the test hook behind crash/reopen paths) and pin a
    // snapshot: ensure-on-read must not rebuild under an ambient pin, so
    // the planner has no summary and must scan — correctly.
    repo.invalidate_path_summary("doc").unwrap();
    {
        let _snap = repo.read_snapshot();
        let (n1, explain) = repo
            .count_planned("doc", "//a", &PlannerOptions::default())
            .unwrap();
        assert_eq!(n1, n0, "fallback scan returned a wrong count");
        assert!(
            !explain.summary_current,
            "no summary can be current for a pre-rebuild snapshot"
        );
        assert_ne!(
            explain.shape,
            PlanShape::SummaryOnly,
            "a dropped summary cannot answer counts"
        );
    }

    // Unpinned again: the next planned query rebuilds and the summary
    // serves once more.
    let (n2, explain) = repo
        .count_planned("doc", "//a", &PlannerOptions::default())
        .unwrap();
    assert_eq!(n2, n0);
    assert_eq!(explain.shape, PlanShape::SummaryOnly);
    assert!(explain.summary_current);
}

#[test]
fn stale_snapshot_binds_are_validated_not_poisoned() {
    // Regression (PR 4 follow-up): the logical-id map was not
    // epoch-versioned — a reader binding ids under an *old* snapshot
    // while a structural edit relocated the same nodes would insert
    // superseded physical addresses into the map. A later writer's
    // relocations only track entries that were current when it ran, so
    // the stale binding silently resolved to the wrong node (or nothing)
    // forever after. Binds are now validated against the version store
    // under the per-document edit latch: the racing bind surfaces as
    // `SnapshotRace` instead, and the id map stays coherent.
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 512,
        ..RepositoryOptions::default()
    })
    .unwrap();
    let doc = repo
        .put_xml_streaming("doc", "<r><a>one</a><b>two</b></r>")
        .unwrap();
    let root = repo.root(doc).unwrap();
    let before = repo.children(doc, root).unwrap();

    let stale = {
        let _snap = repo.read_snapshot();
        // A concurrent writer rewrites the root record and publishes
        // while this thread's snapshot is pinned at the old epoch.
        std::thread::scope(|s| {
            s.spawn(|| {
                repo.insert_element(doc, root, InsertPos::Last, "z")
                    .unwrap();
            });
        });
        // The child addresses this snapshot discovers live in the
        // superseded record image; binding them must refuse.
        repo.children(doc, root)
    };
    assert!(
        matches!(stale, Err(NatixError::SnapshotRace(_))),
        "stale bind must surface as SnapshotRace, got {stale:?}"
    );

    // A fresh read binds cleanly, sees the new child, and every id it
    // hands out resolves — the map was not poisoned by the refused bind.
    let after = repo.children(doc, root).unwrap();
    assert_eq!(after.len(), before.len() + 1);
    for &k in &after {
        repo.node_summary(doc, k).unwrap();
    }
    for &k in &before {
        // Pre-race ids stay valid too (relocations kept them current).
        repo.node_summary(doc, k).unwrap();
    }
    assert!(repo.get_xml("doc").unwrap().contains("<z/>"));
}

#[test]
fn caller_scoped_snapshot_spans_multiple_reads() {
    // `Repository::read_snapshot` freezes the view across several calls:
    // an edit committed by another thread mid-snapshot stays invisible
    // until the guard drops.
    let repo = Repository::create_in_memory(RepositoryOptions {
        page_size: 512,
        ..RepositoryOptions::default()
    })
    .unwrap();
    let doc = repo
        .put_xml_streaming("doc", "<r><a>one</a><b>two</b></r>")
        .unwrap();
    let before = repo.get_xml("doc").unwrap();
    {
        let _snap = repo.read_snapshot();
        let xml0 = repo.get_xml("doc").unwrap();
        assert_eq!(xml0, before);
        // Another thread edits and fully publishes.
        std::thread::scope(|s| {
            s.spawn(|| {
                let root = repo.root(doc).unwrap();
                repo.insert_element(doc, root, InsertPos::Last, "c")
                    .unwrap();
            });
        });
        // Still the old view, across queries and serialisation alike.
        assert_eq!(repo.get_xml("doc").unwrap(), before);
        let q = PathQuery::parse("//c").unwrap();
        assert!(repo.query_content(doc, &q).unwrap().is_empty());
    }
    // Guard dropped: the edit is visible.
    assert!(repo.get_xml("doc").unwrap().contains("<c/>"));
    let q = PathQuery::parse("//c").unwrap();
    assert_eq!(repo.query_content(doc, &q).unwrap().len(), 1);
}
