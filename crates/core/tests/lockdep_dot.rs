//! Dumps the observed lock-order graph as GraphViz DOT. Runs a small but
//! representative repository workload first, so the recorded edges cover
//! the ingest, query, edit, and snapshot paths, then writes
//! `target/lockdep-graph.dot`. CI archives the file as an artifact: the
//! lock hierarchy is reviewable (and diffable across PRs) without reading
//! panic backtraces.
#![cfg(feature = "lockdep")]

use std::path::PathBuf;

use natix::{PlannerOptions, Repository, RepositoryOptions};

fn target_dir() -> PathBuf {
    // Honour an explicit CARGO_TARGET_DIR; otherwise the workspace target
    // directory sits two levels above this crate.
    std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("target")
        })
}

#[test]
fn dump_lock_order_graph() {
    let repo = Repository::create_in_memory(RepositoryOptions::default()).unwrap();
    let doc = repo
        .put_xml_streaming("doc", "<r><a>alpha</a><b>beta</b></r>")
        .unwrap();

    // Query path (planner + executor locks).
    let (n, _) = repo
        .count_planned("doc", "//a", &PlannerOptions::default())
        .unwrap();
    assert_eq!(n, 1);

    // Edit path under a pinned snapshot (version store + edit latch).
    let snap = repo.read_snapshot();
    let root = repo.root(doc).unwrap();
    let a_el = repo.children(doc, root).unwrap()[0];
    let a_text = repo.children(doc, a_el).unwrap()[0];
    repo.update_text(doc, a_text, "ALPHA").unwrap();
    drop(snap);
    repo.checkpoint().unwrap();

    let dot = parking_lot::lockdep::dot_graph();
    assert!(dot.starts_with("digraph lockdep {"), "{dot}");
    // The workload above must have recorded at least one ordered pair.
    assert!(dot.contains("->"), "no lock-order edges recorded:\n{dot}");

    let dir = target_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lockdep-graph.dot");
    std::fs::write(&path, &dot).unwrap();
    println!("lockdep: wrote {} ({} bytes)", path.display(), dot.len());
}
